"""Shared benchmark fixtures and scale knobs.

The benchmarks regenerate every table and figure at a moderate scale
(thousands of records — large enough for the paper's effects to be
unmistakable, small enough to run in minutes).  Set
``REPRO_BENCH_SCALE`` to scale record counts up or down, e.g.
``REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only`` for a run
closer to paper scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import build_amazon_setup

#: Multiplier applied to every benchmark's record counts.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(n: int, minimum: int = 200) -> int:
    return max(int(n * SCALE), minimum)


@pytest.fixture(scope="session")
def amazon_setup():
    """One Amazon fixture shared by Figures 5/6 and size estimation."""
    return build_amazon_setup(n_movies=scaled(6000), seed=4)


def emit(result_text: str) -> None:
    """Print a rendered experiment table into the benchmark log."""
    print()
    print(result_text)
