"""Ablation: heuristic query abortion (Section 3.4).

The paper reports that aborting duplicate-heavy queries "can greatly
improve crawling performance" but defers details.  This bench measures
both heuristics on the eBay database in the saturated regime where they
matter: heuristic 1 (exact new-record bound from the reported total)
and heuristic 2 (duplicate-fraction probing when totals are withheld).
"""

from conftest import emit, scaled

from repro.experiments.ablations import run_abortion_ablation


def test_ablation_query_abortion(benchmark):
    result = benchmark.pedantic(
        lambda: run_abortion_ablation(n_records=scaled(6000)),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    # Shape: with totals reported, heuristic 1 reaches the same coverage
    # with no more rounds than fetching everything, and it actually
    # aborts queries along the way.
    assert result.rounds("heuristic 1 (totals shown)") <= result.rounds(
        "no abortion (totals shown)"
    )
    assert result.results["heuristic 1 (totals shown)"][2] > 0
    # Heuristic 2 must also help (or at worst break even) when the
    # source hides totals.
    assert result.rounds("heuristic 2 (totals hidden)") <= (
        result.rounds("no abortion (totals hidden)") * 1.02
    )
    for label, (rounds, _coverage, _aborted) in result.results.items():
        benchmark.extra_info[label] = rounds
