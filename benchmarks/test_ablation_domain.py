"""Ablation: the DM selector's smoothing and size estimation.

DESIGN.md §5: the Eq. 4.3 ΔDM smoothing exists because the target
database contains values the domain sample has never seen (store
exclusives); with smoothing off those values keep probability zero and
their harvest rates stay unusable.  Also checks the free by-product of
Eq. 4.2 — the implied database-size estimate.
"""

from conftest import amazon_setup, emit

from repro.experiments.ablations import run_smoothing_ablation


def test_ablation_domain_smoothing(benchmark, amazon_setup):
    result = benchmark.pedantic(
        lambda: run_smoothing_ablation(amazon_setup), rounds=1, iterations=1
    )
    emit(result.render())

    coverage_on = result.coverage("smoothing on")
    coverage_off = result.coverage("smoothing off")
    estimate_on = result.size_estimate("smoothing on")
    # Smoothing never hurts materially and the estimator lands in the
    # truth's neighbourhood.
    assert coverage_on >= coverage_off - 0.03
    assert 0.5 * result.true_size <= estimate_on <= 1.5 * result.true_size
    benchmark.extra_info["coverage_on"] = round(coverage_on, 3)
    benchmark.extra_info["coverage_off"] = round(coverage_off, 3)
    benchmark.extra_info["size_estimate"] = round(estimate_on)
