"""Ablation: the greedy crawler's ranking signal.

DESIGN.md calls out the choice of GL's harvest-rate proxy.  This bench
compares, on the DBLP database:

- local-graph **degree** (the paper's GL signal),
- local **frequency** (``num(q, DB_local)``), and
- the **oracle** (offline greedy record-cover on the true database —
  the upper bound no online signal can beat).
"""

from conftest import emit, scaled

from repro.experiments.ablations import run_greedy_signal_ablation


def test_ablation_greedy_signal(benchmark):
    result = benchmark.pedantic(
        lambda: run_greedy_signal_ablation(n_records=scaled(5000), n_seeds=3),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    at_90 = {label: result.cost_at_90(label) for label in result.series}
    # The oracle lower-bounds every online signal.
    assert at_90["oracle"] <= at_90["degree (GL)"]
    assert at_90["oracle"] <= at_90["frequency"]
    # Both online signals are within a small factor of each other —
    # degree and frequency correlate strongly (the paper uses degree).
    ratio = at_90["degree (GL)"] / at_90["frequency"]
    assert 0.5 < ratio < 2.0
    benchmark.extra_info["gl_over_oracle"] = round(
        at_90["degree (GL)"] / at_90["oracle"], 2
    )
