"""Ablation: MMMI's switch point, aggregate, and popularity blending.

DESIGN.md §5: (a) where to switch from GL to MMMI (75/85/95% coverage),
(b) MAX versus the linear-weighted (mean) dependency aggregation the
paper mentions as an alternative, and (c) the pure Definition 3.1
ordering (popularity weight 0) versus the blended default.
"""

from conftest import emit, scaled

from repro.experiments.ablations import run_mmmi_ablation


def test_ablation_mmmi(benchmark):
    result = benchmark.pedantic(
        lambda: run_mmmi_ablation(n_records=scaled(6000), n_seeds=3),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    rounds = result.rounds
    # The paper's configuration (switch at 85%, max aggregate, blended
    # ordering) beats plain GL.
    assert rounds["switch@0.85"] < rounds["gl (no switch)"]
    # Pure Definition 3.1 ordering floods the tail with singleton
    # queries — the blended ordering dominates it.
    assert rounds["switch@0.85"] < rounds["pure-def-3.1"]
    for label, value in rounds.items():
        benchmark.extra_info[label] = round(value)
