"""Extension benchmark: quantifying the "fading schema" opportunity.

The §2.2 case study notes most product sites also expose a keyword
search box and calls this an exciting opportunity for crawling; this
bench measures it — the same store, same budget, three interfaces.
Shape asserted: the keyword box never reduces reach, and on this store
(whose structured form hides the hub attributes) it increases it.
"""

from conftest import amazon_setup, emit

from repro.experiments.keyword import run_keyword_interface


def test_extension_keyword_interface(benchmark, amazon_setup):
    result = benchmark.pedantic(
        lambda: run_keyword_interface(amazon_setup, rng_seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    structured = result.coverage("structured (title/people)")
    keyword = result.coverage("keyword box only")
    combined = result.coverage("structured + keyword")
    # The keyword box exposes values of *displayed but non-queriable*
    # attributes (studio, language, genre) as queries — strictly more
    # reach on this store.
    assert keyword > structured
    assert combined >= structured - 0.01
    benchmark.extra_info["structured"] = round(structured, 3)
    benchmark.extra_info["keyword"] = round(keyword, 3)
    benchmark.extra_info["combined"] = round(combined, 3)
