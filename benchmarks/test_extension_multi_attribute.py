"""Extension benchmark: crawling multi-attribute-only sources.

The paper's future work, implemented: the Car-domain source accepts
only >= 2-predicate queries, and crawling proceeds over the AVG's edges
(value combinations).  Shape asserted: the greedy clique selector
reaches the coverage target with fewer rounds than the random-order
baseline — the GL-versus-naive result, one level up.
"""

from conftest import emit, scaled

from repro.crawler import CrawlerEngine
from repro.datasets import car_interface, generate_cars
from repro.experiments import render_table
from repro.policies import (
    GreedyCliqueSelector,
    RandomCliqueSelector,
    record_combinations,
)
from repro.server import SimulatedWebDatabase


def run_comparison(n_records: int):
    table = generate_cars(n_records, seed=7)
    first = table.get(table.record_ids()[0])
    seed_combos = record_combinations(first, table.schema.queriable, 2)
    results = {}
    for factory in (GreedyCliqueSelector, RandomCliqueSelector):
        server = SimulatedWebDatabase(
            table, page_size=10, interface=car_interface()
        )
        selector = factory()
        engine = CrawlerEngine(server, selector, seed=7)
        selector.seed_combinations(seed_combos)
        outcome = engine.crawl(
            [], allow_empty_seeds=True, target_coverage=0.9, max_rounds=60_000
        )
        results[outcome.policy] = outcome
    return table, results


def test_extension_multi_attribute(benchmark):
    table, results = benchmark.pedantic(
        lambda: run_comparison(scaled(4000)), rounds=1, iterations=1
    )
    emit(
        render_table(
            ["selector", "rounds to 90%", "conjunctive queries", "coverage"],
            [
                [name, r.communication_rounds, r.queries_issued, f"{r.coverage:.1%}"]
                for name, r in results.items()
            ],
            title=(
                "Extension — multi-attribute-only source (cars, "
                f"|DB| = {len(table):,}, min 2 predicates/query)"
            ),
        )
    )

    greedy = results["greedy-clique"]
    naive = results["random-clique"]
    assert greedy.coverage >= 0.9
    assert naive.coverage >= 0.9
    assert greedy.communication_rounds < naive.communication_rounds
    benchmark.extra_info["random_over_greedy"] = round(
        naive.communication_rounds / greedy.communication_rounds, 2
    )
