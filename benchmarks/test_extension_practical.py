"""Extension benchmark: the paper-conclusion "practical" bundle.

The conclusion recommends combining domain-knowledge selection with
fine-tuned heuristics.  This bench runs, on the Amazon store under its
native limit and budget:

- plain GL,
- the DM selector alone,
- the practical bundle (DM + §3.4 abortion heuristics),

and asserts the bundle is at least as good as its parts on coverage per
budget.
"""

from conftest import amazon_setup, emit

from repro.crawler import CrawlerEngine
from repro.experiments import render_table
from repro.policies import (
    DomainKnowledgeSelector,
    GreedyLinkSelector,
    build_practical_crawler,
)


def run_variants(setup):
    budget = setup.request_budget
    [seeds] = setup.sample_seeds(1, rng_seed=2)
    results = {}

    server = setup.make_server()
    engine = CrawlerEngine(server, GreedyLinkSelector(), seed=2)
    results["greedy-link"] = engine.crawl(seeds, max_rounds=budget)

    server = setup.make_server()
    engine = CrawlerEngine(server, DomainKnowledgeSelector(setup.dm1), seed=2)
    results["dm"] = engine.crawl(seeds, max_rounds=budget)

    server = setup.make_server()
    engine = build_practical_crawler(server, setup.dm1, seed=2)
    results["practical (dm + abortion)"] = engine.crawl(seeds, max_rounds=budget)
    return results


def test_extension_practical_bundle(benchmark, amazon_setup):
    results = benchmark.pedantic(
        lambda: run_variants(amazon_setup), rounds=1, iterations=1
    )
    emit(
        render_table(
            ["configuration", "coverage @ budget", "queries", "aborted"],
            [
                [name, f"{r.coverage:.1%}", r.queries_issued, r.aborted_queries]
                for name, r in results.items()
            ],
            title=(
                "Extension — practical crawler bundle on the Amazon store "
                f"(|DB| = {len(amazon_setup.store):,}, "
                f"budget = {amazon_setup.request_budget:,})"
            ),
        )
    )

    assert results["dm"].coverage > results["greedy-link"].coverage
    # The heuristics must not cost coverage, and should reinvest aborted
    # pages into extra queries.
    practical = results["practical (dm + abortion)"]
    assert practical.coverage >= results["dm"].coverage - 0.02
    benchmark.extra_info["practical_coverage"] = round(practical.coverage, 3)
    benchmark.extra_info["aborted_queries"] = practical.aborted_queries
