"""Extension benchmark: seed sensitivity of the policy comparison.

The paper averages over four seed values "to avoid the possible noise
due to individual seed"; this bench quantifies that noise and checks
the headline ordering is not a seed artifact: GL must be cheapest on a
clear majority of individual seeds, not only on average.
"""

from conftest import emit, scaled

from repro.experiments.stability import run_stability


def test_extension_seed_stability(benchmark):
    result = benchmark.pedantic(
        lambda: run_stability(
            dataset="dblp",
            n_records=scaled(3000),
            n_seeds=8,
            target_coverage=0.8,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    # GL wins on most individual seeds — the average is not carrying a
    # coin-flip comparison.
    assert result.gl_wins_fraction >= 0.6
    # And GL's mean stays below the naive policies' means.
    gl = result.spread("greedy-link").mean
    assert gl <= result.spread("random").mean
    assert gl <= result.spread("bfs").mean * 1.05
    benchmark.extra_info["gl_wins_fraction"] = result.gl_wins_fraction
    benchmark.extra_info["gl_cv"] = round(
        result.spread("greedy-link").coefficient_of_variation, 3
    )
