"""Extension benchmark: the multi-source warehouse pipeline.

The paper's motivating application — a centralized warehouse feeding
comparison shopping — end to end: crawl three competing stores carved
from one movie universe with the practical crawler, merge by title, and
measure integration quality (entities, multi-source overlap).
"""

from conftest import emit, scaled

from repro.datasets import (
    IMDB_DT_ATTRIBUTES,
    MovieUniverse,
    generate_amazon_dvd,
    imdb_table_from_movies,
)
from repro.domain import build_domain_table
from repro.experiments import render_table
from repro.server import SimulatedWebDatabase
from repro.warehouse import crawl_into_warehouse


def run_pipeline(n_movies: int):
    universe = MovieUniverse(n_movies, seed=19, obscure_fraction=0.05)
    domain_table = build_domain_table(
        imdb_table_from_movies(universe.since(1960)),
        attributes=IMDB_DT_ATTRIBUTES,
    )
    stores = []
    for index, (fraction, name) in enumerate(
        ((0.7, "dvd-planet"), (0.5, "discount-discs"), (0.4, "classic-films"))
    ):
        store = generate_amazon_dvd(
            universe, catalogue_fraction=fraction, seed=80 + index
        )
        store.name = name
        stores.append(store)
    servers = [SimulatedWebDatabase(store, page_size=10) for store in stores]
    result = crawl_into_warehouse(
        servers,
        [[] for _ in stores],
        key_attribute="title",
        domain_table=domain_table,
        target_coverage=0.9,
        max_rounds_per_source=len(universe.movies) * 2,
    )
    return stores, result


def test_extension_warehouse_pipeline(benchmark):
    stores, result = benchmark.pedantic(
        lambda: run_pipeline(scaled(3000)), rounds=1, iterations=1
    )
    rows = [
        [
            report.source,
            report.crawl.records_harvested,
            f"{report.crawl.coverage:.1%}",
            report.crawl.communication_rounds,
        ]
        for report in result.reports
    ]
    rows.append(
        [
            "warehouse",
            result.total_entities,
            f"{len(result.warehouse.multi_source_entries())} multi-source",
            result.total_rounds,
        ]
    )
    emit(
        render_table(
            ["source", "records/entities", "coverage/overlap", "rounds"],
            rows,
            title="Extension — three-store warehouse pipeline",
        )
    )

    # Every store crawled to target; the merged catalogue is larger than
    # any single store's harvest yet smaller than their sum (dedup), and
    # overlapping catalogues produce genuinely multi-source entities.
    assert all(report.crawl.coverage >= 0.9 for report in result.reports)
    per_store = [report.crawl.records_harvested for report in result.reports]
    assert max(per_store) < result.total_entities < sum(per_store)
    overlap = len(result.warehouse.multi_source_entries())
    assert overlap > 0.2 * result.total_entities
    benchmark.extra_info["entities"] = result.total_entities
    benchmark.extra_info["multi_source"] = overlap
