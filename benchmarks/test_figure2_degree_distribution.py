"""Benchmark: regenerate Figure 2 (AVG degree distributions, power law)."""

from conftest import emit, scaled

from repro.experiments import run_figure2


def test_figure2_degree_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure2(n_records=scaled(4000), seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    # Shape: every database's log-log degree scatter is close to a line
    # with negative slope — the paper's "very close to power-law", which
    # motivates hub-riding GL.
    for panel in result.panels:
        assert panel.fit.slope < -0.8, panel.dataset
        assert panel.fit.r_squared > 0.6, panel.dataset
        # "A few attribute values are extremely popular": the top 1% of
        # vertices own a disproportionate share of edge endpoints.
        assert panel.hub_share_top1pct > 0.1, panel.dataset
        benchmark.extra_info[f"{panel.dataset}_slope"] = round(panel.fit.slope, 3)
        benchmark.extra_info[f"{panel.dataset}_r2"] = round(panel.fit.r_squared, 3)
