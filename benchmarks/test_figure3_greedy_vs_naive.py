"""Benchmark: regenerate Figure 3 (GL vs naive selection, four databases)."""

from conftest import emit, scaled

from repro.experiments import run_figure3


def test_figure3_greedy_vs_naive(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure3(
            n_records=scaled(5000), n_seeds=3, seed=1, max_level=0.9
        ),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    for panel in result.panels:
        greedy = panel.cost("greedy-link", 0.9)
        assert greedy is not None, panel.dataset
        # Shape 1: GL reaches 90% cheaper than DFS and Random on every
        # database, and no naive method beats it meaningfully.
        for policy in ("bfs", "dfs", "random"):
            other = panel.cost(policy, 0.9)
            if other is None:
                continue  # a naive run that never got there loses by default
            if policy in ("dfs", "random"):
                assert greedy < other, (panel.dataset, policy)
            else:
                assert greedy <= other * 1.10, (panel.dataset, policy)
            benchmark.extra_info[f"{panel.dataset}_{policy}_over_gl"] = round(
                other / greedy, 2
            )
        # Shape 2: the "low marginal benefit" knee — cost climbs much
        # faster from 70%->90% than from 10%->30%.
        series = panel.series["greedy-link"]
        assert series[4] - series[3] > series[1] - series[0], panel.dataset
