"""Benchmark: regenerate Figure 4 (MMMI ordering for marginal content)."""

from conftest import emit, scaled

from repro.experiments import run_figure4


def test_figure4_mmmi(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure4(
            n_records=scaled(6000),
            n_seeds=3,
            seed=0,
            switch_coverage=0.85,
            target_coverage=0.97,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    # Shape: switching to MMMI at 85% reaches the same final coverage
    # with fewer communication rounds than plain GL (the paper reports
    # ~1,200 rounds saved at its 20k-record scale; the sign is the
    # reproducible claim, the magnitude scales with the database).
    assert result.rounds_saved > 0
    assert result.hybrid.mean_final_coverage >= result.target_coverage - 0.01
    benchmark.extra_info["rounds_saved"] = round(result.rounds_saved)
    benchmark.extra_info["saving_fraction"] = round(
        result.rounds_saved / result.greedy_rounds, 4
    )
