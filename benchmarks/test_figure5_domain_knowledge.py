"""Benchmark: regenerate Figure 5 (domain knowledge vs GL on the store)."""

from conftest import amazon_setup, emit

from repro.experiments import run_figure5


def test_figure5_domain_knowledge(benchmark, amazon_setup):
    result = benchmark.pedantic(
        lambda: run_figure5(amazon_setup, n_seeds=2, rng_seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    final_gl = result.final("greedy-link")
    final_dm1 = result.final("dm1")
    final_dm2 = result.final("dm2")
    # Shape 1: both DM crawlers end above GL; the richer domain table
    # DM(I) ends at or above DM(II) (paper: 95% vs ~90% vs <70%).
    assert final_dm1 > final_gl
    assert final_dm2 > final_gl
    assert final_dm1 >= final_dm2 - 0.02
    # Shape 2: GL plateaus in the second half of the budget while DM(I)
    # keeps climbing (data islands + dependency vs domain-table values).
    half = len(result.checkpoints) // 2
    gl_late = result.series["greedy-link"][-1] - result.series["greedy-link"][half]
    dm_late = result.series["dm1"][-1] - result.series["dm1"][half]
    assert dm_late > gl_late
    benchmark.extra_info["final_gl"] = round(final_gl, 3)
    benchmark.extra_info["final_dm1"] = round(final_dm1, 3)
    benchmark.extra_info["final_dm2"] = round(final_dm2, 3)
