"""Benchmark: regenerate Figure 6 (crawling under result-size limits)."""

from conftest import amazon_setup, emit

from repro.experiments import run_figure6


def test_figure6_result_limits(benchmark, amazon_setup):
    result = benchmark.pedantic(
        lambda: run_figure6(amazon_setup, limits=(10, 50), n_seeds=2, rng_seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    native = max(result.limits)
    for method in ("greedy-link", "dm1"):
        # Shape 1: tighter limits degrade coverage monotonically
        # (paper: ~50% drop at limit 10, ~20% at limit 50).
        assert result.coverage[(method, 10)] < result.coverage[(method, native)]
        assert (
            result.coverage[(method, 10)]
            <= result.coverage[(method, 50)] + 0.01
        )
        # Shape 2: limit 10 hurts at least as much as limit 50.
        assert result.degradation(method, 10) >= result.degradation(method, 50)
        benchmark.extra_info[f"{method}_drop_at_10"] = round(
            result.degradation(method, 10), 3
        )
        benchmark.extra_info[f"{method}_drop_at_50"] = round(
            result.degradation(method, 50), 3
        )
    # Shape 3: DM stays at or above GL under every limit.
    for limit in result.limits:
        assert (
            result.coverage[("dm1", limit)]
            >= result.coverage[("greedy-link", limit)] - 0.02
        )
