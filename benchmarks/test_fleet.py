"""Fleet allocation benchmark: greedy vs round-robin vs fair at budget.

The paper's warehouse question, scaled out: given one shared round
budget over hundreds of heterogeneous sources, how much more does
marginal-rate (greedy) allocation harvest than a fair-share
round-robin baseline — and how much of that edge does the ``fair``
policy (greedy + starvation guarantee) retain?

The regime matters.  Greedy's edge exists when the budget is *scarce*
relative to fleet content (a round or two per source on average) and
sources differ in records-per-round (page sizes span 5..50 in the
default plan).  With a generous budget every policy drains every
source and the ratio collapses to 1 — so the budget here scales with
``REPRO_BENCH_SCALE`` exactly as source sizes do.

Emits ``BENCH_fleet.json`` (path overridable via
``REPRO_BENCH_FLEET_OUT``) in the same shape the hot-path benchmark
uses: per-policy entries under ``"policies"``, with the
machine-independent ``speedup`` ratio (records over the rr baseline's)
gated by ``scripts/check_bench_regression.py`` against the committed
baseline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import emit

from repro.fleet import FleetConfig, compare_fleet, fleet_bench_payload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))

N_SOURCES = 500
#: Scarce on purpose: ~4 rounds per source at scale 1, ~1 at 0.25.
BUDGET = max(int(2000 * SCALE), N_SOURCES)

_OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_FLEET_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_fleet.json",
    )
)


def test_fleet_allocation():
    config = FleetConfig(
        n_sources=N_SOURCES,
        budget=BUDGET,
        scale=SCALE,
        seed=0,
        shards=8,
    )
    results = compare_fleet(config, workers="auto")

    lines = [
        f"fleet: {N_SOURCES} sources, budget {BUDGET} rounds, scale {SCALE}"
    ]
    for name in ("greedy", "fair", "rr"):
        result = results[name]
        lines.append(
            f"{name:8s} {result.total_records:7d} records  "
            f"{result.coverage:6.1%} coverage  "
            f"{result.rounds_used:5d} rounds  "
            f"{result.cooldown_waits:4d} waits"
        )
        # The shared budget is a hard guarantee for every policy.
        assert result.rounds_used <= BUDGET
        assert result.overshoot == 0

    # The paper's point, fleet-scale: marginal-rate allocation beats
    # fair share when the budget is scarce.
    assert results["greedy"].total_records > results["rr"].total_records, (
        f"greedy {results['greedy'].total_records} <= "
        f"rr {results['rr'].total_records}"
    )

    payload = fleet_bench_payload(results, scale=SCALE)
    _OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    lines.append(f"report written to {_OUT_PATH}")
    emit("\n".join(lines))
