"""Hot-path speedup pin: the interned crawl must be ≥2× the reference.

This PR's tentpole replaces ``DB_local``'s value-keyed dictionaries
with dense-id interning and array-backed indexes
(:mod:`repro.core.intern`, :mod:`repro.crawler.localdb`).  The
pre-refactor implementation is kept verbatim as
:class:`repro.crawler.reference.ReferenceLocalDatabase`; selectors and
the engine fall back to the original value-keyed paths when bound to
it, so a crawl over it is an honest pre-PR baseline running in the
same process.

Two things are pinned here, per policy configuration:

* **Bit-identity** — the interned crawl issues the same queries in the
  same order, harvests the same records, and logs the same history
  points as the reference crawl.  The refactor is an optimization, not
  a behavior change.
* **Per-policy end-to-end speedup floors** (``SPEEDUP_FLOORS``: ≥1.6×
  for GL, ≥2.4× for MMMI at the default scale, where the vectorized
  dependency kernel compounds with interning), measured as
  best-of-``PAIRS`` CPU time (``time.process_time`` — immune to
  wall-clock noise from busy neighbours).  Reduced-scale runs
  (``REPRO_BENCH_SCALE < 1``, the CI smoke job) use lower floors
  because shared fixed costs weigh more in short crawls; the CI job
  additionally compares the emitted speedups against the committed
  ``BENCH_hotpath.json`` baseline (see
  ``scripts/check_bench_regression.py``).

The run also emits a machine-readable ``BENCH_hotpath.json`` (path
overridable via ``REPRO_BENCH_OUT``) with per-policy timings,
steps/sec, and peak RSS.
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

from conftest import emit, scaled

from repro.crawler.engine import CrawlerEngine
from repro.crawler.reference import ReferenceLocalDatabase
from repro.datasets import generate_ebay
from repro.policies import GreedyLinkSelector, MinMaxMutualInformationSelector
from repro.server.interface import QueryInterface
from repro.server.webdb import SimulatedWebDatabase

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
#: Interleaved (reference, interned) timing pairs per policy.
PAIRS = 3
#: Required end-to-end speedup per policy at default scale.  Short
#: reduced-scale crawls amortize the shared server/page-serving cost
#: over fewer steps, so the smoke floors are lower; the
#: committed-baseline ratio check in CI covers regressions there.
#: MMMI's floor is higher than GL's: its scalar dependency recompute
#: was the dominant cost, so the vectorized kernel moves it much
#: further than GL's already-cheap degree lookups.  GL's floor is
#: below the historical 2.0 on purpose — engine-level improvements
#: (extraction memo, frontier) speed the *reference* leg too, which
#: compresses GL's ratio even as its absolute time keeps improving.
SPEEDUP_FLOORS = (
    {"greedy-link": 1.6, "mmmi": 2.4}
    if SCALE >= 1
    else {"greedy-link": 1.3, "mmmi": 1.8}
)

RECORDS = scaled(12_000)
TARGET_COVERAGE = 0.95
PAGE_SIZE = 10
TABLE_SEED = 1
ENGINE_SEED = 7

CONFIGS = [
    ("greedy-link", GreedyLinkSelector),
    ("mmmi", MinMaxMutualInformationSelector),
]

_OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_hotpath.json",
    )
)


def _build(selector_cls, reference: bool):
    table = generate_ebay(RECORDS, seed=TABLE_SEED)
    interface = QueryInterface(
        queriable_attributes=frozenset(
            a.name for a in table.schema.attributes if a.name != "title"
        )
    )
    server = SimulatedWebDatabase(
        table=table, interface=interface, page_size=PAGE_SIZE
    )
    selector = selector_cls()
    local_db = (
        ReferenceLocalDatabase(
            track_cooccurrence=selector.requires_cooccurrence
        )
        if reference
        else None  # engine builds the interned LocalDatabase
    )
    engine = CrawlerEngine(
        server, selector, seed=ENGINE_SEED, local_db=local_db
    )
    seed_value = next(iter(table.distinct_values("seller")))
    return engine, seed_value


def _run(selector_cls, reference: bool):
    engine, seed_value = _build(selector_cls, reference)
    start = time.process_time()
    result = engine.crawl([seed_value], target_coverage=TARGET_COVERAGE)
    elapsed = time.process_time() - start
    signature = (
        result.queries_issued,
        result.records_harvested,
        result.communication_rounds,
        tuple(engine.context.lqueried),
        tuple(result.history.points),
    )
    return elapsed, signature, result


def test_hotpath_speedup():
    report = {
        "benchmark": "hotpath_speedup",
        "records": RECORDS,
        "page_size": PAGE_SIZE,
        "target_coverage": TARGET_COVERAGE,
        "scale": SCALE,
        "pairs": PAIRS,
        "speedup_floors": SPEEDUP_FLOORS,
        "policies": {},
    }
    lines = []
    for name, selector_cls in CONFIGS:
        ref_times, new_times = [], []
        ref_sig = new_sig = None
        result = None
        # Interleave the legs so drift (throttling, allocator growth)
        # hits both sides equally; keep the min of each side.
        for _ in range(PAIRS):
            elapsed, sig, _res = _run(selector_cls, reference=True)
            ref_times.append(elapsed)
            ref_sig = sig if ref_sig is None else ref_sig
            assert sig == ref_sig, "reference crawl is nondeterministic"
            elapsed, sig, result = _run(selector_cls, reference=False)
            new_times.append(elapsed)
            new_sig = sig if new_sig is None else new_sig
            assert sig == new_sig, "interned crawl is nondeterministic"

        # Bit-identity: same queries in the same order, same records,
        # same rounds, same history curve.
        assert new_sig == ref_sig, (
            f"{name}: interned crawl diverged from the reference "
            f"(ref={ref_sig[:3]}, interned={new_sig[:3]})"
        )

        ref_best, new_best = min(ref_times), min(new_times)
        speedup = ref_best / new_best
        steps = result.queries_issued
        report["policies"][name] = {
            "reference_seconds": round(ref_best, 4),
            "interned_seconds": round(new_best, 4),
            "speedup": round(speedup, 3),
            "queries": steps,
            "records_harvested": result.records_harvested,
            "communication_rounds": result.communication_rounds,
            "steps_per_sec_reference": round(steps / ref_best, 1),
            "steps_per_sec_interned": round(steps / new_best, 1),
        }
        lines.append(
            f"{name:12s} ref {ref_best:7.3f}s  interned {new_best:7.3f}s  "
            f"speedup {speedup:4.2f}x  ({steps} queries, "
            f"{result.records_harvested} records)"
        )
        floor = SPEEDUP_FLOORS[name]
        assert speedup >= floor, (
            f"{name}: {speedup:.2f}x < required {floor}x "
            f"(ref {ref_best:.3f}s vs interned {new_best:.3f}s)"
        )

    # ru_maxrss is KiB on Linux; the crawl dominated this process.
    report["peak_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    _OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    lines.append(f"report written to {_OUT_PATH}")
    emit("\n".join(lines))
