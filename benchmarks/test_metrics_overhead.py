"""Telemetry benchmark: the metrics registry must be nearly free.

The acceptance bar for ``repro.metrics``: feeding a
:class:`~repro.metrics.TelemetrySink` costs under 5% of a 2,000-query
crawl's CPU time — while leaving the
:class:`~repro.crawler.engine.CrawlResult` bit-identical.

Every hot-path event lands in a counter ``inc_key`` or a histogram
``observe_key`` — a dict lookup plus a float add, O(1) per event with
no validation or allocation after the first label tuple — so the cost
is bounded by the event count, not crawl state.

Measuring a ~2% effect by differencing two end-to-end wall-clocks does
not work on a shared machine: per-run noise here (bursty neighbours,
frequency throttling) swings legs by tens of percent, swamping the
signal even with the interleaved-pairs trick ``test_runtime_overhead``
uses for its much larger 15% budget.  Instead this benchmark records
the instrumented crawl's exact event stream once, then times the sink
directly by replaying that stream through ``EventBus.emit`` — the
identical per-event work the crawl pays — and compares it against
plain-crawl legs interleaved with the replays.  Both sides are
CPU-time minima over several legs, so a ratio far from the ceiling
stays far from it under load.  (Event *construction* is the event
bus's cost, priced into the durable-runtime budget.)
"""

from __future__ import annotations

import time

from conftest import emit, scaled

from repro.crawler import CrawlerEngine
from repro.datasets import generate_ebay
from repro.metrics import TelemetrySink
from repro.policies import GreedyLinkSelector
from repro.runtime.events import EventBus, EventSink
from repro.server import SimulatedWebDatabase

MAX_QUERIES = 2_000
LEGS = 5  # interleaved (replay, plain-crawl) timing legs
OVERHEAD_CEILING = 0.05


class _RecordingSink(EventSink):
    """Capture the crawl's event stream for replay."""

    def __init__(self) -> None:
        self.events = []

    def handle(self, event) -> None:
        self.events.append(event)


def build_engine(table, bus=None):
    return CrawlerEngine(
        SimulatedWebDatabase(table, page_size=10),
        GreedyLinkSelector(),
        seed=5,
        bus=bus,
    )


def run_comparison():
    table = generate_ebay(n_records=scaled(8000), seed=1)
    seeds = [
        next(
            value
            for value in table.distinct_values("seller")
            if table.frequency(value) >= 3
        )
    ]

    # One instrumented crawl: records the event stream and proves the
    # sink never steers the crawl.
    bus = EventBus()
    recorder = bus.attach(_RecordingSink())
    bus.attach(TelemetrySink(truth_size=len(table)))
    instrumented_result = build_engine(table, bus=bus).crawl(
        seeds, max_queries=MAX_QUERIES
    )

    def timed_replay():
        replay_bus = EventBus()
        replay_bus.attach(TelemetrySink(truth_size=len(table)))
        start = time.process_time()
        for event in recorder.events:
            replay_bus.emit(event)
        return time.process_time() - start

    def timed_plain_crawl():
        engine = build_engine(table)
        start = time.process_time()
        result = engine.crawl(seeds, max_queries=MAX_QUERIES)
        return time.process_time() - start, result

    plain_result = None
    sink_times, crawl_times = [], []
    timed_replay()  # warm the replay path once
    for _ in range(LEGS):
        sink_times.append(timed_replay())
        elapsed, plain_result = timed_plain_crawl()
        crawl_times.append(elapsed)
    return {
        "events": len(recorder.events),
        "sink": min(sink_times),
        "crawl": min(crawl_times),
        "overhead": min(sink_times) / min(crawl_times),
        "plain_result": plain_result,
        "instrumented_result": instrumented_result,
    }


def test_telemetry_overhead_stays_under_5_percent(benchmark):
    timing = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    overhead = timing["overhead"]
    emit(
        f"2k-query GL crawl: {timing['crawl']:.3f}s CPU, telemetry for "
        f"its {timing['events']} events {timing['sink'] * 1000:.1f}ms "
        f"-> overhead {overhead:+.1%} (ceiling {OVERHEAD_CEILING:.0%})"
    )
    # Telemetry must observe the crawl, never steer it...
    assert timing["instrumented_result"] == timing["plain_result"]
    assert timing["plain_result"].queries_issued == MAX_QUERIES
    # ...and close to free.
    assert overhead < OVERHEAD_CEILING
