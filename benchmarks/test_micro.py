"""Micro-benchmarks of the performance-critical substrate operations.

Unlike the experiment benches (one-shot ``pedantic`` runs of a whole
figure), these use pytest-benchmark's statistical timing over many
rounds: they guard the hot paths every crawl exercises thousands of
times — table lookups, local-database ingestion, frontier operations,
graph construction, and Zipf sampling.
"""

import random

import pytest

from repro.core import Query
from repro.crawler import LocalDatabase, PriorityFrontier
from repro.datasets import ZipfSampler, generate_ebay, load_dataset
from repro.graph import build_avg_from_table, greedy_weighted_dominating_set


@pytest.fixture(scope="module")
def table():
    return generate_ebay(3000, seed=1)


def test_bench_equality_match(benchmark, table):
    values = table.distinct_values("seller")[:100]
    queries = [Query.equality(v.attribute, v.value) for v in values]

    def lookup():
        return sum(len(table.match(query)) for query in queries)

    total = benchmark(lookup)
    assert total > 0


def test_bench_keyword_match(benchmark, table):
    """match_keyword now returns a pre-sorted copy — no per-call sort."""
    values = [v.value for v in table.distinct_values("seller")[:100]]

    def lookup():
        return sum(len(table.match_keyword(value)) for value in values)

    assert benchmark(lookup) > 0


def test_bench_match_under_churn(benchmark):
    """Interleaved inserts and matches — the posting-sort hot path.

    Before the sorted-at-insert fix every match paid an O(n log n)
    sort of the full posting list; now inserts keep lists ordered
    (O(1) append for the common ascending-id case) and matches copy.
    """
    from repro.core import Record, RelationalTable, Schema

    schema = Schema.of("category", "seller")
    rows = [
        (record_id, f"cat{record_id % 5}", f"s{record_id % 37}")
        for record_id in range(2000)
    ]

    def churn():
        table = RelationalTable(schema)
        matched = 0
        for record_id, category, seller in rows:
            table.insert(
                Record.build(record_id, schema, category=category, seller=seller)
            )
            if record_id % 20 == 0:
                matched += len(table.match_equality("category", category))
        return matched

    assert benchmark(churn) > 0


def test_bench_localdb_ingest(benchmark, table):
    records = list(table)[:1000]

    def ingest():
        local = LocalDatabase(track_cooccurrence=True)
        local.add_all(records)
        return len(local)

    assert benchmark(ingest) == 1000


def test_bench_priority_frontier(benchmark):
    rng = random.Random(0)
    from repro.core import AttributeValue

    values = [AttributeValue("a", f"v{i}") for i in range(2000)]
    scores = {value: rng.random() for value in values}

    def churn():
        frontier = PriorityFrontier(lambda v: scores[v])
        frontier.push_all(values)
        popped = 0
        while frontier.pop() is not None:
            popped += 1
        return popped

    assert benchmark(churn) == 2000


def test_bench_avg_construction(benchmark, table):
    graph = benchmark(lambda: build_avg_from_table(table, queriable_only=True))
    assert graph.number_of_nodes() > 0


def test_bench_greedy_dominating_set(benchmark):
    table = load_dataset("dblp", 1200, seed=3)
    graph = build_avg_from_table(table, queriable_only=True)

    chosen = benchmark.pedantic(
        lambda: greedy_weighted_dominating_set(graph, weight="weight"),
        rounds=3,
        iterations=1,
    )
    assert len(chosen) > 0


def test_bench_zipf_sampling(benchmark):
    sampler = ZipfSampler(100_000, 1.1)
    rng = random.Random(7)

    def draw():
        return sum(sampler.sample(rng) for _ in range(10_000))

    assert benchmark(draw) >= 0


def test_bench_end_to_end_crawl(benchmark, table):
    """A whole GL crawl to 80% — the library's composite hot path."""
    from repro.crawler import CrawlerEngine
    from repro.policies import GreedyLinkSelector
    from repro.server import SimulatedWebDatabase

    seed_value = next(
        v for v in table.distinct_values("seller") if table.frequency(v) >= 3
    )

    def crawl():
        server = SimulatedWebDatabase(table, page_size=10)
        engine = CrawlerEngine(server, GreedyLinkSelector(), seed=1)
        return engine.crawl([seed_value], target_coverage=0.8)

    result = benchmark.pedantic(crawl, rounds=3, iterations=1)
    assert result.coverage >= 0.8
