"""Network-lane load benchmark: ≥500 concurrent sessions vs a cluster.

Starts the multi-core serving lane (:class:`repro.net.SourceCluster` —
``SO_REUSEPORT`` worker processes on shared-memory tables, rendered
pages cached) and drives :func:`repro.net.run_loadtest` at ``SESSIONS``
concurrent sessions (scaled by ``REPRO_BENCH_SCALE``, with a hard floor
of 500 at default scale per the acceptance bar).  The run must complete
with zero transport errors and emit latency percentiles.

The emitted ``BENCH_net.json`` (path overridable via
``REPRO_BENCH_NET_OUT``) matches the ``scripts/check_bench_regression.py``
shape; the gated ratio is ``concurrency_speedup`` — concurrent over
single-session throughput measured back-to-back in one process, the
same machine-independent construction as the hot-path speedup.  Both
legs warm their connections before timing (see
:mod:`repro.net.loadtest`); worker count and serving mode are recorded
in the bench provenance.

``REPRO_BENCH_NET_WORKERS`` overrides the worker count (default:
``min(4, cpu_count)``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import emit, scaled

from repro.datasets import generate_ebay
from repro.metrics import MetricsRegistry
from repro.net import SourceCluster, run_loadtest, write_bench
from repro.server import SimulatedWebDatabase

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
#: The acceptance bar: at default scale the fleet is at least 500
#: concurrent sessions.  Reduced-scale smoke runs shrink with SCALE
#: but never below 50.
SESSIONS = max(int(500 * SCALE), 50 if SCALE < 1 else 500)
QUERIES_PER_SESSION = 2
VALUE_POOL = 64
RECORDS = scaled(4_000)
WORKERS = int(
    os.environ.get("REPRO_BENCH_NET_WORKERS", str(min(4, os.cpu_count() or 1)))
)
#: The acceptance floor for the gated ratio at full scale.
SPEEDUP_FLOOR = 2.5

_OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_NET_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_net.json",
    )
)


def test_net_loadtest_sustains_concurrent_sessions():
    table = generate_ebay(RECORDS, seed=1)
    cluster = SourceCluster(
        {"ebay": SimulatedWebDatabase(table, page_size=10)},
        workers=WORKERS,
    )
    registry = MetricsRegistry()
    with cluster as url:
        report = run_loadtest(
            url,
            "ebay",
            sessions=SESSIONS,
            queries_per_session=QUERIES_PER_SESSION,
            value_pool=VALUE_POOL,
            seed=3,
            registry=registry,
        )
        snapshot = cluster.snapshot()

    emit(report.summary())
    cache = snapshot.cache_stats
    emit(
        f"cluster: {WORKERS} worker(s), {cluster.mode} mode, "
        f"{snapshot.requests_served} requests served, "
        f"cache hits/misses={cache[0]}/{cache[1]}" if cache else "no cache"
    )

    assert report.sessions == SESSIONS
    assert report.errors == 0
    assert report.requests >= SESSIONS * QUERIES_PER_SESSION
    # Percentiles are real measurements, ordered as percentiles must be.
    assert 0 < report.latency_p50 <= report.latency_p95 <= report.latency_p99
    assert report.requests_per_sec > 0
    if SCALE >= 1:
        # The multi-core lane's reason to exist: concurrent sessions
        # must be well past serial throughput, not just level with it.
        assert report.concurrency_speedup >= SPEEDUP_FLOOR, report.summary()

    payload = write_bench(
        report,
        _OUT_PATH,
        scale=SCALE,
        provenance={
            "workers": WORKERS,
            "mode": cluster.mode,
            "page_cache": True,
            "cpu_count": os.cpu_count(),
        },
    )
    emit(f"wrote {_OUT_PATH}")
    assert json.loads(_OUT_PATH.read_text()) == payload
