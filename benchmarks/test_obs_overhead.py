"""Observability benchmark: trace context + profiler under 5% of the crawl.

Same measurement design as ``test_trace_overhead``: the instrumented
crawl's exact event stream (phase events included, since
:class:`~repro.obs.CrawlTraceContext` declares ``wants_phases``) is
recorded once, then the observability hot path — the context's span-id
mirroring on every event — is timed directly by replaying that stream
through ``EventBus.emit``, interleaved with plain-crawl legs.  Both
sides are CPU-time minima over several legs.

The replay leg runs with the :class:`~repro.obs.SamplingProfiler`
attached and sampling the replay thread at its default 5 ms interval,
so the measured cost covers everything ``--sample-profile`` plus
remote-trace propagation would add to a crawl: event dispatch into the
context, per-query id assembly, the label reads the profiler performs
from its sampling thread, and the GIL traffic of ``sys._current_frames``
snapshots landing on the measured thread.
"""

from __future__ import annotations

import time

from conftest import emit, scaled

from repro.crawler import CrawlerEngine
from repro.datasets import generate_ebay
from repro.obs import CrawlTraceContext, SamplingProfiler
from repro.policies import GreedyLinkSelector
from repro.runtime.events import EventBus, EventSink
from repro.server import SimulatedWebDatabase

MAX_QUERIES = 2_000
LEGS = 5  # interleaved (replay, plain-crawl) timing legs
OVERHEAD_CEILING = 0.05


class _RecordingSink(EventSink):
    """Capture the crawl's event stream — phase events included."""

    wants_phases = True

    def __init__(self) -> None:
        self.events = []

    def handle(self, event) -> None:
        self.events.append(event)


def build_engine(table, bus=None):
    return CrawlerEngine(
        SimulatedWebDatabase(table, page_size=10),
        GreedyLinkSelector(),
        seed=5,
        bus=bus,
    )


def run_comparison(tmp_path):
    table = generate_ebay(n_records=scaled(32000), seed=1)
    seeds = [
        next(
            value
            for value in table.distinct_values("seller")
            if table.frequency(value) >= 3
        )
    ]

    # One instrumented crawl: records the full event stream and proves
    # the observers never steer the crawl.
    bus = EventBus()
    recorder = bus.attach(_RecordingSink())
    bus.attach(CrawlTraceContext(trace_id="bench"))
    instrumented_result = build_engine(table, bus=bus).crawl(
        seeds, max_queries=MAX_QUERIES
    )

    def timed_replay(leg):
        replay_bus = EventBus()
        context = replay_bus.attach(CrawlTraceContext(trace_id="bench"))
        profiler = SamplingProfiler(
            label_provider=context.current_label
        ).start()
        try:
            start = time.process_time()
            for event in recorder.events:
                replay_bus.emit(event)
            elapsed = time.process_time() - start
        finally:
            profiler.stop()
        if leg != "warm":
            profiler.write_folded(tmp_path / f"replay-{leg}.folded")
        return elapsed

    def timed_plain_crawl():
        engine = build_engine(table)
        start = time.process_time()
        result = engine.crawl(seeds, max_queries=MAX_QUERIES)
        return time.process_time() - start, result

    plain_result = None
    obs_times, crawl_times = [], []
    timed_replay("warm")  # warm the replay path once
    for leg in range(LEGS):
        obs_times.append(timed_replay(leg))
        elapsed, plain_result = timed_plain_crawl()
        crawl_times.append(elapsed)
    return {
        "events": len(recorder.events),
        "obs": min(obs_times),
        "crawl": min(crawl_times),
        "overhead": min(obs_times) / min(crawl_times),
        "plain_result": plain_result,
        "instrumented_result": instrumented_result,
    }


def test_observability_overhead_stays_under_5_percent(benchmark, tmp_path):
    timing = benchmark.pedantic(
        run_comparison, args=(tmp_path,), rounds=1, iterations=1
    )
    overhead = timing["overhead"]
    emit(
        f"2k-query GL crawl: {timing['crawl']:.3f}s CPU, trace context + "
        f"sampling profiler over its {timing['events']} events "
        f"{timing['obs'] * 1000:.1f}ms -> overhead {overhead:+.1%} "
        f"(ceiling {OVERHEAD_CEILING:.0%})"
    )
    # Observation must watch the crawl, never steer it...
    assert timing["instrumented_result"] == timing["plain_result"]
    assert timing["plain_result"].queries_issued == MAX_QUERIES
    # ...and stay close to free.
    assert overhead < OVERHEAD_CEILING
