"""Benchmark: the parallel experiment executor — identity and speedup.

Two guarantees, benchmarked separately:

1. **Bit-identity** (always runs): a Figure-3-sized grid fanned out
   over a real multi-process pool produces *exactly* the results the
   sequential path produces — same histories, same coverage curves,
   same round counts.  The equality is exercised with explicit
   ``workers=4``, which ``resolve_workers`` honours regardless of the
   machine's CPU count.

2. **Speedup** (needs ≥ 4 CPUs): with 4 workers the same grid must
   complete at least 2× faster than the sequential runner.  Perfectly
   independent crawls should get near-linear scaling; 2× at 4 workers
   leaves headroom for pool start-up and result pickling.
"""

from __future__ import annotations

import time

import pytest
from conftest import emit, scaled

from repro.datasets import generate_ebay
from repro.experiments.figure3 import FIGURE3_POLICIES
from repro.experiments.harness import run_policy_suite
from repro.parallel import available_workers
from repro.runtime.events import EventBus, RingBufferSink


@pytest.fixture(scope="module")
def grid_table():
    """A Figure-3-sized eBay database shared by both benches."""
    return generate_ebay(scaled(3000), seed=1)


def _run_suite(table, workers, bus=None):
    return run_policy_suite(
        table,
        dict(FIGURE3_POLICIES),
        n_seeds=4,
        rng_seed=1,
        target_coverage=0.9,
        workers=workers,
        bus=bus,
    )


def test_parallel_grid_bit_identical(benchmark, grid_table):
    """workers=4 reproduces the sequential suite result-for-result."""
    sequential = _run_suite(grid_table, workers=1)
    parallel = benchmark.pedantic(
        lambda: _run_suite(grid_table, workers=4), rounds=1, iterations=1
    )

    assert set(parallel) == set(sequential)
    assert parallel == sequential
    for label, run in sequential.items():
        twin = parallel[label]
        assert twin.policy == run.policy
        assert len(twin.results) == len(run.results)
        for seq, par in zip(run.results, twin.results):
            assert par.history == seq.history
            assert par.coverage == seq.coverage
            assert par.communication_rounds == seq.communication_rounds
            assert par.queries_issued == seq.queries_issued


@pytest.mark.skipif(
    available_workers() < 4,
    reason="speedup needs at least 4 CPUs; identity is asserted regardless",
)
def test_parallel_grid_speedup(benchmark, grid_table):
    """≥ 2× wall-clock at 4 workers on a 4-policy × 4-seed grid."""
    started = time.perf_counter()
    _run_suite(grid_table, workers=1)
    sequential_wall = time.perf_counter() - started

    bus = EventBus()
    sink = bus.attach(RingBufferSink())
    started = time.perf_counter()
    benchmark.pedantic(
        lambda: _run_suite(grid_table, workers=4, bus=bus),
        rounds=1,
        iterations=1,
    )
    parallel_wall = time.perf_counter() - started

    from repro.analysis import render_speedup_table

    emit(render_speedup_table(sink.events))
    benchmark.extra_info["sequential_wall_s"] = round(sequential_wall, 2)
    benchmark.extra_info["parallel_wall_s"] = round(parallel_wall, 2)
    benchmark.extra_info["speedup"] = round(sequential_wall / parallel_wall, 2)
    assert parallel_wall * 2 <= sequential_wall, (
        f"expected >=2x speedup at 4 workers: sequential {sequential_wall:.2f}s "
        f"vs parallel {parallel_wall:.2f}s"
    )
