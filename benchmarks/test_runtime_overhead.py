"""Durable-runtime benchmark: checkpointing must be nearly free.

The acceptance bar for ``repro.runtime``: with ``--checkpoint-every
100``, a 2,000-query crawl's wall-clock regression stays under 15%
versus no checkpointing — while producing a bit-identical
:class:`~repro.crawler.engine.CrawlResult`.

The durable loop journals every step and group-commits at checkpoint
markers (journal flush + ``progress.json``); full-state snapshots are
written only at baseline and suspension.  That keeps the hot-path cost
O(new data per step) instead of O(crawl state) — the design this
benchmark pins down.

Timing uses interleaved plain/durable pairs with alternating leg
order, because raw wall-clock on a shared machine has two failure
modes: bursty neighbours (additive noise) and a monotone slowdown
across consecutive runs in one process (frequency throttling /
allocator growth — ~5% per crawl here, which would swamp the signal).
Within a pair the two legs are adjacent, so a pair's ratio carries at
most one leg of drift — biased *up* when plain runs first and *down*
when durable runs first.  Taking the best (quietest) pair of each
order and averaging the two geometrically cancels the drift while the
min discards the bursts.  A real O(crawl state) regression still
fails loudly: it inflates every pair of both orders (snapshots at
every marker measured 5–10×, not 1.1×).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from conftest import emit, scaled

from repro.crawler import CrawlerEngine
from repro.datasets import generate_ebay
from repro.policies import GreedyLinkSelector
from repro.runtime import RuntimeCrawler
from repro.server import SimulatedWebDatabase

MAX_QUERIES = 2_000
CHECKPOINT_EVERY = 100
PAIRS = 5  # interleaved (plain, durable) timing pairs, alternating order
OVERHEAD_CEILING = 0.15


def build_runtime(table, checkpoint_dir=None):
    engine = CrawlerEngine(
        SimulatedWebDatabase(table, page_size=10),
        GreedyLinkSelector(),
        seed=5,
    )
    if checkpoint_dir is None:
        return RuntimeCrawler(engine)
    return RuntimeCrawler(
        engine,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=CHECKPOINT_EVERY,
    )


def timed_crawl(table, seeds, checkpoint_dir=None):
    runtime = build_runtime(table, checkpoint_dir)
    start = time.perf_counter()
    result = runtime.crawl(seeds, max_queries=MAX_QUERIES)
    elapsed = time.perf_counter() - start
    runtime.close()
    return elapsed, result


def run_comparison():
    table = generate_ebay(n_records=scaled(8000), seed=1)
    seeds = [
        next(
            value
            for value in table.distinct_values("seller")
            if table.frequency(value) >= 3
        )
    ]
    plain_times, durable_times = [], []
    ratios = {0: [], 1: []}  # durable_first -> durable/plain pair ratios
    plain_result = durable_result = None
    for pair in range(PAIRS):
        durable_first = pair % 2  # alternate order so drift biases both ways
        for leg in (durable_first, 1 - durable_first):
            if leg:
                checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-bench-ck-"))
                elapsed, durable_result = timed_crawl(
                    table, seeds, checkpoint_dir=checkpoint_dir / "crawl"
                )
                durable_times.append(elapsed)
            else:
                elapsed, plain_result = timed_crawl(table, seeds)
                plain_times.append(elapsed)
        ratios[durable_first].append(durable_times[-1] / plain_times[-1])
    # Best pair of each leg order; their geometric mean cancels drift.
    overhead = (min(ratios[0]) * min(ratios[1])) ** 0.5 - 1
    return {
        "plain": min(plain_times),
        "durable": min(durable_times),
        "plain_first": min(ratios[0]) - 1,
        "durable_first": min(ratios[1]) - 1,
        "overhead": overhead,
        "plain_result": plain_result,
        "durable_result": durable_result,
    }


def test_checkpoint_overhead_stays_under_15_percent(benchmark):
    timing = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    overhead = timing["overhead"]
    emit(
        f"2k-query GL crawl: plain {timing['plain']:.3f}s, "
        f"durable (checkpoint_every={CHECKPOINT_EVERY}) "
        f"{timing['durable']:.3f}s; best pair per order "
        f"{timing['plain_first']:+.1%} / {timing['durable_first']:+.1%} "
        f"-> overhead {overhead:+.1%} (ceiling {OVERHEAD_CEILING:.0%})"
    )
    # The durable run must be the same crawl, bit for bit...
    assert timing["durable_result"] == timing["plain_result"]
    assert timing["plain_result"].queries_issued == MAX_QUERIES
    # ...and close to free.
    assert overhead < OVERHEAD_CEILING
