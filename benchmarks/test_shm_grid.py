"""Shared-memory grid identity: parallel + shm equals sequential + copy.

The CI smoke leg for the shared-memory payload path: a (GL, MMMI) x
seed-set grid fanned out over two workers attaching one shared-memory
table block must produce byte-identical results to the sequential
legacy path crawling the in-process table — same query sequences, same
harvested records, same history curves — while actually accounting the
shared block's bytes through the metrics registry.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro.core import shmtable
from repro.datasets.ebay import generate_ebay
from repro.experiments.harness import run_policy_suite
from repro.metrics.registry import MetricsRegistry
from repro.policies import GreedyLinkSelector, MinMaxMutualInformationSelector

pytestmark = pytest.mark.skipif(
    not shmtable.supported(), reason="shared-memory payloads unsupported"
)

POLICIES = {
    "greedy-link": GreedyLinkSelector,
    "mmmi": MinMaxMutualInformationSelector,
}


def run_suite(table, workers, share_table, metrics=None):
    return run_policy_suite(
        table,
        POLICIES,
        n_seeds=2,
        rng_seed=5,
        workers=workers,
        metrics=metrics,
        share_table=share_table,
        max_queries=40,
    )


def test_shm_grid_matches_sequential_plain():
    table = generate_ebay(n_records=scaled(1200, minimum=300), seed=13)
    metrics = MetricsRegistry()

    sequential = run_suite(table, workers=1, share_table=False)
    parallel = run_suite(table, workers=2, share_table=True, metrics=metrics)

    assert sorted(parallel) == sorted(sequential)
    for policy in sequential:
        reference, shared = sequential[policy], parallel[policy]
        assert len(shared.results) == len(reference.results)
        for ref, got in zip(reference.results, shared.results):
            assert got.queries_issued == ref.queries_issued
            assert got.records_harvested == ref.records_harvested
            assert got.history == ref.history
            assert got == ref  # the full CrawlResult, field for field

    shm_bytes = metrics.gauge(
        "grid_shm_bytes",
        "Bytes of shared-memory table payloads backing experiment grids",
    ).value()
    assert shm_bytes > 0

    # The block must not outlive the grid (cleanup ran in the harness).
    from multiprocessing import shared_memory

    leaked = [
        name
        for name in getattr(shmtable, "_CREATED", {})
        if _still_exists(shared_memory, name)
    ]
    assert leaked == []


def _still_exists(shared_memory, name) -> bool:
    try:
        block = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    block.close()
    return True
