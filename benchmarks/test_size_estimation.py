"""Benchmark: regenerate the Section 5 size-estimation experiment."""

from conftest import amazon_setup, emit

from repro.experiments import run_size_estimation


def test_size_estimation(benchmark, amazon_setup):
    result = benchmark.pedantic(
        lambda: run_size_estimation(amazon_setup, n_crawls=6, rng_seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    # Shape: 6 crawls -> C(6,2) = 15 pairwise estimates, exactly as in
    # the paper, and the estimate lands in the truth's neighbourhood
    # (mildly low — crawl samples over-represent the crawlable bulk,
    # a bias the paper's live experiment shares but could not see).
    assert len(result.estimates) == 15
    assert 0.5 * result.true_size <= result.interval.mean <= 1.3 * result.true_size
    assert result.upper_bound >= result.interval.mean
    assert result.union_size <= result.true_size
    benchmark.extra_info["true_size"] = result.true_size
    benchmark.extra_info["mean_estimate"] = round(result.interval.mean)
    benchmark.extra_info["upper_bound_90"] = round(result.upper_bound)
    benchmark.extra_info["relative_error"] = round(result.relative_error, 4)
