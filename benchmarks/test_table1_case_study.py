"""Benchmark: regenerate Table 1 (the 480-source interface case study)."""

from conftest import emit

from repro.experiments import run_table1


def test_table1_case_study(benchmark):
    result = benchmark.pedantic(
        lambda: run_table1(sources_per_domain=44, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    # Shape: the regenerated survey matches the paper's percentages
    # up to rounding at 44 sources/domain.
    assert len(result.rows) == 11
    assert result.max_absolute_error() <= 0.05
    # Spot-check the paper's extremes.
    assert result.row("computer").keyword_fraction == 1.0
    assert result.row("car").keyword_fraction < 0.2
    assert result.row("book").sqm_fraction == 1.0
    benchmark.extra_info["max_abs_error"] = result.max_absolute_error()
