"""Benchmark: regenerate Table 2 (interface schemas + distinct values)."""

from conftest import emit, scaled

from repro.experiments import run_table2


def test_table2_schemas(benchmark):
    result = benchmark.pedantic(
        lambda: run_table2(n_records=scaled(4000), seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result.render())

    assert {row.dataset for row in result.rows} == {"ebay", "imdb", "dblp", "acm"}
    # Shape: IMDB has the widest interface and the highest
    # values-per-record ratio, as in the paper's Table 2.
    ratios = {row.dataset: row.values_per_record for row in result.rows}
    assert max(ratios, key=ratios.get) == "imdb"
    widths = {row.dataset: len(row.queriable_attributes) for row in result.rows}
    assert widths == {"ebay": 4, "acm": 5, "dblp": 5, "imdb": 12}
    for row in result.rows:
        benchmark.extra_info[f"{row.dataset}_values_per_record"] = round(
            row.values_per_record, 3
        )
