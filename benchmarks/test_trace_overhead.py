"""Tracing benchmark: span assembly must cost under 5% of the crawl.

Same measurement design as ``test_metrics_overhead``: differencing two
end-to-end wall-clocks cannot resolve a few-percent effect on a shared
machine, so the instrumented crawl's exact event stream — including
the ``StepStarted``/``PhaseCompleted`` phase events the engine only
emits when a tracer is attached — is recorded once, then the
:class:`~repro.trace.TraceSink` is timed directly by replaying that
stream through ``EventBus.emit``, interleaved with plain-crawl legs.
Both sides are CPU-time minima over several legs.

The replay prices the sink's whole hot path: span assembly, id
formatting, seq assignment, JSON serialization, and the buffered file
writes.  (Engine-side instrumentation — two clock reads per phase —
is a handful of syscall-free reads per step, far below this budget.)

The source is a 32k-record table, where one query–harvest–decompose
step costs ~0.8 ms CPU.  That is the harshest realistic denominator:
every page is served from memory in microseconds, while a query
against a real web source pays network round trips a thousand times
larger — so the ratio measured here is a conservative upper bound on
tracing overhead in any deployment.
"""

from __future__ import annotations

import time

from conftest import emit, scaled

from repro.crawler import CrawlerEngine
from repro.datasets import generate_ebay
from repro.policies import GreedyLinkSelector
from repro.runtime.events import EventBus, EventSink
from repro.server import SimulatedWebDatabase
from repro.trace import TraceSink

MAX_QUERIES = 2_000
LEGS = 5  # interleaved (replay, plain-crawl) timing legs
OVERHEAD_CEILING = 0.05


class _RecordingSink(EventSink):
    """Capture the crawl's event stream — phase events included."""

    wants_phases = True

    def __init__(self) -> None:
        self.events = []

    def handle(self, event) -> None:
        self.events.append(event)


def build_engine(table, bus=None):
    return CrawlerEngine(
        SimulatedWebDatabase(table, page_size=10),
        GreedyLinkSelector(),
        seed=5,
        bus=bus,
    )


def run_comparison(tmp_path):
    table = generate_ebay(n_records=scaled(32000), seed=1)
    seeds = [
        next(
            value
            for value in table.distinct_values("seller")
            if table.frequency(value) >= 3
        )
    ]

    # One instrumented crawl: records the full traced event stream and
    # proves the sink never steers the crawl.
    bus = EventBus()
    recorder = bus.attach(_RecordingSink())
    bus.attach(TraceSink(tmp_path / "recorded.jsonl"))
    instrumented_result = build_engine(table, bus=bus).crawl(
        seeds, max_queries=MAX_QUERIES
    )

    def timed_replay(leg):
        replay_bus = EventBus()
        replay_bus.attach(TraceSink(tmp_path / f"replay-{leg}.jsonl"))
        start = time.process_time()
        for event in recorder.events:
            replay_bus.emit(event)
        return time.process_time() - start

    def timed_plain_crawl():
        engine = build_engine(table)
        start = time.process_time()
        result = engine.crawl(seeds, max_queries=MAX_QUERIES)
        return time.process_time() - start, result

    plain_result = None
    sink_times, crawl_times = [], []
    timed_replay("warm")  # warm the replay path once
    for leg in range(LEGS):
        sink_times.append(timed_replay(leg))
        elapsed, plain_result = timed_plain_crawl()
        crawl_times.append(elapsed)
    return {
        "events": len(recorder.events),
        "sink": min(sink_times),
        "crawl": min(crawl_times),
        "overhead": min(sink_times) / min(crawl_times),
        "plain_result": plain_result,
        "instrumented_result": instrumented_result,
    }


def test_tracing_overhead_stays_under_5_percent(benchmark, tmp_path):
    timing = benchmark.pedantic(
        run_comparison, args=(tmp_path,), rounds=1, iterations=1
    )
    overhead = timing["overhead"]
    emit(
        f"2k-query GL crawl: {timing['crawl']:.3f}s CPU, span tracing for "
        f"its {timing['events']} events {timing['sink'] * 1000:.1f}ms "
        f"-> overhead {overhead:+.1%} (ceiling {OVERHEAD_CEILING:.0%})"
    )
    # Tracing must observe the crawl, never steer it...
    assert timing["instrumented_result"] == timing["plain_result"]
    assert timing["plain_result"].queries_issued == MAX_QUERIES
    # ...and stay close to free.
    assert overhead < OVERHEAD_CEILING
