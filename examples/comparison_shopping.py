#!/usr/bin/env python
"""Comparison shopping: warehouse several competing stores' catalogues.

The paper motivates deep-web crawling with "comparison shopping ...
integrating data from different, potentially competing product
providers".  This example crawls three simulated DVD stores that carry
overlapping slices of the same movie universe, merges the harvested
records into one local warehouse keyed by title, and reports which
titles are available where and at what price.

Run:  python examples/comparison_shopping.py
"""

from collections import defaultdict

from repro.crawler import CrawlerEngine
from repro.datasets import (
    IMDB_DT_ATTRIBUTES,
    MovieUniverse,
    generate_amazon_dvd,
    imdb_table_from_movies,
)
from repro.domain import build_domain_table
from repro.policies import DomainKnowledgeSelector
from repro.server import SimulatedWebDatabase


def crawl_store(store, domain_table, budget: int, seed: int):
    """Crawl one store with the DM selector; returns its local records."""
    server = SimulatedWebDatabase(store, page_size=10)
    engine = CrawlerEngine(
        server, DomainKnowledgeSelector(domain_table), seed=seed
    )
    seed_value = next(
        value for value in store.distinct_values("actor")
        if store.frequency(value) >= 2
    )
    result = engine.crawl([seed_value], max_rounds=budget)
    print(
        f"  {store.name}: {result.records_harvested:,}/{len(store):,} records "
        f"({result.coverage:.0%}) in {result.communication_rounds:,} rounds"
    )
    return list(engine.local_db)


def main() -> None:
    universe = MovieUniverse(n_movies=3000, seed=23, obscure_fraction=0.1)
    sample = imdb_table_from_movies(universe.since(1960), name="imdb-sample")
    domain_table = build_domain_table(sample, attributes=IMDB_DT_ATTRIBUTES)

    # Three competing retailers carrying different slices of the domain.
    stores = []
    for index, (fraction, name) in enumerate(
        ((0.7, "dvd-planet"), (0.5, "discount-discs"), (0.4, "classic-films"))
    ):
        store = generate_amazon_dvd(
            universe, catalogue_fraction=fraction, seed=40 + index
        )
        store.name = name
        stores.append(store)

    print("crawling three competing stores with the DM selector:")
    warehouse = defaultdict(dict)  # title -> store -> price
    for index, store in enumerate(stores):
        for record in crawl_store(store, domain_table, budget=2500, seed=index):
            title = record.values_of("title")[0]
            price = (record.values_of("price") or ("?",))[0]
            warehouse[title][store.name] = price

    multi = {t: offers for t, offers in warehouse.items() if len(offers) >= 2}
    print(f"\nwarehouse: {len(warehouse):,} distinct titles, "
          f"{len(multi):,} available from 2+ stores")
    print("\nsample comparison rows:")
    for title in sorted(multi)[:8]:
        offers = ", ".join(
            f"{store}: {price}" for store, price in sorted(multi[title].items())
        )
        print(f"  {title:32s} {offers}")


if __name__ == "__main__":
    main()
