#!/usr/bin/env python
"""Bootstrapping a product-database crawl with domain knowledge.

The paper's flagship scenario (Section 4 / Figure 5): you already hold
a same-domain sample database (IMDB) and want to crawl a retailer's
DVD catalogue whose interface only lets you search by title and people.
A domain statistics table built from the sample both widens the
candidate query pool (values the crawl has never seen) and sharpens
harvest-rate estimates.

Run:  python examples/domain_bootstrap.py
"""

from repro.crawler import CrawlerEngine
from repro.datasets import (
    IMDB_DT_ATTRIBUTES,
    MovieUniverse,
    generate_amazon_dvd,
    imdb_table_from_movies,
)
from repro.domain import build_domain_table
from repro.policies import DomainKnowledgeSelector, GreedyLinkSelector
from repro.server import ResultLimitPolicy, SimulatedWebDatabase


def main() -> None:
    # One movie universe feeds both databases: the IMDB sample we own and
    # the store we want to crawl (overlapping but not identical content).
    universe = MovieUniverse(n_movies=5000, seed=11, obscure_fraction=0.2)
    store = generate_amazon_dvd(universe, seed=3)
    print(f"target store: {len(store):,} DVDs, queriable attributes: "
          f"{', '.join(store.schema.queriable)}")

    # The domain statistics table: value -> probability + posting list,
    # from the movies released since 1960 (the paper's DM(I) subset).
    sample = imdb_table_from_movies(universe.since(1960), name="imdb-sample")
    domain_table = build_domain_table(sample, attributes=IMDB_DT_ATTRIBUTES)
    print(f"domain table: {len(domain_table):,} values "
          f"from a {domain_table.size:,}-movie IMDB sample")

    # The store caps every query's accessible results (like Amazon's
    # 3,200-record limit) and ranks matches, so hubs cannot be drained.
    limit = max(len(store) * 3200 // 37000, 20)
    budget = len(store) * 10000 // 37000 * 2
    seed_value = next(
        value for value in store.distinct_values("actor")
        if store.frequency(value) >= 3
    )
    print(f"result limit {limit}, request budget {budget:,}, seed {seed_value}\n")

    for label, selector in (
        ("greedy-link (no domain knowledge)", GreedyLinkSelector()),
        ("domain-knowledge DM(I)", DomainKnowledgeSelector(domain_table)),
    ):
        server = SimulatedWebDatabase(
            store,
            page_size=10,
            limit_policy=ResultLimitPolicy(limit=limit, ordering="ranked"),
        )
        engine = CrawlerEngine(server, selector, seed=1)
        result = engine.crawl([seed_value], max_rounds=budget)
        checkpoints = [budget // 4, budget // 2, 3 * budget // 4, budget]
        curve = " -> ".join(
            f"{result.history.coverage_at_rounds(c, len(store)):.0%}"
            for c in checkpoints
        )
        print(f"{label}:")
        print(f"  coverage at 25/50/75/100% of budget: {curve}")
        print(f"  final: {result.coverage:.1%} with {result.queries_issued:,} queries\n")

    print("The relational crawler plateaus: part of the catalogue is 'data")
    print("islands' sharing no queriable value with anything it has seen.")
    print("The DM crawler keeps climbing by issuing domain-table values the")
    print("store never showed it.")


if __name__ == "__main__":
    main()
