#!/usr/bin/env python
"""Crawling a source that only accepts multi-attribute queries.

Table 1 of the paper found domains (cars, airfare, hotels) whose forms
are "highly structured and restrictive in the sense that only
multi-attribute queries are accepted" and left crawling them as future
work.  This example runs that extension: a used-car database whose
interface demands at least two predicates per query (make AND model,
say), crawled by the greedy clique selector — GL lifted from vertices
to edges of the attribute-value graph.

Run:  python examples/multi_attribute_sources.py
"""

from repro.core import Query, UnsupportedQueryError
from repro.crawler import CrawlerEngine
from repro.datasets import car_interface, generate_cars
from repro.policies import (
    GreedyCliqueSelector,
    RandomCliqueSelector,
    record_combinations,
)
from repro.server import SimulatedWebDatabase


def main() -> None:
    table = generate_cars(n_records=4000, seed=11)
    interface = car_interface(min_predicates=2)
    print(f"car listings: {len(table):,} records, interface demands "
          f">= {interface.min_predicates} predicates per query")

    # Single-attribute queries bounce off the form.
    probe_server = SimulatedWebDatabase(table, interface=interface)
    try:
        probe_server.submit(Query.equality("make", "toyota"))
    except UnsupportedQueryError as error:
        print(f"single-predicate probe rejected: {error}\n")

    # Seed: the attribute-value combinations of one known listing.
    first_record = table.get(table.record_ids()[0])
    seed_combos = record_combinations(first_record, table.schema.queriable, 2)
    print(f"seeding with {len(seed_combos)} combinations from one listing, "
          f"e.g. {seed_combos[0][0]} AND {seed_combos[0][1]}\n")

    for make_selector in (GreedyCliqueSelector, RandomCliqueSelector):
        server = SimulatedWebDatabase(table, page_size=10, interface=interface)
        selector = make_selector()
        engine = CrawlerEngine(server, selector, seed=5)
        selector.seed_combinations(seed_combos)
        result = engine.crawl(
            [], allow_empty_seeds=True, target_coverage=0.9, max_rounds=30_000
        )
        print(
            f"  {result.policy:14s} -> {result.coverage:6.1%} coverage in "
            f"{result.communication_rounds:6,} rounds "
            f"({result.queries_issued:,} conjunctive queries)"
        )

    print("\nEvery issued query is a conjunction visiting an *edge* of the")
    print("attribute-value graph; the greedy variant rides popular")
    print("make/model pairings the same way GL rides hub values.")


if __name__ == "__main__":
    main()
