#!/usr/bin/env python
"""Quickstart: crawl a hidden-web database through its query interface.

Builds a synthetic eBay-style auction database, hides it behind a
simulated web query interface (paginated results, one communication
round per page), and crawls it with the paper's greedy link-based
query selector, comparing against breadth-first selection.

Run:  python examples/quickstart.py
"""

from repro.crawler import CrawlerEngine
from repro.datasets import generate_ebay
from repro.policies import BreadthFirstSelector, GreedyLinkSelector
from repro.server import SimulatedWebDatabase


def main() -> None:
    # 1. A structured web source: 3,000 auctions behind a query form that
    #    accepts equality predicates on categories/seller/location/price.
    table = generate_ebay(n_records=3000, seed=7)
    print(f"hidden database: {len(table):,} records, "
          f"{table.num_distinct_values():,} distinct attribute values")

    # 2. Pick one seed attribute value the crawler starts from — in a real
    #    deployment this comes from domain vocabulary or a previous crawl.
    seed_value = next(
        value for value in table.distinct_values("seller")
        if table.frequency(value) >= 3
    )
    print(f"seed value: {seed_value}")

    # 3. Crawl to 90% coverage with two query-selection policies.
    for selector in (GreedyLinkSelector(), BreadthFirstSelector()):
        server = SimulatedWebDatabase(table, page_size=10)
        engine = CrawlerEngine(server, selector, seed=7)
        result = engine.crawl([seed_value], target_coverage=0.9)
        print(
            f"  {result.policy:12s} -> {result.coverage:6.1%} coverage in "
            f"{result.communication_rounds:5,} rounds "
            f"({result.queries_issued:,} queries)"
        )

    print("\nThe greedy link-based selector rides 'hub' attribute values and")
    print("reaches the same coverage with fewer communication rounds.")


if __name__ == "__main__":
    main()
