#!/usr/bin/env python
"""Durable crawling: checkpoint, crash, resume — losslessly.

Crawls a flaky eBay-style source (10% of page requests time out;
retries back off with charged, jittered delays) under the durable
runtime, kills the crawl mid-step with an injected crash, then resumes
from the checkpoint directory and verifies the finished crawl is
bit-identical to an uninterrupted reference run.

Run:  python examples/resumable_crawl.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reports import render_runtime_metrics
from repro.crawler import CrawlerEngine
from repro.datasets import generate_ebay
from repro.policies import GreedyLinkSelector
from repro.runtime import (
    CrashAfterSteps,
    EventBus,
    MetricsAggregator,
    RuntimeCrawler,
    SimulatedCrash,
)
from repro.server import SimulatedWebDatabase
from repro.server.flaky import ExponentialBackoff, FlakyServer

SEED = 5
MAX_QUERIES = 120
CRASH_AFTER_STEPS = 40


def make_parts(table, bus=None):
    """A fresh flaky server + selector + engine of identical config."""
    server = FlakyServer(
        SimulatedWebDatabase(table, page_size=10), failure_rate=0.1, seed=7
    )
    backoff = ExponentialBackoff.charging(seconds_per_round=10.0)
    engine = CrawlerEngine(
        server, GreedyLinkSelector(), seed=SEED,
        max_retries=3, backoff=backoff, bus=bus,
    )
    return server, engine


def seed_value(table):
    return next(
        value for value in table.distinct_values("seller")
        if table.frequency(value) >= 3
    )


def main() -> None:
    table = generate_ebay(n_records=2000, seed=1)
    seeds = [seed_value(table)]
    print(f"hidden database: {len(table):,} records (flaky: 10% timeouts)")

    # Reference: the same crawl, uninterrupted.
    _, reference_engine = make_parts(table)
    reference = reference_engine.crawl(seeds, max_queries=MAX_QUERIES)
    print(f"reference run:   {reference.records_harvested:,} records in "
          f"{reference.communication_rounds:,} rounds")

    checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-ck-")) / "crawl"

    # Durable crawl with a crash injected mid-step: the sink raises from
    # inside step 40, after the server mutated but before the journal
    # recorded the step — the worst possible instant.
    bus = EventBus()
    bus.attach(CrashAfterSteps(CRASH_AFTER_STEPS))
    _, engine = make_parts(table, bus=bus)
    runtime = RuntimeCrawler(engine, checkpoint_dir=checkpoint_dir,
                             checkpoint_every=25)
    try:
        runtime.crawl(seeds, max_queries=MAX_QUERIES)
    except SimulatedCrash as crash:
        print(f"crash injected:  {crash}")
    finally:
        runtime.close()

    # Recovery: fresh server + selector, state rebuilt from disk.  The
    # journal is replayed through the selector itself, so it re-proposes
    # exactly the queries the dead crawl issued.
    bus = EventBus()
    metrics = bus.attach(MetricsAggregator())
    fresh_server, _ = make_parts(table)
    resumed = RuntimeCrawler.resume(
        checkpoint_dir,
        fresh_server,
        GreedyLinkSelector(),
        backoff=ExponentialBackoff.charging(seconds_per_round=10.0),
        bus=bus,
    )
    print(f"resumed at step: {resumed.engine.steps} "
          f"(lost only the in-flight step)")
    result = resumed.run()
    resumed.close()

    print(f"resumed run:     {result.records_harvested:,} records in "
          f"{result.communication_rounds:,} rounds")
    match = "bit-identical" if result == reference else "MISMATCH"
    print(f"vs reference:    {match}")
    print()
    print(render_runtime_metrics(metrics))


if __name__ == "__main__":
    main()
