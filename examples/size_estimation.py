#!/usr/bin/env python
"""Estimating a hidden database's size by overlap analysis.

Before crawling a source in earnest you often want to know how big it
is — e.g. to budget communication rounds.  Section 5 of the paper
estimates the Amazon DVD catalogue's size by running six independent
limited crawls, applying capture–recapture to every pair of harvested
record sets, and t-testing the 15 estimates.  Here the store is
simulated so the true size is known, making the estimator's bias
visible: crawl samples over-represent the popular, well-connected
records, so the estimate tracks the *crawlable* universe.

Run:  python examples/size_estimation.py
"""

from repro.crawler import CrawlerEngine
from repro.datasets import MovieUniverse, generate_amazon_dvd
from repro.estimation import (
    pairwise_estimates,
    t_confidence_interval,
    upper_confidence_bound,
)
from repro.policies import RandomSelector
from repro.server import SimulatedWebDatabase


def main() -> None:
    universe = MovieUniverse(n_movies=4000, seed=5, obscure_fraction=0.1)
    store = generate_amazon_dvd(universe, seed=6)
    print(f"true (hidden) store size: {len(store):,} records")

    # Six independent limited crawls from different random seeds.
    samples = []
    for crawl_index in range(6):
        server = SimulatedWebDatabase(store, page_size=10)
        engine = CrawlerEngine(server, RandomSelector(), seed=100 + crawl_index)
        seed_value = store.get(
            store.record_ids()[crawl_index * 37 % len(store)]
        ).attribute_values()[0]
        engine.crawl([seed_value], max_rounds=400)
        sample = frozenset(engine.local_db.record_ids())
        samples.append(sample)
        print(f"  crawl {crawl_index + 1}: harvested {len(sample):,} records")

    # Capture–recapture over all C(6,2) = 15 pairs, then a t bound.
    estimates = pairwise_estimates(samples)
    interval = t_confidence_interval(estimates, confidence=0.9)
    bound = upper_confidence_bound(estimates, confidence=0.9)
    print(f"\n{len(estimates)} pairwise Lincoln-Petersen estimates")
    print(f"mean estimate: {interval.mean:,.0f} records")
    print(f"90% interval:  [{interval.lower:,.0f}, {interval.upper:,.0f}]")
    print(f"90% one-sided upper bound: {bound:,.0f}")
    print(f"(paper's statement had this form: 'with 90% confidence, the")
    print(f" database contains less than {bound:,.0f} records')")


if __name__ == "__main__":
    main()
