"""Guard the hot-path speedup against silent regressions.

Compares a freshly produced ``BENCH_hotpath.json`` (see
``benchmarks/test_hotpath_speedup.py``) against the committed baseline
and fails when any policy's *speedup ratio* dropped by more than the
tolerance.

The speedup ratio — reference seconds over interned seconds, both legs
measured back-to-back in one process — is the machine-independent
signal: absolute timings shift with the runner's hardware and load, but
a genuine hot-path regression shrinks the ratio everywhere.

Only the metrics in :data:`GATED_METRICS` gate the build, and only when
both sides carry them: benchmark schemas grow over time (new per-policy
diagnostics, steps/sec fields, frontier counters), and a fresh run must
not fail — or crash — just because it reports more (or fewer) keys than
the committed baseline.  Absolute-time keys are deliberately ungated.

Usage::

    python scripts/check_bench_regression.py fresh.json baseline.json \
        [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Per-policy metrics gated against regression.  Ratios only — machine
#: load rescales absolute seconds on both legs but cancels out here.
GATED_METRICS = ("speedup",)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="just-measured BENCH_hotpath.json")
    parser.add_argument("baseline", help="committed BENCH_hotpath.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional speedup drop (default 0.25)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    if fresh.get("scale") != baseline.get("scale"):
        # Speedup ratios are machine-independent but NOT scale-independent:
        # shorter crawls amortize the shared server cost over fewer steps,
        # deflating the ratio.  Compare like with like.
        print(
            f"scale mismatch: fresh run at {fresh.get('scale')}, baseline "
            f"at {baseline.get('scale')} — regenerate the baseline with "
            f"the same REPRO_BENCH_SCALE"
        )
        return 1

    failures = []
    for policy, base in sorted(baseline["policies"].items()):
        current = fresh["policies"].get(policy)
        if current is None:
            failures.append(f"{policy}: missing from fresh results")
            continue
        # Gate only on metrics both sides actually report; extra keys on
        # either side are diagnostics, not part of the contract.
        shared = [m for m in GATED_METRICS if m in base and m in current]
        if not shared:
            print(f"{policy:12s} no shared gated metrics — skipped")
            continue
        for metric in shared:
            floor = base[metric] * (1.0 - args.tolerance)
            verdict = "ok" if current[metric] >= floor else "REGRESSION"
            print(
                f"{policy:12s} {metric} baseline {base[metric]:5.2f}x  "
                f"fresh {current[metric]:5.2f}x  "
                f"floor {floor:5.2f}x  {verdict}"
            )
            if current[metric] < floor:
                failures.append(
                    f"{policy}: {metric} {current[metric]:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base[metric]:.2f}x minus "
                    f"{args.tolerance:.0%})"
                )

    if failures:
        print("\n".join(["", "hot-path speedup regression:"] + failures))
        return 1
    print("hot-path speedup within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
