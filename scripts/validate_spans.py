"""Validate a ``repro-trace/1`` span-JSONL file from the command line.

Runs the library validator (:func:`repro.trace.validate_trace_jsonl`)
over the file — schema header, known span names, per-segment ``seq``
monotonicity, parents preceding children — and reports the span count.

With ``--stitched`` the file must additionally be a cross-lane trace
produced by ``repro trace stitch``: the header carries
``"stitched": true``, every server-side ``request`` span's parent is a
client ``fetch`` span that appeared earlier in the stream, and every
server phase span (``parse``/``limiter``/``cache``/``render``/
``serialize``) hangs off a ``request`` root.  This is the CI check that
cross-lane propagation actually joined the two files — a server trace
merely concatenated onto a client one fails it.

Usage::

    python scripts/validate_spans.py trace.jsonl
    python scripts/validate_spans.py stitched.jsonl --stitched
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.trace import TraceError, validate_trace_jsonl  # noqa: E402

SERVER_ROOT = "request"
SERVER_PHASES = frozenset({"parse", "limiter", "cache", "render", "serialize"})


def check_stitched(path: str) -> dict:
    """Cross-lane structure checks; returns counters or raises TraceError."""
    names = {}  # span id -> span name, in stream order
    requests = fetches = phases = 0
    header = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if header is None:
                header = record
                if not record.get("stitched"):
                    raise TraceError(
                        f"{path}: header lacks \"stitched\": true — "
                        f"not a 'repro trace stitch' output"
                    )
                continue
            if "task" in record:
                continue
            name = record.get("name")
            span_id = record.get("id")
            parent = record.get("parent")
            if name == "fetch":
                fetches += 1
            elif name == SERVER_ROOT:
                requests += 1
                if names.get(parent) != "fetch":
                    raise TraceError(
                        f"{path}:{lineno}: request span {span_id!r} parent "
                        f"{parent!r} is not an earlier client fetch span"
                    )
            elif name in SERVER_PHASES:
                phases += 1
                if names.get(parent) != SERVER_ROOT:
                    raise TraceError(
                        f"{path}:{lineno}: server phase span {span_id!r} "
                        f"parent {parent!r} is not a request root"
                    )
            names[span_id] = name
    if header is None:
        raise TraceError(f"{path}: empty file")
    if requests == 0:
        raise TraceError(
            f"{path}: stitched trace contains no server request spans"
        )
    return {"requests": requests, "fetches": fetches, "phases": phases}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="span-JSONL file to validate")
    parser.add_argument(
        "--stitched",
        action="store_true",
        help="additionally require cross-lane stitch structure: every "
             "server request span parented by an earlier client fetch",
    )
    args = parser.parse_args(argv)

    try:
        spans = validate_trace_jsonl(args.trace)
    except (TraceError, OSError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}")
        return 1
    if args.stitched:
        try:
            counts = check_stitched(args.trace)
        except (TraceError, json.JSONDecodeError) as exc:
            print(f"INVALID: {exc}")
            return 1
        print(
            f"OK: {args.trace} — {spans} spans; stitched: "
            f"{counts['requests']} server requests under "
            f"{counts['fetches']} client fetches "
            f"({counts['phases']} phase spans)"
        )
        return 0
    print(f"OK: {args.trace} — {spans} spans")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
