"""Shim so legacy (non-PEP-517) editable installs work offline.

The environment has no network and no ``wheel`` package, so
``pip install -e . --no-use-pep517`` via this file is the supported
install path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
