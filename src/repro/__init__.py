"""Reproduction of *Query Selection Techniques for Efficient Crawling of
Structured Web Sources* (Wu, Wen, Liu, Ma — ICDE 2006).

The package provides every layer the paper's evaluation needs:

- :mod:`repro.core` — an in-memory relational substrate (records, universal
  tables, single-equality and keyword queries, inverted indexes).
- :mod:`repro.graph` — the attribute-value graph (AVG) model, degree/power-law
  analysis, and weighted minimum dominating set algorithms.
- :mod:`repro.server` — a simulated structured web source: query interfaces,
  result pagination, result-size limits, and communication accounting.
- :mod:`repro.crawler` — the "query–harvest–decompose" crawler engine with
  pluggable query-selection policies.
- :mod:`repro.policies` — BFS/DFS/Random, greedy link-based (GL), MMMI,
  domain-knowledge (DM) and oracle selectors.
- :mod:`repro.domain` — domain statistics tables built from sample databases.
- :mod:`repro.datasets` — synthetic eBay / ACM / DBLP / IMDB / Amazon-DVD
  generators plus the Table-1 interface corpus.
- :mod:`repro.estimation` — overlap-analysis database size estimation.
- :mod:`repro.experiments` — drivers that regenerate every table and figure.

Quickstart::

    from repro.datasets import generate_ebay
    from repro.server import SimulatedWebDatabase
    from repro.crawler import CrawlerEngine
    from repro.policies import GreedyLinkSelector

    table = generate_ebay(n_records=2000, seed=7)
    server = SimulatedWebDatabase(table, page_size=10)
    crawler = CrawlerEngine(server, GreedyLinkSelector(), seed=7)
    seed_value = table.distinct_values("seller")[0]
    result = crawler.crawl([seed_value], target_coverage=0.9)
    print(result.coverage, result.communication_rounds)
"""

from repro._version import __version__

__all__ = ["__version__"]
