"""Post-crawl analysis: terminal charts and productivity reports."""

from repro.analysis.charts import ascii_chart, coverage_chart
from repro.analysis.reports import (
    AttributeCoverage,
    AttributeProductivity,
    attribute_productivity,
    productivity_decay,
    render_attribute_productivity,
    render_speedup_table,
    render_value_coverage,
    value_coverage,
)

__all__ = [
    "AttributeCoverage",
    "AttributeProductivity",
    "ascii_chart",
    "attribute_productivity",
    "coverage_chart",
    "productivity_decay",
    "render_attribute_productivity",
    "render_speedup_table",
    "render_value_coverage",
    "value_coverage",
]
