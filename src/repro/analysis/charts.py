"""Terminal charts for crawl curves.

The figure drivers render numeric tables; for eyeballing shapes in a
terminal (and in EXPERIMENTS.md) an ASCII line chart is often clearer.
Pure-stdlib: no plotting dependency enters the project.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Plot glyphs per series, cycled.
_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_values: Optional[Sequence[float]] = None,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render named series as a monospace line chart.

    All series share the x axis (indexes, or ``x_values`` when given)
    and the y axis is scaled to the global min/max.  Returns a string;
    does not print.

    >>> print(ascii_chart({"a": [0, 1, 2]}, width=8, height=3))  # doctest: +SKIP
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (n_points,) = lengths
    if n_points == 0:
        raise ValueError("series are empty")
    if x_values is not None and len(x_values) != n_points:
        raise ValueError("x_values length must match the series")

    flat = [value for values in series.values() for value in values]
    y_min, y_max = min(flat), max(flat)
    span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(index: int, value: float):
        x = 0 if n_points == 1 else round(index * (width - 1) / (n_points - 1))
        y = round((value - y_min) / span * (height - 1))
        return height - 1 - y, x

    for series_index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        previous = None
        for index, value in enumerate(values):
            row, column = cell(index, value)
            # Draw a crude connecting segment (vertical fill) to the
            # previous point so trends read as lines, not dust.
            if previous is not None:
                prev_row, prev_col = previous
                if prev_col == column:
                    lo, hi = sorted((prev_row, row))
                    for r in range(lo, hi + 1):
                        if grid[r][column] == " ":
                            grid[r][column] = "."
                else:
                    for c in range(prev_col, column + 1):
                        t = (c - prev_col) / (column - prev_col)
                        interp_row = round(prev_row + (row - prev_row) * t)
                        if grid[interp_row][c] == " ":
                            grid[interp_row][c] = "."
            grid[row][column] = marker
            previous = (row, column)

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    if x_values is not None:
        left = f"{x_values[0]:g}"
        right = f"{x_values[-1]:g}"
        padding = width - len(left) - len(right)
        lines.append(f"{' ' * label_width}  {left}{' ' * max(padding, 1)}{right}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  legend: {legend}")
    return "\n".join(lines)


def coverage_chart(
    histories: Dict[str, "object"],
    database_size: int,
    checkpoints: Sequence[int],
    title: Optional[str] = None,
) -> str:
    """Chart several crawls' coverage-versus-rounds curves together.

    ``histories`` maps a label to a
    :class:`~repro.crawler.metrics.CrawlHistory`.
    """
    series = {
        label: [
            history.coverage_at_rounds(checkpoint, database_size)
            for checkpoint in checkpoints
        ]
        for label, history in histories.items()
    }
    return ascii_chart(
        series,
        x_values=list(checkpoints),
        title=title,
        y_label="cov",
    )
