"""Post-crawl diagnostics.

Once a crawl finishes, the interesting questions are *where the rounds
went*: which attributes' queries paid off, how duplicate-heavy the tail
was, how productivity decayed.  These reports answer them from a
:class:`~repro.crawler.engine.CrawlResult` with kept outcomes, or from
the local database and ground truth for coverage breakdowns.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.core.query import ConjunctiveQuery
from repro.core.table import RelationalTable
from repro.crawler.engine import CrawlResult
from repro.crawler.localdb import LocalDatabase
from repro.experiments.report import render_table


@dataclass(frozen=True)
class AttributeProductivity:
    """One attribute's aggregate query economics."""

    attribute: str
    queries: int
    pages: int
    new_records: int

    @property
    def harvest_rate(self) -> float:
        return self.new_records / self.pages if self.pages else 0.0


def attribute_productivity(result: CrawlResult) -> List[AttributeProductivity]:
    """Per-attribute query economics (requires ``keep_outcomes=True``).

    Conjunctive queries are accounted under the joined attribute list
    ("make+model"); keyword queries under ``"*"``.
    """
    if not result.outcomes:
        raise ValueError(
            "no outcomes on the result — crawl with keep_outcomes=True"
        )
    tallies: Dict[str, List[int]] = defaultdict(lambda: [0, 0, 0])
    for outcome in result.outcomes:
        query = outcome.query
        if isinstance(query, ConjunctiveQuery):
            key = "+".join(query.attributes)
        elif query.is_keyword:
            key = "*"
        else:
            key = query.attribute or "*"
        tally = tallies[key]
        tally[0] += 1
        tally[1] += outcome.pages_fetched
        tally[2] += len(outcome.new_records)
    rows = [
        AttributeProductivity(attribute, queries, pages, new)
        for attribute, (queries, pages, new) in tallies.items()
    ]
    rows.sort(key=lambda row: -row.harvest_rate)
    return rows


def render_attribute_productivity(result: CrawlResult) -> str:
    rows = attribute_productivity(result)
    return render_table(
        ["attribute", "queries", "pages", "new records", "new/page"],
        [
            [r.attribute, r.queries, r.pages, r.new_records, round(r.harvest_rate, 2)]
            for r in rows
        ],
        title=f"Query productivity by attribute — {result.policy}",
    )


def productivity_decay(result: CrawlResult, buckets: int = 10) -> List[float]:
    """Mean realized harvest rate per crawl phase (first 10%, next 10%...).

    The numeric signature of the paper's "low marginal benefit"
    phenomenon: the head of the list is large, the tail near zero.
    """
    if not result.outcomes:
        raise ValueError(
            "no outcomes on the result — crawl with keep_outcomes=True"
        )
    outcomes = result.outcomes
    if buckets < 1:
        raise ValueError("need at least one bucket")
    per_bucket: List[float] = []
    n = len(outcomes)
    for bucket in range(buckets):
        start = bucket * n // buckets
        stop = (bucket + 1) * n // buckets
        chunk = outcomes[start:stop]
        if not chunk:
            continue
        pages = sum(o.pages_fetched for o in chunk)
        new = sum(len(o.new_records) for o in chunk)
        per_bucket.append(new / pages if pages else 0.0)
    return per_bucket


@dataclass(frozen=True)
class AttributeCoverage:
    """Share of one attribute's true value universe seen locally."""

    attribute: str
    values_seen: int
    values_total: int

    @property
    def fraction(self) -> float:
        return self.values_seen / self.values_total if self.values_total else 0.0


def value_coverage(
    local_db: LocalDatabase, truth: RelationalTable
) -> List[AttributeCoverage]:
    """Per-attribute distinct-value coverage against ground truth.

    Complements record coverage: a crawl may hold 80% of records yet
    have seen only half the sellers — which bounds what it can still
    query.
    """
    seen: Dict[str, int] = defaultdict(int)
    for value in local_db.distinct_values():
        seen[value.attribute] += 1
    totals: Dict[str, int] = defaultdict(int)
    for value in truth.distinct_values():
        totals[value.attribute] += 1
    return [
        AttributeCoverage(attribute, seen.get(attribute, 0), total)
        for attribute, total in sorted(totals.items())
    ]


def render_value_coverage(
    local_db: LocalDatabase, truth: RelationalTable
) -> str:
    rows = value_coverage(local_db, truth)
    return render_table(
        ["attribute", "values seen", "values total", "coverage"],
        [
            [r.attribute, r.values_seen, r.values_total, f"{r.fraction:.1%}"]
            for r in rows
        ],
        title="Distinct-value coverage by attribute",
    )


def render_speedup_table(events) -> str:
    """Render per-policy task timings and the realized fan-out speedup.

    ``events`` is any iterable of crawl events — typically a
    :class:`~repro.runtime.events.RingBufferSink`'s contents after an
    experiment ran through :func:`repro.parallel.run_crawl_grid`.  Only
    ``task-completed`` / ``suite-completed`` events are consumed; the
    speedup is the sequential-equivalent cost (sum of per-task crawl
    seconds) over the wall-clock the fan-out actually took.
    """
    from repro.runtime.events import (
        ExperimentSuiteCompleted,
        ExperimentTaskCompleted,
    )

    tasks = [e for e in events if isinstance(e, ExperimentTaskCompleted)]
    suites = [e for e in events if isinstance(e, ExperimentSuiteCompleted)]
    if not tasks:
        return "no task timings recorded"
    per_label: Dict[str, List[float]] = {}
    for event in tasks:
        per_label.setdefault(event.label, []).append(event.seconds)
    rows = [
        [label, len(seconds), f"{sum(seconds):.2f}s"]
        for label, seconds in per_label.items()
    ]
    text = render_table(
        ["policy", "tasks", "task time"],
        rows,
        title="Parallel experiment timing",
    )
    task_seconds = sum(event.seconds for event in tasks)
    wall_seconds = sum(event.wall_seconds for event in suites)
    if wall_seconds > 0:
        workers = max(event.workers for event in suites)
        speedup = task_seconds / wall_seconds
        text += (
            f"\ntask time {task_seconds:.2f}s in {wall_seconds:.2f}s wall "
            f"({workers} worker{'s' if workers != 1 else ''}) — "
            f"speedup x{speedup:.2f}"
        )
    return text


def render_runtime_metrics(metrics) -> str:
    """Render a :class:`~repro.runtime.events.MetricsAggregator` roll-up.

    One row per policy observed on the event bus: queries completed,
    pages paid for, new records, realized harvest rate, and the
    abort/reject/fail/retry/checkpoint counters — followed by each
    policy's per-query cost histogram (pages per completed query).
    """
    summary = metrics.summary()
    rows = []
    for policy, stats in summary["policies"].items():
        rows.append(
            [
                policy,
                stats["queries"],
                stats["pages"],
                stats["new_records"],
                round(stats["harvest_rate"], 2),
                stats["aborted"],
                stats["rejected"],
                stats["failed"],
                stats["retries"],
                stats["checkpoints"],
            ]
        )
    text = render_table(
        [
            "policy",
            "queries",
            "pages",
            "new",
            "new/page",
            "aborted",
            "rejected",
            "failed",
            "retries",
            "ckpts",
        ],
        rows,
        title="Event-bus crawl metrics",
    )
    parts = [text]
    for policy, histogram in sorted(
        metrics.histograms.items(), key=lambda item: item[0] or ""
    ):
        buckets = " ".join(
            f"{label}:{count}"
            for label, count in histogram.labelled_buckets()
            if count
        )
        parts.append(
            f"pages/query [{policy or '?'}]: mean {histogram.mean:.2f}  {buckets}"
        )
    return "\n".join(parts)
