"""Command-line interface: generate, crawl, and reproduce from a shell.

Usage (also via ``python -m repro``)::

    repro datasets                          # list generators
    repro generate dblp --records 5000 --out dblp.json.gz
    repro crawl --dataset ebay --policy greedy-link --target 0.9
    repro crawl --table dblp.json.gz --policy bfs --max-rounds 2000
    repro crawl --dataset ebay --checkpoint-dir state/ --checkpoint-every 100
    repro resume state/
    repro experiment figure3 --records 2000
    repro experiment table1

Every subcommand prints a plain-text report to stdout; ``crawl`` can
additionally write the coverage history as CSV (``--history out.csv``).

With ``--checkpoint-dir`` the crawl runs under the durable runtime
(:mod:`repro.runtime`): it journals every step, commits a checkpoint
marker every ``--checkpoint-every`` steps (cheap: a journal flush plus
a progress manifest; add ``--snapshot-every`` for periodic full-state
snapshots), and records a setup recipe so ``repro resume DIR`` can
rebuild the source and continue after a crash or a
``--stop-after-steps`` suspension.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro import io
from repro.crawler.engine import CrawlerEngine
from repro.datasets.registry import dataset_info, dataset_names, load_dataset
from repro.experiments import (
    run_abortion_ablation,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_greedy_signal_ablation,
    run_keyword_interface,
    run_mmmi_ablation,
    run_size_estimation,
    run_smoothing_ablation,
    run_stability,
    run_table1,
    run_table2,
)
from repro.experiments.harness import sample_seed_values
from repro.fleet import (
    FLEET_SCHEDULERS,
    FleetConfig,
    compare_fleet,
    fleet_bench_payload,
    run_fleet,
)
from repro.parallel import parse_workers
from repro.policies import (
    AdaptiveAttributeSelector,
    BreadthFirstSelector,
    DepthFirstSelector,
    GreedyFrequencySelector,
    GreedyLinkSelector,
    GreedyMmmiSelector,
    RandomSelector,
    build_practical_crawler,
)
from repro.server.limits import ResultLimitPolicy
from repro.server.webdb import SimulatedWebDatabase

#: Policies constructible without extra inputs (DM needs a domain table).
POLICIES: Dict[str, Callable] = {
    "bfs": BreadthFirstSelector,
    "dfs": DepthFirstSelector,
    "random": RandomSelector,
    "greedy-link": GreedyLinkSelector,
    "greedy-frequency": GreedyFrequencySelector,
    "greedy-mmmi": lambda: GreedyMmmiSelector(switch_coverage=None),
    "adaptive": AdaptiveAttributeSelector,
    "practical": None,  # resolved specially (engine-level bundle)
}

#: Experiment drivers.  Each entry takes ``(args, workers, bus, trace,
#: timings)``; drivers with no independent grid to fan out ignore the
#: trailing arguments.  ``trace``/``timings`` only reach the drivers in
#: :data:`TRACEABLE_EXPERIMENTS`.
EXPERIMENTS = {
    "table1": lambda args, workers, bus, trace, timings: run_table1(
        seed=args.seed, workers=workers
    ),
    "table2": lambda args, workers, bus, trace, timings: run_table2(
        n_records=args.records, seed=args.seed
    ),
    "figure2": lambda args, workers, bus, trace, timings: run_figure2(
        n_records=args.records or 4000, seed=args.seed
    ),
    "figure3": lambda args, workers, bus, trace, timings: run_figure3(
        n_records=args.records or 3000, n_seeds=2, seed=args.seed,
        workers=workers, bus=bus, trace=trace, trace_timings=timings,
    ),
    "figure4": lambda args, workers, bus, trace, timings: run_figure4(
        n_records=args.records or 4000, n_seeds=2, seed=args.seed,
        workers=workers, bus=bus, trace=trace, trace_timings=timings,
    ),
    "figure5": lambda args, workers, bus, trace, timings: run_figure5(
        rng_seed=args.seed, workers=workers, bus=bus,
        trace=trace, trace_timings=timings,
    ),
    "figure6": lambda args, workers, bus, trace, timings: run_figure6(
        rng_seed=args.seed, workers=workers, bus=bus,
        trace=trace, trace_timings=timings,
    ),
    "size": lambda args, workers, bus, trace, timings: run_size_estimation(
        rng_seed=args.seed
    ),
    "ablation-greedy-signal":
        lambda args, workers, bus, trace, timings: run_greedy_signal_ablation(
            n_records=args.records or 3000, seed=args.seed,
            workers=workers, bus=bus, trace=trace, trace_timings=timings,
        ),
    "ablation-mmmi": lambda args, workers, bus, trace, timings: run_mmmi_ablation(
        n_records=args.records or 4000, seed=args.seed,
        workers=workers, bus=bus, trace=trace, trace_timings=timings,
    ),
    "ablation-smoothing":
        lambda args, workers, bus, trace, timings: run_smoothing_ablation(
            rng_seed=args.seed, workers=workers
        ),
    "ablation-abortion":
        lambda args, workers, bus, trace, timings: run_abortion_ablation(
            n_records=args.records or 4000, seed=args.seed, workers=workers
        ),
    "keyword-interface":
        lambda args, workers, bus, trace, timings: run_keyword_interface(
            rng_seed=args.seed
        ),
    "stability": lambda args, workers, bus, trace, timings: run_stability(
        n_records=args.records or 2000, seed=args.seed,
        workers=workers, bus=bus, trace=trace, trace_timings=timings,
    ),
}


#: Experiments whose drivers accept ``trace=`` (span tracing fans out
#: through :func:`repro.parallel.run_crawl_grid` in these).
TRACEABLE_EXPERIMENTS = frozenset(
    {
        "figure3",
        "figure4",
        "figure5",
        "figure6",
        "ablation-greedy-signal",
        "ablation-mmmi",
        "stability",
    }
)


def _add_trace_flags(parser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a causal span trace here (span JSONL, schema "
             "repro-trace/1; inspect with 'repro trace summarize')")
    parser.add_argument(
        "--trace-canonical", action="store_true",
        help="omit wall/CPU timings from the trace so the file is "
             "byte-identical across runs, worker counts, and "
             "crash/resume splits")


def _add_telemetry_flags(parser, progress: bool = True) -> None:
    parser.add_argument(
        "--metrics-out", default=None,
        help="append live telemetry snapshots here (JSONL, one per "
             "heartbeat plus a final one)")
    parser.add_argument(
        "--prometheus-out", default=None,
        help="write the final metrics registry here in the Prometheus "
             "text exposition format")
    if progress:
        parser.add_argument(
            "--progress-every", type=int, default=0,
            help="print a progress heartbeat every N completed crawl "
                 "steps (0 = off)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deep-web query-selection crawling (ICDE 2006 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the built-in dataset generators")

    generate = commands.add_parser("generate", help="generate a dataset to JSON")
    generate.add_argument("dataset", choices=dataset_names())
    generate.add_argument("--records", type=int, default=0,
                          help="record count (0 = registry default)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True,
                          help="output path (.json or .json.gz)")

    crawl = commands.add_parser("crawl", help="crawl a source and report")
    source = crawl.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_names(),
                        help="generate-and-crawl a built-in dataset")
    source.add_argument("--table", help="crawl a saved table (JSON)")
    source.add_argument("--remote", metavar="URL",
                        help="crawl a source served by 'repro serve' at this "
                             "base URL (http://host:port)")
    crawl.add_argument("--remote-source", default=None, metavar="NAME",
                       help="source name on the remote service (default: its "
                            "only mounted source)")
    crawl.add_argument("--pipeline-depth", type=int, default=2,
                       help="pages kept in flight ahead of extraction on the "
                            "remote lane (0 disables pipelining)")
    crawl.add_argument("--records", type=int, default=0)
    crawl.add_argument("--policy", choices=sorted(POLICIES), default="greedy-link")
    crawl.add_argument("--page-size", type=int, default=10)
    crawl.add_argument("--result-limit", type=int, default=None)
    crawl.add_argument("--target", type=float, default=None,
                       help="stop at this true coverage (0..1)")
    crawl.add_argument("--max-rounds", type=int, default=None)
    crawl.add_argument("--max-queries", type=int, default=None)
    crawl.add_argument("--seed", type=int, default=0)
    crawl.add_argument("--history", default=None,
                       help="write the coverage history CSV here")
    crawl.add_argument("--checkpoint-dir", default=None,
                       help="run durably: journal + checkpoints in this directory")
    crawl.add_argument("--checkpoint-every", type=int, default=100,
                       help="steps between checkpoint markers: journal "
                            "group-commit + progress manifest "
                            "(with --checkpoint-dir)")
    crawl.add_argument("--snapshot-every", type=int, default=0,
                       help="steps between full-state snapshots; 0 writes "
                            "them only at baseline and suspension")
    crawl.add_argument("--stop-after-steps", type=int, default=None,
                       help="suspend gracefully after N steps (with --checkpoint-dir)")
    crawl.add_argument("--profile", default=None, metavar="PATH",
                       help="run the crawl under cProfile: dump raw stats "
                            "to PATH (readable with pstats/snakeviz) and "
                            "print the top functions by cumulative time")
    crawl.add_argument("--profile-top", type=int, default=25, metavar="N",
                       help="with --profile: how many functions the printed "
                            "cumulative-time summary lists (default 25)")
    crawl.add_argument("--sample-profile", default=None, metavar="PATH",
                       help="run a low-overhead sampling profiler alongside "
                            "the crawl and write flamegraph folded stacks to "
                            "PATH; each sample is prefixed with the active "
                            "span label when tracing is on")
    crawl.add_argument("--sample-interval", type=float, default=0.005,
                       metavar="SECONDS",
                       help="seconds between profiler samples "
                            "(with --sample-profile; default 0.005)")
    _add_telemetry_flags(crawl)
    _add_trace_flags(crawl)

    resume = commands.add_parser(
        "resume", help="resume a checkpointed crawl from its directory"
    )
    resume.add_argument("checkpoint_dir",
                        help="directory holding checkpoint.json + journal.jsonl")
    resume.add_argument("--stop-after-steps", type=int, default=None,
                        help="suspend again after N further steps")
    resume.add_argument("--history", default=None,
                        help="write the coverage history CSV here")
    _add_telemetry_flags(resume)
    _add_trace_flags(resume)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--records", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--workers", default="auto",
        help="process-pool width for the experiment grid: a count, or "
             "'auto' (one per CPU); 1 = the legacy sequential path. "
             "Results are identical at any width.",
    )
    _add_telemetry_flags(experiment, progress=False)
    _add_trace_flags(experiment)

    trace = commands.add_parser(
        "trace", help="inspect span traces written with --trace-out"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_commands.add_parser(
        "summarize", help="phase breakdown, cost totals, expensive queries"
    )
    summarize.add_argument("trace", help="a span-JSONL trace file")
    summarize.add_argument("--top", type=int, default=10,
                           help="how many expensive queries to list")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON instead of text")
    summarize.add_argument("--critical-paths", action="store_true",
                           help="also list the dominant root-to-leaf paths")
    export = trace_commands.add_parser(
        "export", help="convert a trace for external viewers"
    )
    export.add_argument("trace", help="a span-JSONL trace file")
    export.add_argument("--chrome", metavar="PATH",
                        help="write Trace Event Format JSON here "
                             "(chrome://tracing, ui.perfetto.dev)")
    export.add_argument("--folded", metavar="PATH",
                        help="write flamegraph folded stacks here")
    diff = trace_commands.add_parser(
        "diff", help="compare two traces' summaries side by side"
    )
    diff.add_argument("trace_a", help="baseline span-JSONL trace")
    diff.add_argument("trace_b", help="comparison span-JSONL trace")
    stitch = trace_commands.add_parser(
        "stitch",
        help="join a client trace with the matching server-side span "
             "file into one end-to-end trace",
    )
    stitch.add_argument("client", help="client span-JSONL trace "
                                       "(crawl --remote --trace-out)")
    stitch.add_argument("server", help="server span-JSONL trace "
                                       "(serve --trace-out)")
    stitch.add_argument("--out", required=True, metavar="PATH",
                        help="write the stitched trace here")

    serve = commands.add_parser(
        "serve", help="serve simulated sources over HTTP"
    )
    serve.add_argument("--dataset", action="append", choices=dataset_names(),
                       help="mount a built-in dataset (repeatable)")
    serve.add_argument("--table", action="append", metavar="PATH",
                       help="mount a saved table JSON (repeatable)")
    serve.add_argument("--records", type=int, default=0,
                       help="record count for --dataset sources "
                            "(0 = registry default)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--page-size", type=int, default=10)
    serve.add_argument("--result-limit", type=int, default=None)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--rate-limit", type=int, default=0,
                       help="max requests per client per window "
                            "(0 = unlimited)")
    serve.add_argument("--rate-window", type=float, default=1.0,
                       help="rate-limit window in seconds")
    serve.add_argument("--ban-after", type=int, default=0,
                       help="consecutive violations before a temporary ban "
                            "(0 = never ban)")
    serve.add_argument("--ban-seconds", type=float, default=30.0)
    serve.add_argument("--no-truth", action="store_true",
                       help="seal the /truth/* routes (no ground-truth "
                            "leakage to clients)")
    serve.add_argument("--threaded", action="store_true",
                       help="use the http.server threaded fallback instead "
                            "of the asyncio front end")
    serve.add_argument("--workers", type=int, default=1,
                       help="event loops serving the port (>1 starts a "
                            "SourceCluster: SO_REUSEPORT worker processes "
                            "on shared-memory tables, or a threaded "
                            "multi-loop fallback)")
    serve.add_argument("--page-cache", type=int, default=4096,
                       help="rendered-page LRU entries per worker "
                            "(0 disables the cache)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record one server-side span group per traced "
                            "request (clients propagate X-Repro-Trace) and "
                            "write the span JSONL here at shutdown; join "
                            "with the client trace via 'repro trace stitch'")
    serve.add_argument("--trace-canonical", action="store_true",
                       help="omit wall/CPU timings from the server trace so "
                            "the file is byte-identical across runs and "
                            "worker counts")

    top = commands.add_parser(
        "top", help="live ops console for a running service"
    )
    top.add_argument("url", help="service base URL (http://host:port)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no screen clear)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="stop after N frames (default: run until Ctrl-C)")
    top.add_argument("--metrics-jsonl", default=None, metavar="PATH",
                     help="also tail crawl-side telemetry from this "
                          "repro-metrics/1 JSONL file (written by a crawl's "
                          "--metrics-out)")

    loadtest = commands.add_parser(
        "loadtest", help="drive concurrent sessions against a service"
    )
    loadtest.add_argument("url", help="service base URL (http://host:port)")
    loadtest.add_argument("--source", default=None,
                          help="source name (default: first mounted)")
    loadtest.add_argument("--sessions", type=int, default=500)
    loadtest.add_argument("--queries", type=int, default=2,
                          help="queries issued per session")
    loadtest.add_argument("--value-pool", type=int, default=64,
                          help="distinct probe values sampled from the "
                               "service")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--timeout", type=float, default=30.0)
    loadtest.add_argument("--bench-out", default=None, metavar="PATH",
                          help="write BENCH_net.json (regression-gate shape) "
                               "here")

    fleet = commands.add_parser(
        "fleet",
        help="crawl many sources under one shared round budget",
    )
    fleet.add_argument("--sources", type=int, default=50,
                       help="fleet size (number of generated sources)")
    fleet.add_argument("--budget", type=int, default=200,
                       help="total communication rounds across the fleet")
    fleet.add_argument("--scheduler", choices=FLEET_SCHEDULERS,
                       default="greedy")
    fleet.add_argument("--workers", default="1",
                       help="process count or 'auto' (results are "
                            "identical at any width)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--scale", type=float, default=1.0,
                       help="source-size multiplier (count is unchanged)")
    fleet.add_argument("--shards", type=int, default=8,
                       help="plan partitions (part of the result, "
                            "not the worker count)")
    fleet.add_argument("--page-size", type=int, default=10,
                       help="base page size k; sources draw k/2..5k")
    fleet.add_argument("--cooldown", type=float, default=2.0,
                       help="per-source politeness cooldown in virtual "
                            "seconds (= rounds); 0 disables")
    fleet.add_argument("--burst", type=int, default=1,
                       help="steps allowed per cooldown window")
    fleet.add_argument("--max-step-rounds", type=int, default=4,
                       help="hard per-step round cap (page cap, no "
                            "retries) backing the budget guarantee")
    fleet.add_argument("--fairness-every", type=int, default=None,
                       help="starvation bound for --scheduler fair "
                            "(default: shard sources x step cap)")
    fleet.add_argument("--top", type=int, default=10,
                       help="sources listed in the report")
    fleet.add_argument("--compare", action="store_true",
                       help="run greedy, rr, and fair on the same plan")
    fleet.add_argument("--bench-out", default=None, metavar="PATH",
                       help="with --compare: write BENCH_fleet.json "
                            "(regression-gate shape) here")
    fleet.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="save the allocation state here")
    fleet.add_argument("--resume", default=None, metavar="PATH",
                       help="continue from a fleet checkpoint")
    fleet.add_argument("--stop-after-rounds", type=int, default=None,
                       help="pause after roughly this many global rounds "
                            "(use with --checkpoint, then --resume)")
    fleet.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write one repro-trace/1 'schedule' span "
                            "per allocation decision")
    fleet.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a repro-metrics/1 snapshot here")

    profile = commands.add_parser(
        "profile", help="probe a source and summarize what it knows"
    )
    profile_source_group = profile.add_mutually_exclusive_group(required=True)
    profile_source_group.add_argument("--dataset", choices=dataset_names())
    profile_source_group.add_argument("--table", help="a saved table (JSON)")
    profile.add_argument("--records", type=int, default=0)
    profile.add_argument("--probes", type=int, default=25)
    profile.add_argument("--seed", type=int, default=0)

    return parser


def _command_datasets(_args, out) -> int:
    for name in dataset_names():
        info = dataset_info(name)
        out.write(
            f"{name:6s} paper: {info.paper_records:>9,} records / "
            f"{info.paper_distinct_values:>11,} values   "
            f"default scale: {info.default_records:,}\n"
        )
    return 0


def _command_generate(args, out) -> int:
    table = load_dataset(args.dataset, args.records, seed=args.seed)
    io.save_table(table, args.out)
    out.write(
        f"wrote {args.out}: {len(table):,} records, "
        f"{table.num_distinct_values():,} distinct values\n"
    )
    return 0


def _build_from_setup(setup: dict):
    """Rebuild (table, server, selector) from a setup recipe.

    The same recipe is built from ``crawl`` arguments and stored inside
    every checkpoint, so ``resume`` reconstructs an identical source.
    """
    if setup.get("dataset"):
        table = load_dataset(
            setup["dataset"], setup.get("records", 0), seed=setup.get("seed", 0)
        )
    else:
        table = io.load_table(setup["table"])
    limit_policy = (
        ResultLimitPolicy(limit=setup["result_limit"], ordering="ranked")
        if setup.get("result_limit")
        else None
    )
    server = SimulatedWebDatabase(
        table, page_size=setup.get("page_size", 10), limit_policy=limit_policy
    )
    selector = POLICIES[setup["policy"]]()
    return table, server, selector


def _command_fleet(args, out) -> int:
    import json as _json

    from repro.metrics.exporters import JsonlMetricsWriter
    from repro.metrics.registry import MetricsRegistry

    config = FleetConfig(
        n_sources=args.sources,
        budget=args.budget,
        scheduler=args.scheduler,
        seed=args.seed,
        scale=args.scale,
        page_size=args.page_size,
        max_step_rounds=args.max_step_rounds,
        cooldown_rounds=args.cooldown,
        burst=args.burst,
        fairness_every=args.fairness_every,
        shards=args.shards,
    )
    workers = args.workers
    if args.compare:
        results = compare_fleet(config, workers=workers)
        for name in FLEET_SCHEDULERS:
            result = results[name]
            out.write(
                f"{name:8s} {result.total_records:8d} records  "
                f"{result.coverage:6.1%} coverage  "
                f"{result.rounds_used:6d}/{result.budget} rounds  "
                f"{result.cooldown_waits} waits\n"
            )
        baseline = results["rr"].total_records
        if baseline:
            for name in ("greedy", "fair"):
                ratio = results[name].total_records / baseline
                out.write(f"{name} vs rr: {ratio:.3f}x records at budget\n")
        if args.bench_out:
            payload = fleet_bench_payload(results, scale=args.scale)
            with open(args.bench_out, "w", encoding="utf-8") as handle:
                _json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            out.write(f"bench written to {args.bench_out}\n")
        return 0

    registry = MetricsRegistry() if args.metrics_out else None
    result = run_fleet(
        config,
        workers=workers,
        stop_after_rounds=args.stop_after_rounds,
        checkpoint_path=args.checkpoint,
        resume_from=args.resume,
        trace_path=args.trace_out,
        metrics=registry,
    )
    out.write(result.render(top=args.top) + "\n")
    if args.checkpoint:
        out.write(f"checkpoint written to {args.checkpoint}\n")
    if args.trace_out:
        out.write(f"trace written to {args.trace_out}\n")
    if args.metrics_out:
        with JsonlMetricsWriter(args.metrics_out) as writer:
            writer.write_snapshot(registry, step=result.rounds_used,
                                  label="fleet")
        out.write(f"metrics written to {args.metrics_out}\n")
    return 0


def _telemetry_requested(args) -> bool:
    return bool(
        getattr(args, "metrics_out", None)
        or getattr(args, "prometheus_out", None)
        or getattr(args, "progress_every", 0)
    )


def _attach_telemetry(args, out, bus, truth_size=None):
    """Attach a TelemetrySink (+ heartbeat reporter) per the CLI flags.

    Returns ``(telemetry, writer, reporter)``; the caller finishes
    with :func:`_report_telemetry` once the crawl is done.
    """
    from repro.metrics import JsonlMetricsWriter, ProgressReporter, TelemetrySink

    telemetry = bus.attach(TelemetrySink(truth_size=truth_size))
    writer = (
        JsonlMetricsWriter(args.metrics_out) if args.metrics_out else None
    )
    every = getattr(args, "progress_every", 0) or 0
    reporter = bus.attach(
        ProgressReporter(
            every=every,
            stream=out if every else None,
            telemetry=telemetry,
            truth_size=truth_size,
            writer=writer,
        )
    )
    return telemetry, writer, reporter


def _report_telemetry(
    args, out, telemetry, writer, reporter=None, server=None, selector=None
) -> None:
    """Final sampling, exports, and the summary table."""
    from pathlib import Path

    from repro.metrics import prometheus_text, render_metrics_summary

    if telemetry is None:
        return
    if reporter is not None:
        reporter.close()
    if server is not None:
        telemetry.sample_server(server)
    if selector is not None:
        telemetry.sample_selector(selector)
    if writer is not None:
        writer.write_snapshot(telemetry.registry, step=None, label="final")
        writer.close()
        out.write(
            f"metrics JSONL: {writer.path} "
            f"({writer.snapshots_written} snapshots)\n"
        )
    if getattr(args, "prometheus_out", None):
        Path(args.prometheus_out).write_text(
            prometheus_text(telemetry.registry), encoding="utf-8"
        )
        out.write(f"prometheus metrics: {args.prometheus_out}\n")
    out.write(render_metrics_summary(telemetry.registry))
    out.write("\n")


def _attach_trace(args, bus, fresh: bool = True):
    """Attach a TraceSink per the ``--trace-out`` flags (or return None)."""
    if not getattr(args, "trace_out", None):
        return None
    from repro.trace import TraceSink

    return bus.attach(
        TraceSink(
            args.trace_out,
            include_timings=not getattr(args, "trace_canonical", False),
            fresh=fresh,
        )
    )


def _report_trace(out, tracer) -> None:
    if tracer is None:
        return
    tracer.close()
    out.write(
        f"trace written: {tracer.path} ({tracer.spans_written} spans)\n"
    )


def _start_sample_profiler(args, context=None):
    """Start the opt-in sampling profiler per ``--sample-profile``.

    Returns the running profiler, or ``None`` when the flag is off.
    When a :class:`~repro.obs.CrawlTraceContext` is supplied its
    ``current_label`` prefixes every sample with the active span.
    """
    if not getattr(args, "sample_profile", None):
        return None
    from repro.obs import SamplingProfiler

    profiler = SamplingProfiler(
        interval=getattr(args, "sample_interval", 0.005),
        label_provider=(
            context.current_label if context is not None else None
        ),
    )
    return profiler.start()


def _finish_sample_profiler(args, out, profiler) -> None:
    if profiler is None:
        return
    profiler.stop()
    stacks = profiler.write_folded(args.sample_profile)
    out.write(
        f"profile samples: {args.sample_profile} "
        f"({profiler.sample_count} samples, {stacks} folded stacks)\n"
    )


def _report_result(table, result, args, out, server=None) -> None:
    if table is not None:
        out.write(f"source: {table.name} ({len(table):,} records)\n")
    elif server is not None:
        out.write(
            f"source: {server.name} ({server.truth_size():,} records, "
            f"remote at {server.base_url})\n"
        )
    out.write(
        f"{result.policy}: {result.records_harvested:,} records "
        f"({result.coverage:.1%}) in {result.communication_rounds:,} rounds, "
        f"{result.queries_issued:,} queries, stopped by {result.stopped_by}\n"
    )
    log = getattr(server, "log", None)
    if log is not None and log.record_wall_times and log.wall_times:
        total = log.total_wall_time
        mean_ms = total / len(log.wall_times) * 1e3
        out.write(
            f"wire time: {total:.3f}s over {len(log.wall_times):,} rounds "
            f"(mean {mean_ms:.1f}ms/round)\n"
        )
    if result.aborted_queries:
        out.write(f"aborted queries: {result.aborted_queries}\n")
    if args.history:
        io.history_to_csv(result.history, args.history)
        out.write(f"history written to {args.history}\n")


def _profiled_crawl(args, out) -> int:
    """Run ``repro crawl`` under cProfile and dump the stats to disk.

    The dump is the raw marshalled stats (load with
    ``pstats.Stats(PATH)`` or any profile viewer); a cumulative-time
    top-``--profile-top`` summary (default 25 functions) is printed to
    the report stream so the hot path is visible without extra tooling.
    """
    import cProfile
    import pstats

    profile_path = args.profile
    top = max(int(getattr(args, "profile_top", 25) or 0), 1)
    args.profile = None  # re-entry runs the real crawl
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = _command_crawl(args, out)
    finally:
        profiler.disable()
        profiler.dump_stats(profile_path)
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats("cumulative").print_stats(top)
        out.write(f"profile stats written to {profile_path}\n")
    return code


def _remote_crawl(args, out) -> int:
    """``repro crawl --remote URL``: the same crawl over the wire.

    Seeds come from the service's ``/truth/seeds`` route, which runs
    the identical :func:`sample_seed_values` the in-process path runs
    — so a remote crawl with the same seed discovers the byte-identical
    record set in the same number of communication rounds.
    """
    from repro.net import RemoteWebDatabase

    if args.checkpoint_dir is not None:
        out.write("--checkpoint-dir requires a local source\n")
        return 2
    if args.policy == "practical":
        out.write("--remote does not support the practical bundle\n")
        return 2
    telemetry = writer = reporter = bus = tracer = None
    trace_context = None
    if _telemetry_requested(args) or args.trace_out or args.sample_profile:
        from repro.runtime.events import EventBus

        bus = EventBus()
        tracer = _attach_trace(args, bus)
        if args.trace_out or args.sample_profile:
            from repro.obs import CrawlTraceContext

            # The context mirrors TraceSink's span-id assignment so the
            # client can name each fetch's span id before the request
            # goes on the wire (X-Repro-Trace propagation) and so
            # profiler samples carry the active span label.
            trace_context = bus.attach(
                CrawlTraceContext(trace_id=f"{args.policy}-s{args.seed}")
            )
    with RemoteWebDatabase(
        args.remote,
        source=args.remote_source,
        pipeline_depth=args.pipeline_depth,
        trace_context=trace_context,
    ) as server:
        if _telemetry_requested(args):
            telemetry, writer, reporter = _attach_telemetry(
                args, out, bus, truth_size=server.truth_size()
            )
        engine = CrawlerEngine(
            server, POLICIES[args.policy](), seed=args.seed, bus=bus
        )
        seeds = server.truth_seeds(1, seed=args.seed, min_frequency=2)
        profiler = _start_sample_profiler(args, trace_context)
        try:
            result = engine.crawl(
                seeds,
                target_coverage=args.target,
                max_rounds=args.max_rounds,
                max_queries=args.max_queries,
            )
        finally:
            _finish_sample_profiler(args, out, profiler)
        out.write(f"seed value: {seeds[0]}\n")
        _report_result(None, result, args, out, server=server)
        _report_trace(out, tracer)
        _report_telemetry(
            args, out, telemetry, writer, reporter, selector=engine.selector
        )
    return 0


def _command_crawl(args, out) -> int:
    import random

    if getattr(args, "profile", None):
        return _profiled_crawl(args, out)
    if getattr(args, "remote", None):
        return _remote_crawl(args, out)
    if args.checkpoint_dir is not None:
        return _durable_crawl(args, out)
    if args.dataset:
        table = load_dataset(args.dataset, args.records, seed=args.seed)
    else:
        table = io.load_table(args.table)
    limit_policy = (
        ResultLimitPolicy(limit=args.result_limit, ordering="ranked")
        if args.result_limit
        else None
    )
    server = SimulatedWebDatabase(
        table, page_size=args.page_size, limit_policy=limit_policy
    )
    telemetry = writer = reporter = bus = tracer = None
    trace_context = None
    if _telemetry_requested(args) or args.trace_out or args.sample_profile:
        from repro.runtime.events import EventBus

        bus = EventBus()
        if _telemetry_requested(args):
            telemetry, writer, reporter = _attach_telemetry(
                args, out, bus, truth_size=len(table)
            )
        tracer = _attach_trace(args, bus)
        if args.sample_profile:
            from repro.obs import CrawlTraceContext

            trace_context = bus.attach(
                CrawlTraceContext(trace_id=f"{args.policy}-s{args.seed}")
            )
    if args.policy == "practical":
        engine = build_practical_crawler(server, seed=args.seed, bus=bus)
    else:
        engine = CrawlerEngine(
            server, POLICIES[args.policy](), seed=args.seed, bus=bus
        )
    seeds = sample_seed_values(
        table, 1, random.Random(args.seed), min_frequency=2
    )
    profiler = _start_sample_profiler(args, trace_context)
    try:
        result = engine.crawl(
            seeds,
            target_coverage=args.target,
            max_rounds=args.max_rounds,
            max_queries=args.max_queries,
        )
    finally:
        _finish_sample_profiler(args, out, profiler)
    out.write(f"seed value: {seeds[0]}\n")
    _report_result(table, result, args, out)
    _report_trace(out, tracer)
    _report_telemetry(
        args, out, telemetry, writer, reporter, server=server,
        selector=engine.selector,
    )
    return 0


def _durable_crawl(args, out) -> int:
    import random

    from repro.analysis.reports import render_runtime_metrics
    from repro.runtime.crawler import RuntimeCrawler
    from repro.runtime.events import EventBus, MetricsAggregator

    if args.policy == "practical":
        out.write("--checkpoint-dir does not support the practical bundle\n")
        return 2
    setup = {
        "dataset": args.dataset,
        "table": args.table,
        "records": args.records,
        "policy": args.policy,
        "page_size": args.page_size,
        "result_limit": args.result_limit,
        "seed": args.seed,
    }
    table, server, selector = _build_from_setup(setup)
    bus = EventBus()
    metrics = bus.attach(MetricsAggregator())
    telemetry = writer = reporter = None
    if _telemetry_requested(args):
        telemetry, writer, reporter = _attach_telemetry(
            args, out, bus, truth_size=len(table)
        )
    tracer = _attach_trace(args, bus)
    engine = CrawlerEngine(server, selector, seed=args.seed, bus=bus)
    runtime = RuntimeCrawler(
        engine,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        snapshot_every=args.snapshot_every,
        setup=setup,
        telemetry=telemetry,
        trace=tracer,
    )
    seeds = sample_seed_values(
        table, 1, random.Random(args.seed), min_frequency=2
    )
    result = runtime.crawl(
        seeds,
        target_coverage=args.target,
        max_rounds=args.max_rounds,
        max_queries=args.max_queries,
        stop_after_steps=args.stop_after_steps,
    )
    runtime.close()
    out.write(f"seed value: {seeds[0]}\n")
    _report_result(table, result, args, out)
    out.write(
        f"checkpoints written: {runtime.checkpoints_written} "
        f"(every {args.checkpoint_every} steps) in {args.checkpoint_dir}\n"
    )
    if result.stopped_by == "suspended":
        out.write(f"suspended; continue with: repro resume {args.checkpoint_dir}\n")
    _report_trace(out, tracer)
    out.write(render_runtime_metrics(metrics))
    out.write("\n")
    _report_telemetry(
        args, out, telemetry, writer, reporter, server=server,
        selector=selector,
    )
    return 0


def _command_resume(args, out) -> int:
    from repro.analysis.reports import render_runtime_metrics
    from repro.runtime.checkpoint import CrawlCheckpoint
    from repro.runtime.crawler import CHECKPOINT_FILE, RuntimeCrawler
    from repro.runtime.events import EventBus, MetricsAggregator
    from pathlib import Path

    directory = Path(args.checkpoint_dir)
    checkpoint = CrawlCheckpoint.load(directory / CHECKPOINT_FILE)
    if not checkpoint.setup:
        out.write(
            "checkpoint carries no setup recipe (API-made); "
            "resume it with RuntimeCrawler.resume() instead\n"
        )
        return 2
    table, server, selector = _build_from_setup(checkpoint.setup)
    bus = EventBus()
    metrics = bus.attach(MetricsAggregator())
    telemetry = writer = reporter = None
    if _telemetry_requested(args):
        telemetry, writer, reporter = _attach_telemetry(
            args, out, bus, truth_size=len(table)
        )
    tracer = _attach_trace(args, bus, fresh=False)
    runtime = RuntimeCrawler.resume(
        directory, server, selector, bus=bus, telemetry=telemetry,
        trace=tracer,
    )
    out.write(
        f"resumed from step {checkpoint.step} "
        f"(+{runtime.engine.steps - checkpoint.step} journaled steps replayed)\n"
    )
    result = runtime.run(stop_after_steps=args.stop_after_steps)
    runtime.close()
    _report_result(table, result, args, out)
    if result.stopped_by == "suspended":
        out.write(f"suspended; continue with: repro resume {args.checkpoint_dir}\n")
    _report_trace(out, tracer)
    out.write(render_runtime_metrics(metrics))
    out.write("\n")
    _report_telemetry(
        args, out, telemetry, writer, reporter, server=server,
        selector=selector,
    )
    return 0


def _command_experiment(args, out) -> int:
    from repro.analysis.reports import render_speedup_table
    from repro.runtime.events import EventBus, RingBufferSink

    if args.trace_out and args.name not in TRACEABLE_EXPERIMENTS:
        out.write(
            f"experiment {args.name} does not fan out through the crawl "
            f"grid; --trace-out supports: "
            f"{', '.join(sorted(TRACEABLE_EXPERIMENTS))}\n"
        )
        return 2
    bus = EventBus()
    sink = bus.attach(RingBufferSink(capacity=4096))
    telemetry = writer = reporter = None
    if _telemetry_requested(args):
        telemetry, writer, reporter = _attach_telemetry(args, out, bus)
    workers = parse_workers(getattr(args, "workers", "auto"))
    result = EXPERIMENTS[args.name](
        args, workers, bus, args.trace_out, not args.trace_canonical
    )
    out.write(result.render())
    out.write("\n")
    if args.trace_out:
        from repro.trace import validate_trace_jsonl

        spans = validate_trace_jsonl(args.trace_out)
        out.write(f"trace written: {args.trace_out} ({spans} spans)\n")
    if any(event.kind == "task-completed" for event in sink.events):
        out.write(render_speedup_table(sink.events))
        out.write("\n")
    if sink.dropped:
        out.write(
            f"event ring buffer overflowed: {sink.dropped} events dropped "
            f"(capacity {sink.capacity})\n"
        )
    _report_telemetry(args, out, telemetry, writer, reporter)
    return 0


def _command_trace(args, out) -> int:
    """``repro trace summarize|export|diff`` — span-trace inspection."""
    import json

    from repro.trace import (
        critical_paths,
        diff_summaries,
        folded_stacks,
        load_trace,
        render_diff,
        render_summary,
        summarize,
        write_chrome,
    )

    if args.trace_command == "summarize":
        trace = load_trace(args.trace)
        summary = summarize(trace, top=args.top)
        if args.json:
            out.write(json.dumps(summary, indent=2, sort_keys=True))
            out.write("\n")
        else:
            out.write(render_summary(summary))
            out.write("\n")
        if args.critical_paths:
            out.write("\ncritical paths (dominant root-to-leaf):\n")
            for entry in critical_paths(trace, top=args.top):
                out.write(
                    f"  {entry['count']:>5}x  {entry['path']}  "
                    f"({entry['rounds']} rounds"
                    + (
                        f", {entry['wall_s']:.4f} s"
                        if entry["wall_s"]
                        else ""
                    )
                    + ")\n"
                )
        return 0
    if args.trace_command == "export":
        if not args.chrome and not args.folded:
            out.write("nothing to export: pass --chrome and/or --folded\n")
            return 2
        trace = load_trace(args.trace)
        if args.chrome:
            events = write_chrome(trace, args.chrome)
            out.write(
                f"chrome trace: {args.chrome} ({events} events; load in "
                f"chrome://tracing or ui.perfetto.dev)\n"
            )
        if args.folded:
            lines = folded_stacks(trace)
            with open(args.folded, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
            out.write(f"folded stacks: {args.folded} ({len(lines)} stacks)\n")
        return 0
    if args.trace_command == "stitch":
        from repro.obs import stitch_traces

        stats = stitch_traces(args.client, args.server, args.out)
        out.write(
            f"stitched trace: {args.out} ({stats['total_spans']} spans; "
            f"{stats['stitched_groups']}/{stats['server_groups']} server "
            f"request groups joined"
            + (
                f", {stats['orphan_groups']} orphaned"
                if stats["orphan_groups"]
                else ""
            )
            + ")\n"
        )
        return 0
    # diff
    summary_a = summarize(load_trace(args.trace_a))
    summary_b = summarize(load_trace(args.trace_b))
    diff = diff_summaries(summary_a, summary_b)
    out.write(render_diff(diff, label_a=args.trace_a, label_b=args.trace_b))
    out.write("\n")
    return 0


def _command_profile(args, out) -> int:
    import random

    from repro.estimation.profiler import profile_source

    if args.dataset:
        table = load_dataset(args.dataset, args.records, seed=args.seed)
    else:
        table = io.load_table(args.table)
    server = SimulatedWebDatabase(table)
    rng = random.Random(args.seed)
    queriable = set(table.schema.queriable)
    probe_values = [
        value for value in table.distinct_values() if value.attribute in queriable
    ]
    rng.shuffle(probe_values)
    report = profile_source(
        server, probe_values[: args.probes * 4], max_probes=args.probes, rng=rng
    )
    out.write(f"source: {table.name} ({len(table):,} records)\n")
    out.write(report.render())
    out.write("\n")
    return 0


def _build_served_sources(args):
    """Mount tables as SimulatedWebDatabase instances for ``serve``."""
    from pathlib import Path

    limit_policy = (
        ResultLimitPolicy(limit=args.result_limit, ordering="ranked")
        if args.result_limit
        else None
    )
    sources = {}
    for name in args.dataset or []:
        table = load_dataset(name, args.records, seed=args.seed)
        sources[name] = SimulatedWebDatabase(
            table, page_size=args.page_size, limit_policy=limit_policy
        )
    for path in args.table or []:
        table = io.load_table(path)
        name = table.name or Path(path).stem
        sources[name] = SimulatedWebDatabase(
            table, page_size=args.page_size, limit_policy=limit_policy
        )
    return sources


def _command_serve(args, out) -> int:
    import asyncio

    from repro.metrics import MetricsRegistry
    from repro.net import AsyncSourceServer, SourceService
    from repro.net.server import ThreadedSourceServer
    from repro.server.limits import RateLimiter

    sources = _build_served_sources(args)
    if not sources:
        out.write("nothing to serve: pass --dataset and/or --table\n")
        return 2
    limiter = (
        RateLimiter(
            args.rate_limit,
            args.rate_window,
            ban_after=args.ban_after,
            ban_seconds=args.ban_seconds,
        )
        if args.rate_limit
        else None
    )

    def announce(url: str) -> None:
        out.write(f"serving {len(sources)} source(s) at {url}\n")
        for name in sorted(sources):
            out.write(f"  {url}/sources/{name}/query\n")
        out.write("metrics at /metrics; stop with Ctrl-C\n")
        if hasattr(out, "flush"):
            out.flush()

    if args.workers > 1:
        import time as _time

        from repro.net.cluster import SourceCluster
        from repro.server.limits import RateLimiterSpec

        cluster = SourceCluster(
            sources,
            host=args.host,
            port=args.port,
            workers=args.workers,
            rate_limiter=(
                RateLimiterSpec.from_limiter(limiter)
                if limiter is not None
                else None
            ),
            expose_truth=not args.no_truth,
            page_cache_size=args.page_cache,
            trace_spans=bool(args.trace_out),
            trace_timings=not args.trace_canonical,
            trace_path=args.trace_out,
        )
        url = cluster.start()
        out.write(f"cluster: {args.workers} workers ({cluster.mode} mode)\n")
        announce(url)
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            out.write("shutting down\n")
        finally:
            snapshot = cluster.stop()
            if snapshot is not None:
                rounds = sum(snapshot.rounds.values())
                out.write(
                    f"served {snapshot.requests_served} requests, "
                    f"{rounds} rounds\n"
                )
            if args.trace_out:
                out.write(
                    f"server trace written to {args.trace_out} "
                    f"({len(cluster.trace_groups)} request groups)\n"
                )
        return 0

    service = SourceService(
        sources,
        rate_limiter=limiter,
        registry=MetricsRegistry(),
        expose_truth=not args.no_truth,
        page_cache_size=args.page_cache,
    )
    if args.trace_out:
        from repro.obs import ServerSpanTracer

        service.tracer = ServerSpanTracer(
            include_timings=not args.trace_canonical
        )

    def finish_trace() -> None:
        if service.tracer is None:
            return
        from repro.obs import write_server_trace

        spans = write_server_trace(
            args.trace_out,
            service.tracer.payload(),
            include_timings=not args.trace_canonical,
        )
        out.write(
            f"server trace written to {args.trace_out} ({spans} spans)\n"
        )

    if args.threaded:
        server = ThreadedSourceServer(service, host=args.host, port=args.port)
        announce(server.url)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            finish_trace()
        return 0

    async def run() -> None:
        server = AsyncSourceServer(service, host=args.host, port=args.port)
        await server.start()
        announce(server.url)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        out.write("shutting down\n")
    finally:
        finish_trace()
    return 0


def _command_top(args, out) -> int:
    """``repro top`` — refresh-loop ops console over ``/debug/status``."""
    from urllib.parse import urlparse

    from repro.obs import run_top

    url = args.url if "//" in args.url else f"http://{args.url}"
    parsed = urlparse(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    iterations = 1 if args.once else args.iterations
    frames = run_top(
        host,
        port,
        interval=args.interval,
        iterations=iterations,
        metrics_jsonl=args.metrics_jsonl,
        out=out,
        clear=not args.once,
    )
    return 0 if frames else 1


def _command_loadtest(args, out) -> int:
    from repro.metrics import MetricsRegistry
    from repro.net import run_loadtest, write_bench

    registry = MetricsRegistry()
    report = run_loadtest(
        args.url,
        args.source,
        sessions=args.sessions,
        queries_per_session=args.queries,
        value_pool=args.value_pool,
        seed=args.seed,
        timeout=args.timeout,
        registry=registry,
    )
    out.write(report.summary())
    out.write("\n")
    if args.bench_out:
        write_bench(report, args.bench_out)
        out.write(f"bench written to {args.bench_out}\n")
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "datasets": _command_datasets,
        "generate": _command_generate,
        "crawl": _command_crawl,
        "resume": _command_resume,
        "experiment": _command_experiment,
        "trace": _command_trace,
        "fleet": _command_fleet,
        "profile": _command_profile,
        "serve": _command_serve,
        "loadtest": _command_loadtest,
        "top": _command_top,
    }[args.command]
    return handler(args, out)

if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
