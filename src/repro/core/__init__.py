"""Relational substrate: records, schemas, universal tables, queries."""

from repro.core.errors import (
    CrawlError,
    DatasetError,
    EstimationError,
    PaginationError,
    QueryError,
    ReproError,
    SchemaError,
    UnsupportedQueryError,
)
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.records import Record
from repro.core.schema import Attribute, Schema
from repro.core.table import RelationalTable
from repro.core.values import AttributeValue, normalize

__all__ = [
    "AnyQuery",
    "Attribute",
    "AttributeValue",
    "ConjunctiveQuery",
    "CrawlError",
    "DatasetError",
    "EstimationError",
    "PaginationError",
    "Query",
    "QueryError",
    "Record",
    "RelationalTable",
    "ReproError",
    "Schema",
    "SchemaError",
    "UnsupportedQueryError",
    "normalize",
]
