"""Relational substrate: records, schemas, universal tables, queries."""

from repro.core.errors import (
    CrawlError,
    DatasetError,
    EstimationError,
    PaginationError,
    QueryError,
    ReproError,
    SchemaError,
    UnsupportedQueryError,
)
from repro.core.intern import (
    StringInterner,
    ValueInterner,
    intersect_sorted,
    pack_pair,
    unpack_pair,
)
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.records import Record
from repro.core.schema import Attribute, Schema
from repro.core.table import RelationalTable
from repro.core.values import AttributeValue, normalize

__all__ = [
    "AnyQuery",
    "Attribute",
    "AttributeValue",
    "ConjunctiveQuery",
    "CrawlError",
    "DatasetError",
    "EstimationError",
    "PaginationError",
    "Query",
    "QueryError",
    "Record",
    "RelationalTable",
    "ReproError",
    "Schema",
    "SchemaError",
    "StringInterner",
    "UnsupportedQueryError",
    "ValueInterner",
    "intersect_sorted",
    "normalize",
    "pack_pair",
    "unpack_pair",
]
