"""Exception hierarchy shared across the package.

Every error raised on purpose by :mod:`repro` derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary without swallowing genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A record or query references an attribute the schema does not define."""


class QueryError(ReproError):
    """A query is malformed or not answerable by the target interface."""


class UnsupportedQueryError(QueryError):
    """The query is well-formed but the interface refuses it.

    Raised, for example, when a structured-only interface receives a
    keyword query, or when a non-queriable attribute is used in a
    predicate.
    """


class PaginationError(ReproError):
    """A page outside the valid range of a result set was requested."""


class CrawlError(ReproError):
    """The crawler engine reached an unrecoverable state."""


class EstimationError(ReproError):
    """A size estimator received insufficient or degenerate input."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""
