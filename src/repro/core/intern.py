"""Dense value interning — integer ids for the crawl hot path.

Every query–harvest–decompose step funnels the same
:class:`~repro.core.values.AttributeValue` objects through dict and set
operations thousands of times, and each operation re-hashes the pair of
strings behind the value.  Inverted-index engines avoid exactly this by
assigning every term a *dense* integer id once and running the index on
arrays; this module brings that discipline to the crawler.

A :class:`ValueInterner` maps attribute values to consecutive ints
(first-seen order) and back.  Once a value is interned, every downstream
structure — frequencies, degrees, adjacency, postings, co-occurrence —
is an array or an int set indexed by the id, so the per-object hashing
cost is paid exactly once per appearance instead of once per use site.

Pairs of ids are packed into a single int key for co-occurrence
counters (:func:`pack_pair`), replacing per-pair ``frozenset``
allocation and hashing with one shift and one or.

Determinism: id assignment depends only on first-seen order, and no
crawl decision depends on id *values* (heaps tie-break on push ticks,
sorts tie-break on the values themselves), so interning never changes
crawl results.  Interner state still round-trips through checkpoints
(:func:`ValueInterner.state_dict`) so a resumed crawl rebuilds the
exact same id assignment as the original run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.values import AttributeValue

#: Id width reserved for one side of a packed pair.  2**32 distinct
#: attribute values per crawl is far beyond every dataset in PAPERS.md;
#: the interner raises loudly if a crawl ever crosses it.
PAIR_SHIFT = 32
MAX_ID = (1 << PAIR_SHIFT) - 1


def pack_pair(u: int, v: int) -> int:
    """Pack two interned ids into one canonical int key.

    The smaller id lands in the high bits, so ``pack_pair(u, v) ==
    pack_pair(v, u)`` — the same symmetry a ``frozenset({u, v})`` key
    provided, at a fraction of the cost.
    """
    if u > v:
        u, v = v, u
    return (u << PAIR_SHIFT) | v


def unpack_pair(key: int) -> tuple:
    """Invert :func:`pack_pair` → ``(lo, hi)``."""
    return key >> PAIR_SHIFT, key & MAX_ID


class ValueInterner:
    """Bidirectional ``AttributeValue`` ↔ dense ``int`` id map.

    Ids are assigned consecutively from 0 in first-intern order, so they
    index plain lists/arrays directly.  The reverse map is a list — id
    to value is an index, not a hash.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: Dict[AttributeValue, int] = {}
        self._values: List[AttributeValue] = []

    def intern(self, value: AttributeValue) -> int:
        """Return the value's id, assigning the next dense id if new."""
        vid = self._ids.get(value)
        if vid is None:
            vid = len(self._values)
            if vid > MAX_ID:
                raise OverflowError(
                    f"interner exceeded {MAX_ID} distinct values"
                )
            self._ids[value] = vid
            self._values.append(value)
        return vid

    def lookup(self, value: AttributeValue) -> Optional[int]:
        """The value's id, or None if it was never interned."""
        return self._ids.get(value)

    def value(self, vid: int) -> AttributeValue:
        """The value behind an id (ids are dense — this is a list index)."""
        return self._values[vid]

    def values(self) -> List[AttributeValue]:
        """All interned values, id order (a live list — do not mutate)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: AttributeValue) -> bool:
        return value in self._ids

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime.serialize)
    # ------------------------------------------------------------------
    def state_dict(self) -> List[List[str]]:
        """The full id assignment, id order — JSON-safe."""
        return [[v.attribute, v.value] for v in self._values]

    def load_state(self, payload: Iterable[Sequence[str]]) -> None:
        """Restore an assignment captured by :meth:`state_dict`.

        Replaces any existing assignment; meant for freshly built
        interners during checkpoint restore.
        """
        self._ids = {}
        self._values = []
        for attribute, value in payload:
            self.intern(AttributeValue(attribute, value))


class StringInterner:
    """``str`` ↔ dense id map for keyword tokens.

    Keyword postings index by token, not by ``(attribute, value)``
    pair; tokens get their own id space so the two never collide.
    """

    __slots__ = ("_ids", "_tokens")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._tokens: List[str] = []

    def intern(self, token: str) -> int:
        tid = self._ids.get(token)
        if tid is None:
            tid = len(self._tokens)
            self._ids[token] = tid
            self._tokens.append(token)
        return tid

    def lookup(self, token: str) -> Optional[int]:
        return self._ids.get(token)

    def token(self, tid: int) -> str:
        return self._tokens[tid]

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def state_dict(self) -> List[str]:
        return list(self._tokens)

    def load_state(self, payload: Iterable[str]) -> None:
        self._ids = {}
        self._tokens = []
        for token in payload:
            self.intern(token)


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Intersection of two ascending-sorted int sequences, sorted.

    Classic two-pointer merge — O(len(a) + len(b)), no hashing, no set
    allocation.  The workhorse behind conjunctive posting intersections.
    """
    out: List[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out
