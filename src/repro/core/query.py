"""Queries under the paper's simplified query model.

Section 2.2 restricts the study to selection queries with a single
equality predicate — either a structured one (``attribute = value``) or
a keyword one, where only the value is sent and the source decides which
column it matches ("fading schema").  :class:`Query` covers both; the
:meth:`Query.sql` renderer produces the SELECT statement of
Definition 2.2 for logging and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.errors import QueryError
from repro.core.values import AttributeValue, normalize


@dataclass(frozen=True, order=True)
class Query:
    """A single-predicate query.

    ``attribute is None`` marks a keyword query.  Values are normalized
    so queries compare equal under the same collation as stored values.
    """

    value: str
    attribute: Optional[str] = None

    def __post_init__(self) -> None:
        value = normalize(self.value)
        if not value:
            raise QueryError("query value must be non-empty")
        object.__setattr__(self, "value", value)
        if self.attribute is not None:
            attribute = self.attribute.strip().lower()
            if not attribute:
                raise QueryError("query attribute must be non-empty if given")
            object.__setattr__(self, "attribute", attribute)

    @classmethod
    def equality(cls, attribute: str, value: str) -> "Query":
        """Structured query: ``WHERE attribute = value``."""
        return cls(value=value, attribute=attribute)

    @classmethod
    def keyword(cls, value: str) -> "Query":
        """Keyword query: the value alone, column chosen by the source."""
        return cls(value=value, attribute=None)

    @classmethod
    def from_attribute_value(cls, pair: AttributeValue) -> "Query":
        """Lift an AVG vertex into the structured query that visits it."""
        return cls(value=pair.value, attribute=pair.attribute)

    @property
    def is_keyword(self) -> bool:
        return self.attribute is None

    def as_attribute_value(self) -> AttributeValue:
        """The AVG vertex this query visits (structured queries only)."""
        if self.attribute is None:
            raise QueryError("keyword queries do not map to a single vertex")
        return AttributeValue(self.attribute, self.value)

    def sql(self, result_attributes: tuple[str, ...] = ("*",)) -> str:
        """Render the Definition 2.2 SELECT statement.

        >>> Query.equality("brand", "IBM").sql(("title", "price"))
        "SELECT title, price FROM DB WHERE brand = 'ibm'"
        """
        projection = ", ".join(result_attributes)
        if self.attribute is None:
            predicate = f"ANY_COLUMN CONTAINS '{self.value}'"
        else:
            predicate = f"{self.attribute} = '{self.value}'"
        return f"SELECT {projection} FROM DB WHERE {predicate}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.attribute is None:
            return f"keyword({self.value!r})"
        return f"{self.attribute}={self.value!r}"

    def __getstate__(self) -> dict:
        # Servers memoize per-table cache keys on query objects (see
        # SimulatedWebDatabase._order_key); those tags reference the
        # server and are only valid in-process, so pickle/deepcopy must
        # shed them.
        return {
            k: v for k, v in self.__dict__.items() if k != "_webdb_order_key"
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


@dataclass(frozen=True, order=True)
class ConjunctiveQuery:
    """A conjunction of equality predicates over distinct attributes.

    The paper's evaluation is restricted to single-predicate queries and
    leaves "crawling multi-attribute Web sources" as future work; this
    type is that extension.  It models the restrictive interfaces of the
    Table 1 case study's Car domain, where "only multi-attribute queries
    are accepted" (a form demanding make *and* model, say).

    Predicates are stored sorted, so logically equal conjunctions
    compare and hash equal regardless of construction order.
    """

    predicates: tuple

    def __post_init__(self) -> None:
        cleaned = tuple(sorted(set(self.predicates)))
        if not cleaned:
            raise QueryError("a conjunctive query needs at least one predicate")
        attributes = [pair.attribute for pair in cleaned]
        if len(set(attributes)) != len(attributes):
            raise QueryError(
                "conjunctive predicates must use distinct attributes "
                f"(got {attributes})"
            )
        object.__setattr__(self, "predicates", cleaned)

    @classmethod
    def of(cls, *pairs: AttributeValue) -> "ConjunctiveQuery":
        return cls(predicates=tuple(pairs))

    @classmethod
    def equalities(cls, **conditions: str) -> "ConjunctiveQuery":
        """``ConjunctiveQuery.equalities(make="toyota", model="corolla")``."""
        return cls(
            predicates=tuple(
                AttributeValue(attribute, value)
                for attribute, value in conditions.items()
            )
        )

    @property
    def is_keyword(self) -> bool:
        return False

    @property
    def arity(self) -> int:
        """Number of predicates (the interface's ``min_predicates`` gate)."""
        return len(self.predicates)

    @property
    def attributes(self) -> tuple:
        return tuple(pair.attribute for pair in self.predicates)

    def sql(self, result_attributes: tuple = ("*",)) -> str:
        """Render the Definition 2.2 SELECT with an AND-chain predicate."""
        projection = ", ".join(result_attributes)
        condition = " AND ".join(
            f"{pair.attribute} = '{pair.value}'" for pair in self.predicates
        )
        return f"SELECT {projection} FROM DB WHERE {condition}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " AND ".join(f"{p.attribute}={p.value!r}" for p in self.predicates)

    def __getstate__(self) -> dict:
        # See Query.__getstate__ — shed in-process server cache tags.
        return {
            k: v for k, v in self.__dict__.items() if k != "_webdb_order_key"
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


#: Anything the server and prober accept as "a query".
AnyQuery = Union[Query, ConjunctiveQuery]
