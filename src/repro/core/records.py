"""Records of the universal table.

A :class:`Record` is one row of the single relational table ``DB`` the
paper uses to model a structured web source (Section 2.1).  Multi-valued
attributes (the paper's "Authors" example) carry a tuple of values; the
paper concatenates them into one full-text-searchable column, which here
means a single-equality query on the attribute matches if *any* of the
values equals the query value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

from repro.core.errors import SchemaError
from repro.core.schema import Schema
from repro.core.values import AttributeValue, normalize

RawValue = Union[str, Sequence[str]]


@dataclass(frozen=True)
class Record:
    """One immutable row: a record id plus attribute → values mapping.

    Values are normalized at construction; empty values are dropped.
    ``fields`` maps attribute name to a tuple of normalized strings
    (singletons for single-valued attributes).
    """

    record_id: int
    fields: Mapping[str, tuple[str, ...]]
    _values: tuple[AttributeValue, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        cleaned: dict[str, tuple[str, ...]] = {}
        pairs: list[AttributeValue] = []
        for attribute, values in self.fields.items():
            name = attribute.strip().lower()
            normalized = tuple(
                dict.fromkeys(  # preserve order, drop duplicates
                    v for v in (normalize(x) for x in values) if v
                )
            )
            if not normalized:
                continue
            cleaned[name] = normalized
            pairs.extend(AttributeValue(name, v) for v in normalized)
        object.__setattr__(self, "fields", cleaned)
        object.__setattr__(self, "_values", tuple(pairs))

    @classmethod
    def build(cls, record_id: int, schema: Schema, **raw: RawValue) -> "Record":
        """Construct a record validated against ``schema``.

        Single strings are wrapped into singleton tuples; sequences are
        only accepted for multivalued attributes.

        >>> schema = Schema.of("title", authors={"multivalued": True})
        >>> r = Record.build(1, schema, title="A Paper", authors=["X", "Y"])
        >>> r.values_of("authors")
        ('x', 'y')
        """
        fields: dict[str, tuple[str, ...]] = {}
        for attribute, value in raw.items():
            definition = schema.attribute(attribute)
            if isinstance(value, str):
                values: tuple[str, ...] = (value,)
            else:
                if not definition.multivalued and len(value) > 1:
                    raise SchemaError(
                        f"attribute {attribute!r} is single-valued but got "
                        f"{len(value)} values"
                    )
                values = tuple(value)
            fields[definition.name] = values
        return cls(record_id, fields)

    def values_of(self, attribute: str) -> tuple[str, ...]:
        """Normalized values stored under ``attribute`` (may be empty)."""
        return self.fields.get(attribute.strip().lower(), ())

    def attribute_values(self) -> tuple[AttributeValue, ...]:
        """Every (attribute, value) pair of the record — its AVG clique."""
        return self._values

    def matches(self, attribute: str, value: str) -> bool:
        """True iff the record holds ``value`` under ``attribute``."""
        return normalize(value) in self.values_of(attribute)

    def matches_keyword(self, value: str) -> bool:
        """True iff any attribute of the record holds ``value``.

        Models the paper's keyword interfaces where the crawler "throws"
        a value into the search box and the site decides the column.
        """
        needle = normalize(value)
        return any(needle in values for values in self.fields.values())

    def __iter__(self) -> Iterator[AttributeValue]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)
