"""Relational schemas for simulated structured web databases.

The paper (Definition 2.2) distinguishes the *interface schema* — the
set of queriable attributes ``Aq`` — from the *result schema* — the
attributes ``Ar`` displayed on result pages.  A :class:`Schema` holds
the full set of attributes of the universal table together with those
two flags per attribute, plus whether an attribute is multi-valued
(e.g. ``Authors``), which the paper handles by concatenating all values
into one full-text-searchable column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """Definition of one column of the universal table.

    Parameters
    ----------
    name:
        Attribute name, stored lower-case.
    queriable:
        Whether the web interface accepts equality predicates on it
        (membership in ``Aq``).
    displayed:
        Whether result pages include it (membership in ``Ar``).  A
        value that is never displayed can never be harvested and so
        never becomes a future query.
    multivalued:
        Whether a record may carry several values (authors, actors).
    """

    name: str
    queriable: bool = True
    displayed: bool = True
    multivalued: bool = False

    def __post_init__(self) -> None:
        name = self.name.strip().lower()
        if not name:
            raise SchemaError("attribute name must be non-empty")
        object.__setattr__(self, "name", name)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute` definitions."""

    attributes: tuple[Attribute, ...]
    _by_name: Mapping[str, Attribute] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        by_name = {}
        for attr in self.attributes:
            if attr.name in by_name:
                raise SchemaError(f"duplicate attribute {attr.name!r}")
            by_name[attr.name] = attr
        if not by_name:
            raise SchemaError("schema must define at least one attribute")
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(cls, *names: str, **flagged: dict) -> "Schema":
        """Build a schema from plain attribute names.

        ``Schema.of("title", "author")`` makes every attribute queriable,
        displayed, and single-valued.  Keyword arguments override flags
        per attribute: ``Schema.of("title", author={"multivalued": True})``.
        """
        attrs = [Attribute(name) for name in names]
        attrs.extend(Attribute(name, **flags) for name, flags in flagged.items())
        return cls(tuple(attrs))

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._by_name

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute definition by (case-insensitive) name."""
        key = name.strip().lower()
        try:
            return self._by_name[key]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names, in declaration order."""
        return tuple(a.name for a in self.attributes)

    @property
    def queriable(self) -> tuple[str, ...]:
        """The interface schema ``Aq`` — names accepting predicates."""
        return tuple(a.name for a in self.attributes if a.queriable)

    @property
    def displayed(self) -> tuple[str, ...]:
        """The result schema ``Ar`` — names shown on result pages."""
        return tuple(a.name for a in self.attributes if a.displayed)

    def restrict_queriable(self, names: Iterable[str]) -> "Schema":
        """Return a copy where only ``names`` remain queriable.

        Used by experiments that crawl the same table through narrower
        interfaces (e.g. the Figure 6 result-limit study reuses one
        dataset under several interface configurations).
        """
        keep = {n.strip().lower() for n in names}
        unknown = keep - set(self.names)
        if unknown:
            raise SchemaError(f"unknown attributes {sorted(unknown)!r}")
        attrs = tuple(
            Attribute(a.name, a.name in keep, a.displayed, a.multivalued)
            for a in self.attributes
        )
        return Schema(attrs)
