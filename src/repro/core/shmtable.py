"""Shared-memory table payloads for multi-process experiment grids.

A grid fans independent crawls over a process pool, and every crawl
reads the *same* immutable :class:`~repro.core.table.RelationalTable`.
Under ``fork`` the table is inherited copy-on-write — but CPython
refcount updates dirty the pages holding its records, strings, and
posting lists, so each worker gradually duplicates the whole table
anyway; under ``spawn`` the table is pickled to every worker up front.

This module removes the per-worker copy: :func:`share_table` flattens a
table into **one** ``multiprocessing.shared_memory`` block —

- every distinct attribute value as (attribute index, UTF-8 slice),
- the equality and keyword inverted indexes in CSR form,
- every record as a row of value ids (original field order preserved),

— and returns a tiny picklable :class:`SharedTableHandle`.  Workers call
:meth:`SharedTableHandle.table` to attach **once per process** (a
module-level cache keyed by block name; forked children inherit the
parent's attachment and never re-map) and get a :class:`FrozenTableView`
that serves the whole read-only table surface
:class:`~repro.server.webdb.SimulatedWebDatabase` consumes straight off
numpy views over the block.  Posting reads return exactly the lists the
source table would (CSR rows preserve the sorted-ascending contract, and
conjunctions replicate the table's stable smallest-first merge), so a
grid over shared payloads is bit-identical to one over the table itself.

Result :class:`~repro.core.records.Record` objects are materialized
lazily — only records actually served on a result page are ever decoded,
and each at most once per process.  A record round-trips exactly:
the row stores its value ids in ``attribute_values()`` order, which is
attribute-contiguous in first-seen field order, so regrouping them
rebuilds ``fields`` (and therefore the decomposition order every crawl
decision hangs off) identically.

Lifecycle: the creating process owns the block and must call
:meth:`SharedTableHandle.unlink` (or use the :func:`shared_table`
context manager) after the grid completes.  Attaching processes
deregister the block from :mod:`multiprocessing.resource_tracker` —
Python 3.9+ registers *every* ``SharedMemory(name=...)`` attachment,
and a pool worker's tracker would otherwise destroy the block (or warn
about it) when the worker exits mid-suite.

Everything degrades gracefully: :func:`supported` is False without
numpy or ``/dev/shm``, and callers (see
:func:`repro.experiments.harness.run_policy_suite`) fall back to the
plain closed-over table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.intern import intersect_sorted
from repro.core.query import AnyQuery, ConjunctiveQuery
from repro.core.records import Record
from repro.core.schema import Attribute, Schema
from repro.core.values import AttributeValue, normalize

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except Exception:  # pragma: no cover - numpy-less platforms
    np = None  # type: ignore[assignment]

try:  # pragma: no cover
    from multiprocessing import resource_tracker, shared_memory
except Exception:  # pragma: no cover - exotic platforms
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

#: Wire-format tag written into every block's metadata header.
FORMAT = "repro-shmtable/1"

#: Attach-once cache: block name → live view.  Forked workers inherit
#: the creator's entry and never touch the kernel again.
_ATTACHED: Dict[str, "FrozenTableView"] = {}

#: Blocks created (not merely attached) by this process, for unlink().
_CREATED: Dict[str, Any] = {}


def supported() -> bool:
    """Whether shared-memory payloads can be built on this platform."""
    return np is not None and shared_memory is not None


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class _Layout:
    """Accumulates arrays into one contiguous 8-byte-aligned layout."""

    def __init__(self) -> None:
        self.arrays: List[tuple] = []  # (key, ndarray)
        self.specs: Dict[str, List] = {}  # key → [rel_offset, dtype, len]
        self.size = 0

    def add(self, key: str, data: "np.ndarray") -> None:
        data = np.ascontiguousarray(data)
        offset = _align8(self.size)
        self.specs[key] = [offset, data.dtype.str, int(data.shape[0])]
        self.size = offset + data.nbytes
        self.arrays.append((key, data))


def _pack_strings(texts: Sequence[str]) -> tuple:
    """Concatenate UTF-8 strings into (blob, uint64 offsets)."""
    encoded = [t.encode("utf-8") for t in texts]
    offsets = np.zeros(len(encoded) + 1, dtype=np.uint64)
    total = 0
    for i, blob in enumerate(encoded):
        total += len(blob)
        offsets[i + 1] = total
    joined = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return joined, offsets


def _pack_csr(postings: Sequence[Sequence[int]]) -> tuple:
    """Ragged posting lists → (uint64 indptr, int64 indices)."""
    indptr = np.zeros(len(postings) + 1, dtype=np.uint64)
    total = 0
    for i, row in enumerate(postings):
        total += len(row)
        indptr[i + 1] = total
    indices = np.empty(total, dtype=np.int64)
    position = 0
    for row in postings:
        indices[position : position + len(row)] = row
        position += len(row)
    return indptr, indices


def share_table(table) -> "SharedTableHandle":
    """Flatten ``table`` into one shared-memory block and return a handle.

    The handle is a few dozen bytes and pickles freely; the block holds
    the complete table (values, both inverted indexes, record rows).
    The calling process is seeded into the attach cache, so its own
    :meth:`SharedTableHandle.table` call — and, under ``fork``, every
    worker's — reuses the mapping created here.

    Raises
    ------
    RuntimeError
        If the platform lacks numpy or POSIX shared memory (callers
        should check :func:`supported` and fall back to the table).
    """
    if not supported():
        raise RuntimeError("shared-memory table payloads are unavailable")
    interner = table._value_interner
    values = interner.values()
    attr_index = {name: i for i, name in enumerate(table.schema.names)}
    layout = _Layout()
    layout.add(
        "val_attr",
        np.fromiter(
            (attr_index[v.attribute] for v in values),
            dtype=np.uint32,
            count=len(values),
        ),
    )
    val_text, val_off = _pack_strings([v.value for v in values])
    layout.add("val_text", val_text)
    layout.add("val_off", val_off)
    eq_indptr, eq_ids = _pack_csr(table._equality_postings)
    layout.add("eq_indptr", eq_indptr)
    layout.add("eq_ids", eq_ids)
    tokens = table._keyword_interner.state_dict()
    kw_text, kw_off = _pack_strings(tokens)
    layout.add("kw_text", kw_text)
    layout.add("kw_off", kw_off)
    kw_indptr, kw_ids = _pack_csr(table._keyword_postings)
    layout.add("kw_indptr", kw_indptr)
    layout.add("kw_ids", kw_ids)
    records = list(table._records.values())
    layout.add(
        "rec_ids",
        np.fromiter(
            (r.record_id for r in records), dtype=np.int64, count=len(records)
        ),
    )
    lookup = interner.lookup
    rows = [
        [lookup(pair) for pair in record.attribute_values()]
        for record in records
    ]
    rec_indptr, rec_vids = _pack_csr(rows)
    layout.add("rec_indptr", rec_indptr)
    layout.add("rec_vids", rec_vids.astype(np.uint32))
    meta = {
        "format": FORMAT,
        "name": table.name,
        "schema": [
            [a.name, a.queriable, a.displayed, a.multivalued]
            for a in table.schema
        ],
        "n_records": len(records),
        "n_values": len(values),
        "n_tokens": len(tokens),
        "arrays": layout.specs,
    }
    meta_blob = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    base = _align8(16 + len(meta_blob))
    total = max(base + layout.size, 1)
    shm = shared_memory.SharedMemory(create=True, size=total)
    buffer = shm.buf
    buffer[0:8] = len(meta_blob).to_bytes(8, "little")
    buffer[8:16] = base.to_bytes(8, "little")
    buffer[16 : 16 + len(meta_blob)] = meta_blob
    for key, data in layout.arrays:
        offset = base + layout.specs[key][0]
        buffer[offset : offset + data.nbytes] = data.tobytes()
    handle = SharedTableHandle(shm_name=shm.name, nbytes=total)
    _CREATED[shm.name] = shm
    _ATTACHED[shm.name] = FrozenTableView(shm, meta, base)
    return handle


def _attach(name: str) -> "FrozenTableView":
    view = _ATTACHED.get(name)
    if view is not None:
        return view
    if not supported():  # pragma: no cover - guarded by share_table
        raise RuntimeError("shared-memory table payloads are unavailable")
    shm = shared_memory.SharedMemory(name=name)
    # SharedMemory(name=...) registers the *attachment* with the
    # resource tracker (bpo-39959); if left registered, this process's
    # tracker destroys the creator's block when the process exits.
    if resource_tracker is not None:  # pragma: no branch
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker-less platforms
            pass
    meta_len = int.from_bytes(bytes(shm.buf[0:8]), "little")
    base = int.from_bytes(bytes(shm.buf[8:16]), "little")
    meta = json.loads(bytes(shm.buf[16 : 16 + meta_len]).decode("utf-8"))
    if meta.get("format") != FORMAT:
        raise RuntimeError(f"unexpected shared table format: {meta.get('format')!r}")
    view = FrozenTableView(shm, meta, base)
    _ATTACHED[name] = view
    return view


@dataclass(frozen=True)
class SharedTableHandle:
    """Picklable pointer to a shared table block.

    Ship it to workers (it rides inside the grid payload); call
    :meth:`table` there to get the attach-once read-only view.  The
    creating process calls :meth:`unlink` when the grid is done.
    """

    shm_name: str
    nbytes: int

    def table(self) -> "FrozenTableView":
        """Attach (once per process) and return the frozen view."""
        return _attach(self.shm_name)

    def unlink(self) -> None:
        """Destroy the block.  Only the creator should call this."""
        view = _ATTACHED.pop(self.shm_name, None)
        shm = _CREATED.pop(self.shm_name, None)
        if shm is None and view is not None:
            shm = view._shm
        if view is not None:
            view._release()
        if shm is not None:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            shm.close()


class shared_table:
    """Context manager: ``with shared_table(table) as handle: ...``.

    Unlinks the block on exit, however the grid run ends.
    """

    def __init__(self, table) -> None:
        self._table = table
        self.handle: Optional[SharedTableHandle] = None

    def __enter__(self) -> SharedTableHandle:
        self.handle = share_table(self._table)
        return self.handle

    def __exit__(self, *exc) -> None:
        if self.handle is not None:
            self.handle.unlink()


class FrozenTableView:
    """Read-only :class:`~repro.core.table.RelationalTable` stand-in
    backed by a shared-memory block.

    Implements the full surface the simulated server and the experiment
    harness read — matching, counting, projection, ground-truth lookups
    — with identical results: posting reads come back in the same
    sorted-ascending order, conjunctions use the same stable
    smallest-first merge, and projected records are field-for-field
    equal to the originals.  Anything that would mutate the table
    (``insert``) is deliberately absent.

    Strings and records decode lazily: interned-id lookup maps build on
    first use, and each record materializes at most once per process.
    """

    def __init__(self, shm, meta: dict, base: int) -> None:
        self._shm = shm
        self._meta = meta
        self.name = meta["name"]
        self.schema = Schema(
            tuple(
                Attribute(name, queriable, displayed, multivalued)
                for name, queriable, displayed, multivalued in meta["schema"]
            )
        )
        self._attr_names = self.schema.names
        arrays = meta["arrays"]
        buffer = shm.buf

        def view(key: str) -> "np.ndarray":
            offset, dtype, length = arrays[key]
            return np.frombuffer(
                buffer, dtype=np.dtype(dtype), count=length, offset=base + offset
            )

        self._val_attr = view("val_attr")
        self._val_text = view("val_text")
        self._val_off = view("val_off")
        self._eq_indptr = view("eq_indptr")
        self._eq_ids = view("eq_ids")
        self._kw_text = view("kw_text")
        self._kw_off = view("kw_off")
        self._kw_indptr = view("kw_indptr")
        self._kw_ids = view("kw_ids")
        self._rec_ids = view("rec_ids")
        self._rec_indptr = view("rec_indptr")
        self._rec_vids = view("rec_vids")
        self._n_records = meta["n_records"]
        self._n_values = meta["n_values"]
        self._n_tokens = meta["n_tokens"]
        # Lazy caches (per attached process, grow with actual use).
        self._value_ids: Optional[Dict[AttributeValue, int]] = None
        self._token_ids: Optional[Dict[str, int]] = None
        self._row_of: Optional[Dict[int, int]] = None
        self._record_cache: Dict[int, Record] = {}

    # ------------------------------------------------------------------
    # Decoding helpers
    # ------------------------------------------------------------------
    def _text(self, blob, offsets, index: int) -> str:
        start, stop = int(offsets[index]), int(offsets[index + 1])
        return bytes(blob[start:stop]).decode("utf-8")

    def _decode_value(self, vid: int) -> AttributeValue:
        return AttributeValue(
            self._attr_names[self._val_attr[vid]],
            self._text(self._val_text, self._val_off, vid),
        )

    def _release(self) -> None:
        """Drop every numpy view so the mapping can close."""
        for key in (
            "_val_attr", "_val_text", "_val_off",
            "_eq_indptr", "_eq_ids",
            "_kw_text", "_kw_off", "_kw_indptr", "_kw_ids",
            "_rec_ids", "_rec_indptr", "_rec_vids",
        ):
            setattr(self, key, None)

    # ------------------------------------------------------------------
    # Introspection (RelationalTable surface)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_records

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._rows()

    def __iter__(self) -> Iterator[Record]:
        for record_id in self._rec_ids.tolist():
            yield self.get(record_id)

    def _rows(self) -> Dict[int, int]:
        rows = self._row_of
        if rows is None:
            rows = self._row_of = {
                record_id: row
                for row, record_id in enumerate(self._rec_ids.tolist())
            }
        return rows

    def get(self, record_id: int) -> Record:
        record = self._record_cache.get(record_id)
        if record is None:
            row = self._rows()[record_id]
            start, stop = int(self._rec_indptr[row]), int(self._rec_indptr[row + 1])
            fields: Dict[str, List[str]] = {}
            for vid in self._rec_vids[start:stop].tolist():
                pair = self._decode_value(vid)
                fields.setdefault(pair.attribute, []).append(pair.value)
            record = Record(
                record_id, {a: tuple(vs) for a, vs in fields.items()}
            )
            self._record_cache[record_id] = record
        return record

    def record_ids(self) -> List[int]:
        return sorted(self._rec_ids.tolist())

    def distinct_values(self, attribute: Optional[str] = None) -> List[AttributeValue]:
        values = [self._decode_value(vid) for vid in range(self._n_values)]
        if attribute is None:
            return sorted(values)
        key = attribute.strip().lower()
        return sorted(p for p in values if p.attribute == key)

    def num_distinct_values(self) -> int:
        return self._n_values

    def frequency(self, pair: AttributeValue) -> int:
        vid = self.value_id(pair)
        if vid is None:
            return 0
        return int(self._eq_indptr[vid + 1] - self._eq_indptr[vid])

    # ------------------------------------------------------------------
    # Interned ids
    # ------------------------------------------------------------------
    def value_id(self, pair: AttributeValue) -> Optional[int]:
        ids = self._value_ids
        if ids is None:
            ids = self._value_ids = {
                self._decode_value(vid): vid for vid in range(self._n_values)
            }
        return ids.get(pair)

    def keyword_id(self, value: str) -> Optional[int]:
        ids = self._token_ids
        if ids is None:
            ids = self._token_ids = {
                self._text(self._kw_text, self._kw_off, tid): tid
                for tid in range(self._n_tokens)
            }
        return ids.get(normalize(value))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _eq_postings(self, vid: int) -> List[int]:
        start, stop = int(self._eq_indptr[vid]), int(self._eq_indptr[vid + 1])
        return self._eq_ids[start:stop].tolist()

    def match_equality(self, attribute: str, value: str) -> List[int]:
        vid = self.value_id(AttributeValue(attribute, value))
        return [] if vid is None else self._eq_postings(vid)

    def match_keyword(self, value: str) -> List[int]:
        tid = self.keyword_id(value)
        if tid is None:
            return []
        start, stop = int(self._kw_indptr[tid]), int(self._kw_indptr[tid + 1])
        return self._kw_ids[start:stop].tolist()

    def match_conjunctive(self, predicates: Sequence[AttributeValue]) -> List[int]:
        postings = []
        for pair in predicates:
            vid = self.value_id(pair)
            if vid is None:
                return []
            postings.append(self._eq_postings(vid))
        if not postings:
            return []
        # Stable smallest-first merge — same tie order as the table's.
        postings.sort(key=len)
        result: Sequence[int] = postings[0]
        for posting in postings[1:]:
            result = intersect_sorted(result, posting)
            if not result:
                break
        return list(result)

    def match(self, query: AnyQuery) -> List[int]:
        if isinstance(query, ConjunctiveQuery):
            return self.match_conjunctive(query.predicates)
        if query.is_keyword:
            return self.match_keyword(query.value)
        assert query.attribute is not None
        return self.match_equality(query.attribute, query.value)

    def count(self, query: AnyQuery) -> int:
        if isinstance(query, ConjunctiveQuery):
            return len(self.match_conjunctive(query.predicates))
        if query.is_keyword:
            tid = self.keyword_id(query.value)
            if tid is None:
                return 0
            return int(self._kw_indptr[tid + 1] - self._kw_indptr[tid])
        vid = self.value_id(query.as_attribute_value())
        if vid is None:
            return 0
        return int(self._eq_indptr[vid + 1] - self._eq_indptr[vid])

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, record_ids: Sequence[int]) -> List[Record]:
        displayed = set(self.schema.displayed)
        projected = []
        for record_id in record_ids:
            record = self.get(record_id)
            if len(displayed) == len(self.schema):
                projected.append(record)
                continue
            fields = {
                attribute: values
                for attribute, values in record.fields.items()
                if attribute in displayed
            }
            projected.append(Record(record.record_id, fields))
        return projected
