"""The universal relational table backing a simulated web source.

The paper joins each source's data "into one single universal table" and
makes multi-valued columns full-text searchable (Section 5).  A
:class:`RelationalTable` stores :class:`~repro.core.records.Record` rows
and maintains two inverted indexes so that both structured equality
queries and keyword queries run in time proportional to their result
size:

- ``(attribute, value) → record ids`` for equality predicates, and
- ``value → record ids`` for keyword queries.

Record ids returned by matching methods are always sorted ascending so
results are deterministic and pagination is stable.  Posting lists are
kept sorted *at insertion time*: bulk loading assigns ascending record
ids, so the common case is an O(1) append, and the matching methods
return plain copies instead of re-sorting on every call — the latter
dominated crawl profiles, since every page request of every query hits
a posting list.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.errors import SchemaError
from repro.core.query import AnyQuery, ConjunctiveQuery
from repro.core.records import Record
from repro.core.schema import Schema
from repro.core.values import AttributeValue, normalize


def _insert_posting(postings: List[int], record_id: int) -> None:
    """Insert ``record_id`` keeping ``postings`` sorted ascending.

    Inserts are effectively append-ordered (bulk loaders hand out
    ascending ids), so the tail check makes the common case O(1); the
    bisect fallback keeps out-of-order inserts correct.
    """
    if not postings or record_id > postings[-1]:
        postings.append(record_id)
    else:
        insort(postings, record_id)


class RelationalTable:
    """An indexed, append-only universal table.

    Parameters
    ----------
    schema:
        Column definitions including queriable / displayed flags.
    name:
        Human-readable source name used in reports ("ebay", "imdb", ...).
    """

    def __init__(self, schema: Schema, name: str = "db") -> None:
        self.schema = schema
        self.name = name
        self._records: Dict[int, Record] = {}
        self._equality_index: Dict[AttributeValue, List[int]] = defaultdict(list)
        self._keyword_index: Dict[str, List[int]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, record: Record) -> None:
        """Insert one record, updating both inverted indexes.

        Raises
        ------
        SchemaError
            If the record id already exists or the record references an
            attribute the schema does not define.
        """
        if record.record_id in self._records:
            raise SchemaError(f"duplicate record id {record.record_id}")
        for attribute in record.fields:
            if attribute not in self.schema:
                raise SchemaError(
                    f"record {record.record_id} uses unknown attribute "
                    f"{attribute!r}"
                )
        self._records[record.record_id] = record
        seen_keywords: set[str] = set()
        for pair in record.attribute_values():
            _insert_posting(self._equality_index[pair], record.record_id)
            if pair.value not in seen_keywords:
                _insert_posting(self._keyword_index[pair.value], record.record_id)
                seen_keywords.add(pair.value)

    def insert_rows(self, rows: Iterable[dict], start_id: int = 0) -> None:
        """Bulk-insert raw ``attribute → value(s)`` dictionaries."""
        next_id = start_id
        while next_id in self._records:
            next_id += 1
        for row in rows:
            self.insert(Record.build(next_id, self.schema, **row))
            next_id += 1
            while next_id in self._records:
                next_id += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def get(self, record_id: int) -> Record:
        return self._records[record_id]

    def record_ids(self) -> List[int]:
        """All record ids, ascending."""
        return sorted(self._records)

    def distinct_values(self, attribute: Optional[str] = None) -> List[AttributeValue]:
        """The distinct attribute-value set (DAV), optionally per attribute.

        This is the vertex set of the table's attribute-value graph.
        """
        if attribute is None:
            return sorted(self._equality_index)
        key = attribute.strip().lower()
        return sorted(p for p in self._equality_index if p.attribute == key)

    def num_distinct_values(self) -> int:
        """``|DAV|`` — the AVG's vertex count (Table 2's right column)."""
        return len(self._equality_index)

    def frequency(self, pair: AttributeValue) -> int:
        """Number of records containing ``pair``."""
        return len(self._equality_index.get(pair, ()))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match_equality(self, attribute: str, value: str) -> List[int]:
        """Record ids matching ``attribute = value``, sorted ascending."""
        pair = AttributeValue(attribute, value)
        return list(self._equality_index.get(pair, ()))

    def match_keyword(self, value: str) -> List[int]:
        """Record ids holding ``value`` under *any* attribute, sorted."""
        return list(self._keyword_index.get(normalize(value), ()))

    def match_conjunctive(self, predicates: Sequence[AttributeValue]) -> List[int]:
        """Record ids satisfying *all* predicates, sorted ascending.

        Evaluated by intersecting posting lists smallest-first, so the
        cost is proportional to the most selective predicate.
        """
        postings = [self._equality_index.get(pair, []) for pair in predicates]
        if not postings or any(not p for p in postings):
            return []
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result.intersection_update(posting)
            if not result:
                break
        return sorted(result)

    def match(self, query: AnyQuery) -> List[int]:
        """Dispatch any query kind to the right index path."""
        if isinstance(query, ConjunctiveQuery):
            return self.match_conjunctive(query.predicates)
        if query.is_keyword:
            return self.match_keyword(query.value)
        assert query.attribute is not None
        return self.match_equality(query.attribute, query.value)

    def count(self, query: AnyQuery) -> int:
        """``num(q, DB)`` from the paper's cost model (Definition 2.3)."""
        if isinstance(query, ConjunctiveQuery):
            return len(self.match_conjunctive(query.predicates))
        if query.is_keyword:
            return len(self._keyword_index.get(normalize(query.value), ()))
        return len(self._equality_index.get(query.as_attribute_value(), ()))

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, record_ids: Sequence[int]) -> List[Record]:
        """Project records onto the result schema ``Ar``.

        Attributes flagged ``displayed=False`` are stripped, modelling a
        source that accepts queries on a column it never shows.
        """
        displayed = set(self.schema.displayed)
        projected = []
        for record_id in record_ids:
            record = self._records[record_id]
            if len(displayed) == len(self.schema):
                projected.append(record)
                continue
            fields = {
                attribute: values
                for attribute, values in record.fields.items()
                if attribute in displayed
            }
            projected.append(Record(record.record_id, fields))
        return projected
