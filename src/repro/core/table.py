"""The universal relational table backing a simulated web source.

The paper joins each source's data "into one single universal table" and
makes multi-valued columns full-text searchable (Section 5).  A
:class:`RelationalTable` stores :class:`~repro.core.records.Record` rows
and maintains two inverted indexes so that both structured equality
queries and keyword queries run in time proportional to their result
size:

- ``(attribute, value) → record ids`` for equality predicates, and
- ``value → record ids`` for keyword queries.

Record ids returned by matching methods are always sorted ascending so
results are deterministic and pagination is stable.  Posting lists are
kept sorted *at insertion time*: bulk loading assigns ascending record
ids, so the common case is an O(1) append, and the matching methods
return plain copies instead of re-sorting on every call — the latter
dominated crawl profiles, since every page request of every query hits
a posting list.

Both indexes are id-indexed lists behind a
:class:`~repro.core.intern.ValueInterner` /
:class:`~repro.core.intern.StringInterner`: each key is hashed once at
insert (or lookup) to resolve its dense id, and conjunctive matching
intersects sorted posting arrays with a two-pointer merge instead of
building sets.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.errors import SchemaError
from repro.core.intern import StringInterner, ValueInterner, intersect_sorted
from repro.core.query import AnyQuery, ConjunctiveQuery
from repro.core.records import Record
from repro.core.schema import Schema
from repro.core.values import AttributeValue, normalize


def _insert_posting(postings: List[int], record_id: int) -> None:
    """Insert ``record_id`` keeping ``postings`` sorted ascending.

    Inserts are effectively append-ordered (bulk loaders hand out
    ascending ids), so the tail check makes the common case O(1); the
    bisect fallback keeps out-of-order inserts correct.
    """
    if not postings or record_id > postings[-1]:
        postings.append(record_id)
    else:
        insort(postings, record_id)


class RelationalTable:
    """An indexed, append-only universal table.

    Parameters
    ----------
    schema:
        Column definitions including queriable / displayed flags.
    name:
        Human-readable source name used in reports ("ebay", "imdb", ...).
    """

    def __init__(self, schema: Schema, name: str = "db") -> None:
        self.schema = schema
        self.name = name
        self._records: Dict[int, Record] = {}
        self._value_interner = ValueInterner()
        self._keyword_interner = StringInterner()
        # Posting lists indexed by interned id, grown in lock-step with
        # the interners; only insert() assigns ids, so every id has a
        # non-empty posting list (the table is append-only).
        self._equality_postings: List[List[int]] = []
        self._keyword_postings: List[List[int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, record: Record) -> None:
        """Insert one record, updating both inverted indexes.

        Raises
        ------
        SchemaError
            If the record id already exists or the record references an
            attribute the schema does not define.
        """
        if record.record_id in self._records:
            raise SchemaError(f"duplicate record id {record.record_id}")
        for attribute in record.fields:
            if attribute not in self.schema:
                raise SchemaError(
                    f"record {record.record_id} uses unknown attribute "
                    f"{attribute!r}"
                )
        self._records[record.record_id] = record
        equality = self._equality_postings
        keywords = self._keyword_postings
        seen_keywords: set[int] = set()
        for pair in record.attribute_values():
            vid = self._value_interner.intern(pair)
            if vid == len(equality):
                equality.append([])
            _insert_posting(equality[vid], record.record_id)
            tid = self._keyword_interner.intern(pair.value)
            if tid not in seen_keywords:
                seen_keywords.add(tid)
                if tid == len(keywords):
                    keywords.append([])
                _insert_posting(keywords[tid], record.record_id)

    def insert_rows(self, rows: Iterable[dict], start_id: int = 0) -> None:
        """Bulk-insert raw ``attribute → value(s)`` dictionaries."""
        next_id = start_id
        while next_id in self._records:
            next_id += 1
        for row in rows:
            self.insert(Record.build(next_id, self.schema, **row))
            next_id += 1
            while next_id in self._records:
                next_id += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def get(self, record_id: int) -> Record:
        return self._records[record_id]

    def record_ids(self) -> List[int]:
        """All record ids, ascending."""
        return sorted(self._records)

    def distinct_values(self, attribute: Optional[str] = None) -> List[AttributeValue]:
        """The distinct attribute-value set (DAV), optionally per attribute.

        This is the vertex set of the table's attribute-value graph.
        """
        values = self._value_interner.values()
        if attribute is None:
            return sorted(values)
        key = attribute.strip().lower()
        return sorted(p for p in values if p.attribute == key)

    def num_distinct_values(self) -> int:
        """``|DAV|`` — the AVG's vertex count (Table 2's right column)."""
        return len(self._value_interner)

    def frequency(self, pair: AttributeValue) -> int:
        """Number of records containing ``pair``."""
        vid = self._value_interner.lookup(pair)
        return 0 if vid is None else len(self._equality_postings[vid])

    # ------------------------------------------------------------------
    # Interned ids — for callers keying caches on this table's values
    # ------------------------------------------------------------------
    def value_id(self, pair: AttributeValue) -> Optional[int]:
        """Dense id of an attribute value, or None if absent."""
        return self._value_interner.lookup(pair)

    def keyword_id(self, value: str) -> Optional[int]:
        """Dense id of a (normalized) keyword token, or None if absent."""
        return self._keyword_interner.lookup(normalize(value))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match_equality(self, attribute: str, value: str) -> List[int]:
        """Record ids matching ``attribute = value``, sorted ascending."""
        vid = self._value_interner.lookup(AttributeValue(attribute, value))
        return [] if vid is None else list(self._equality_postings[vid])

    def match_keyword(self, value: str) -> List[int]:
        """Record ids holding ``value`` under *any* attribute, sorted."""
        tid = self._keyword_interner.lookup(normalize(value))
        return [] if tid is None else list(self._keyword_postings[tid])

    def match_conjunctive(self, predicates: Sequence[AttributeValue]) -> List[int]:
        """Record ids satisfying *all* predicates, sorted ascending.

        Evaluated by merging sorted posting arrays smallest-first, so
        the cost is proportional to the most selective predicate.
        """
        lookup = self._value_interner.lookup
        postings = []
        for pair in predicates:
            vid = lookup(pair)
            if vid is None:
                return []
            postings.append(self._equality_postings[vid])
        if not postings:
            return []
        postings.sort(key=len)
        result: Sequence[int] = postings[0]
        for posting in postings[1:]:
            result = intersect_sorted(result, posting)
            if not result:
                break
        return list(result)

    def match(self, query: AnyQuery) -> List[int]:
        """Dispatch any query kind to the right index path."""
        if isinstance(query, ConjunctiveQuery):
            return self.match_conjunctive(query.predicates)
        if query.is_keyword:
            return self.match_keyword(query.value)
        assert query.attribute is not None
        return self.match_equality(query.attribute, query.value)

    def count(self, query: AnyQuery) -> int:
        """``num(q, DB)`` from the paper's cost model (Definition 2.3)."""
        if isinstance(query, ConjunctiveQuery):
            return len(self.match_conjunctive(query.predicates))
        if query.is_keyword:
            tid = self._keyword_interner.lookup(normalize(query.value))
            return 0 if tid is None else len(self._keyword_postings[tid])
        vid = self._value_interner.lookup(query.as_attribute_value())
        return 0 if vid is None else len(self._equality_postings[vid])

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, record_ids: Sequence[int]) -> List[Record]:
        """Project records onto the result schema ``Ar``.

        Attributes flagged ``displayed=False`` are stripped, modelling a
        source that accepts queries on a column it never shows.
        """
        displayed = set(self.schema.displayed)
        projected = []
        for record_id in record_ids:
            record = self._records[record_id]
            if len(displayed) == len(self.schema):
                projected.append(record)
                continue
            fields = {
                attribute: values
                for attribute, values in record.fields.items()
                if attribute in displayed
            }
            projected.append(Record(record.record_id, fields))
        return projected
