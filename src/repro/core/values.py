"""Attribute values — the vertices of the attribute-value graph.

The paper (Definition 2.1) models a structured web database as a set of
*distinct attribute values*: each pair ``(attribute, value)`` such as
``("Actors", "Hanks, Tom")`` is one node of the AVG and one candidate
query.  This module defines that pair as a small immutable value type
plus the normalization applied to raw strings before comparison, so that
``"Tom  Hanks "`` and ``"tom hanks"`` collapse onto the same vertex the
way a case-insensitive SQL collation (as used in the paper's SQL Server
setup) would.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

_WHITESPACE = re.compile(r"\s+")


def normalize(raw: str) -> str:
    """Normalize a raw attribute value for matching.

    Lower-cases, strips, and collapses internal whitespace.  The empty
    string stays empty; callers decide whether to reject it (records do,
    see :class:`repro.core.records.Record`).

    >>> normalize("  Hanks,   Tom ")
    'hanks, tom'
    """
    return _WHITESPACE.sub(" ", raw.strip().lower())


@dataclass(frozen=True, order=True)
class AttributeValue:
    """One ``(attribute, value)`` pair — a vertex of the AVG.

    ``value`` is stored normalized; the constructor applies
    :func:`normalize` so equal-after-normalization inputs compare equal.

    >>> AttributeValue("actor", "Hanks,  Tom") == AttributeValue("actor", "hanks, tom")
    True
    """

    attribute: str
    value: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "attribute", self.attribute.strip().lower())
        object.__setattr__(self, "value", normalize(self.value))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.attribute}={self.value!r}"


def distinct_values(pairs: Iterable[AttributeValue]) -> set[AttributeValue]:
    """Return the distinct attribute-value set (DAV) of an iterable.

    Purely a readability helper: ``set(pairs)`` with a domain name.
    """
    return set(pairs)
