"""The query–harvest–decompose crawler: engine, prober, extractor, DB_local."""

from repro.crawler.abortion import (
    AbortionPolicy,
    CombinedAbort,
    DuplicateFractionAbort,
    NeverAbort,
    PageCapAbort,
    PageProgress,
    TotalCountAbort,
)
from repro.crawler.context import CrawlerContext
from repro.crawler.engine import CrawlerEngine, CrawlResult, normalize_seed, run_crawl
from repro.crawler.extractor import Extraction, ResultExtractor
from repro.crawler.frontier import (
    FifoFrontier,
    Frontier,
    InternedPriorityFrontier,
    LifoFrontier,
    PriorityFrontier,
    RandomFrontier,
)
from repro.crawler.localdb import LocalDatabase
from repro.crawler.metrics import CoveragePoint, CrawlHistory
from repro.crawler.prober import DatabaseProber, QueryOutcome
from repro.crawler.reference import ReferenceLocalDatabase

__all__ = [
    "AbortionPolicy",
    "CombinedAbort",
    "CoveragePoint",
    "CrawlHistory",
    "CrawlResult",
    "CrawlerContext",
    "CrawlerEngine",
    "DatabaseProber",
    "DuplicateFractionAbort",
    "Extraction",
    "FifoFrontier",
    "Frontier",
    "InternedPriorityFrontier",
    "LifoFrontier",
    "LocalDatabase",
    "NeverAbort",
    "PageCapAbort",
    "PageProgress",
    "PriorityFrontier",
    "QueryOutcome",
    "RandomFrontier",
    "ReferenceLocalDatabase",
    "ResultExtractor",
    "TotalCountAbort",
    "normalize_seed",
    "run_crawl",
]
