"""Heuristic query abortion (Section 3.4).

Fetching every page of a query whose remaining matches are mostly
already harvested wastes communication rounds.  The paper sketches two
heuristics:

1. when the source reports the total match count on the first page, the
   crawler can compute exactly how many *new* records the remaining
   pages can possibly contain and abort when the expected harvest rate
   drops below a threshold; and
2. when no total is reported, abort after observing several pages whose
   records are predominantly duplicates.

Both are implemented here as small policy objects consulted by the
prober between page fetches.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.server.pagination import ResultPage


@dataclass
class PageProgress:
    """Running tallies the prober maintains while paging through a query.

    Besides the cumulative totals, each page's ``(records, new)`` tally
    is kept in ``page_tallies`` so window-based heuristics can score
    just the trailing pages (a query fetches at most
    ``ceil(result_limit / k)`` pages, so the list stays small).
    """

    pages_fetched: int = 0
    records_seen: int = 0
    new_records: int = 0
    page_tallies: List[Tuple[int, int]] = field(default_factory=list)

    def update(self, page_records: int, new_records: int) -> None:
        self.pages_fetched += 1
        self.records_seen += page_records
        self.new_records += new_records
        self.page_tallies.append((page_records, new_records))

    @property
    def duplicate_fraction(self) -> float:
        if self.records_seen == 0:
            return 0.0
        return 1.0 - self.new_records / self.records_seen

    def window_duplicate_fraction(self, pages: int) -> float:
        """Duplicate fraction over the trailing ``pages`` page tallies."""
        if pages < 1:
            return self.duplicate_fraction
        window = self.page_tallies[-pages:]
        records = sum(tally[0] for tally in window)
        if records == 0:
            return 0.0
        return 1.0 - sum(tally[1] for tally in window) / records


class AbortionPolicy(ABC):
    """Decides whether to keep fetching a query's remaining pages."""

    @abstractmethod
    def should_abort(
        self, page: ResultPage, progress: PageProgress, known_matches: int
    ) -> bool:
        """Return True to stop fetching further pages of this query.

        Parameters
        ----------
        page:
            The page just fetched (carries total counts if reported).
        progress:
            Tally over the pages of this query fetched so far.
        known_matches:
            ``num(q, DB_local)`` — local records matching the query,
            i.e. records guaranteed to be duplicates if returned again.
        """


class NeverAbort(AbortionPolicy):
    """Fetch every accessible page (the default, used by Figures 3-6)."""

    def should_abort(
        self, page: ResultPage, progress: PageProgress, known_matches: int
    ) -> bool:
        return False


@dataclass
class TotalCountAbort(AbortionPolicy):
    """Heuristic 1 — exact upper bound from the reported total.

    After each page, at most ``accessible - records_seen`` records
    remain, of which at least ``known_matches - duplicates_seen`` are
    already in ``DB_local`` (every local match will eventually reappear
    in this query's full result).  Abort when the optimistic harvest
    rate of the *remaining* pages falls below ``min_harvest_rate``
    records-per-page.
    """

    min_harvest_rate: float = 1.0

    def should_abort(
        self, page: ResultPage, progress: PageProgress, known_matches: int
    ) -> bool:
        if page.total_matches is None:
            return False  # heuristic 2's territory
        remaining_records = page.accessible_matches - progress.records_seen
        if remaining_records <= 0:
            return False  # pagination ends naturally
        # Remaining rounds follow from the server's page size k, which
        # every page carries; inferring k from len(page.records) would
        # let a short page inflate the page count and skew the decision.
        page_size = max(page.page_size or len(page.records), 1)
        remaining_pages = math.ceil(remaining_records / page_size)
        duplicates_seen = progress.records_seen - progress.new_records
        guaranteed_duplicates = max(known_matches - duplicates_seen, 0)
        max_new = max(remaining_records - guaranteed_duplicates, 0)
        return max_new / remaining_pages < self.min_harvest_rate


@dataclass
class DuplicateFractionAbort(AbortionPolicy):
    """Heuristic 2 — abort on duplicate-heavy recent pages.

    Once at least ``probe_pages`` pages have been fetched, aborts
    whenever the duplicate fraction observed over the *trailing*
    ``probe_pages`` window exceeds ``max_duplicate_fraction``.  The
    window matters in both directions: scored cumulatively, a
    duplicate-heavy early probe would be diluted by later fresh pages
    (never aborting a query that went dry), and a fresh head would mask
    a tail that has gone all-duplicate.
    """

    max_duplicate_fraction: float = 0.9
    probe_pages: int = 2

    def should_abort(
        self, page: ResultPage, progress: PageProgress, known_matches: int
    ) -> bool:
        if progress.pages_fetched < self.probe_pages:
            return False
        return (
            progress.window_duplicate_fraction(self.probe_pages)
            > self.max_duplicate_fraction
        )


@dataclass
class PageCapAbort(AbortionPolicy):
    """Hard cap on pages fetched per query, regardless of productivity.

    Not one of the paper's heuristics — this is a *budget* device: with
    ``max_pages=c`` (and no retries), one engine step charges at most
    ``c`` communication rounds, which is exactly the per-step bound the
    warehouse/fleet schedulers need to guarantee a shared round budget
    is never exceeded (their ``max_step_rounds``).  Compose it with a
    paper heuristic via :class:`CombinedAbort`-style wrapping when both
    behaviours are wanted; on its own it never aborts *early*, only at
    the cap.
    """

    max_pages: int = 1

    def __post_init__(self) -> None:
        if self.max_pages < 1:
            raise ValueError(f"max_pages must be >= 1, got {self.max_pages}")

    def should_abort(
        self, page: ResultPage, progress: PageProgress, known_matches: int
    ) -> bool:
        return progress.pages_fetched >= self.max_pages


@dataclass
class CombinedAbort(AbortionPolicy):
    """Use heuristic 1 when totals are reported, else heuristic 2."""

    total_count: TotalCountAbort = field(default_factory=TotalCountAbort)
    duplicate_fraction: DuplicateFractionAbort = field(
        default_factory=DuplicateFractionAbort
    )

    def should_abort(
        self, page: ResultPage, progress: PageProgress, known_matches: int
    ) -> bool:
        if page.total_matches is not None:
            return self.total_count.should_abort(page, progress, known_matches)
        return self.duplicate_fraction.should_abort(page, progress, known_matches)
