"""The view of crawler state a query-selection policy may consult.

Section 2.5 notes the crawler "lacks the big picture of the whole graph
and can only make a decision ... based on its partial knowledge about
the target database".  :class:`CrawlerContext` is exactly that partial
knowledge: ``DB_local`` with its statistics, the query history
``L_queried``, the interface capabilities, and the cost-model constant
``k``.  Policies receive it once via ``bind`` and must not reach around
it to the server.

``coverage_oracle`` is the one deliberate exception: the controlled
experiments (like the paper's) trigger the MMMI switch at a true
coverage of 85%, which only the experiment harness can measure.  It is
None in oracle-free runs, and policies must degrade gracefully without
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.core.query import Query
from repro.core.values import AttributeValue
from repro.crawler.localdb import LocalDatabase
from repro.server.interface import QueryInterface


@dataclass
class CrawlerContext:
    """Shared crawler state handed to policies at bind time."""

    local_db: LocalDatabase
    interface: QueryInterface
    page_size: int
    rng: random.Random
    lqueried: List[Query] = field(default_factory=list)
    queried_values: Set[AttributeValue] = field(default_factory=set)
    coverage_oracle: Optional[Callable[[], float]] = None

    def value_to_query(self, value: AttributeValue) -> Optional[Query]:
        """Formulate the query that visits ``value`` on this interface.

        Prefers the structured form; falls back to a keyword query when
        the attribute is not queriable but a search box exists.  Returns
        None when the interface can express neither.
        """
        if value.attribute in self.interface.queriable_attributes:
            return Query.equality(value.attribute, value.value)
        if self.interface.supports_keyword:
            return Query.keyword(value.value)
        return None

    def estimated_coverage(self) -> Optional[float]:
        """True coverage if an oracle is installed, else None."""
        if self.coverage_oracle is None:
            return None
        return self.coverage_oracle()
