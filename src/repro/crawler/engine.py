"""The crawler engine — the "query–harvest–decompose" loop.

:class:`CrawlerEngine` wires together the components of Section 2.5:
the Query Selector (any :class:`~repro.policies.base.QuerySelector`),
the Database Prober, the Result Extractor, and ``DB_local``.  One call
to :meth:`CrawlerEngine.crawl` runs the loop from seed values until a
stopping criterion fires and returns a :class:`CrawlResult` carrying the
full coverage-versus-cost history the experiments plot.

Stopping criteria (any combination; first to fire wins):

- the frontier is exhausted (always on),
- ``max_rounds`` — a communication budget (Figure 5 uses 10,000),
- ``max_queries`` — a query budget,
- ``target_coverage`` — measured against the source's true size; this
  mirrors the paper's controlled experiments, which report the cost of
  reaching 10%…90% coverage and therefore observe true coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.errors import CrawlError
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.values import AttributeValue
from repro.crawler.abortion import AbortionPolicy
from repro.crawler.context import CrawlerContext
from repro.crawler.extractor import ResultExtractor
from repro.crawler.localdb import LocalDatabase
from repro.crawler.metrics import CrawlHistory
from repro.crawler.prober import DatabaseProber, QueryOutcome
from repro.policies.base import QuerySelector
from repro.server.webdb import SimulatedWebDatabase

Seed = Union[AttributeValue, Tuple[str, str], str]


@dataclass
class CrawlResult:
    """Outcome of one crawl."""

    policy: str
    communication_rounds: int
    queries_issued: int
    records_harvested: int
    coverage: float
    history: CrawlHistory
    aborted_queries: int = 0
    rejected_queries: int = 0
    failed_queries: int = 0
    stopped_by: str = "frontier-exhausted"
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrawlResult({self.policy}: {self.records_harvested} records, "
            f"{self.coverage:.1%} coverage, {self.communication_rounds} rounds, "
            f"{self.queries_issued} queries, stopped by {self.stopped_by})"
        )


def normalize_seed(seed: Seed) -> AttributeValue:
    """Accept ``AttributeValue``, ``(attribute, value)`` or bare string seeds.

    Bare strings become keyword-style seeds under the pseudo-attribute
    ``"*"``; the engine will only be able to issue them on interfaces
    with a search box.
    """
    if isinstance(seed, AttributeValue):
        return seed
    if isinstance(seed, tuple):
        attribute, value = seed
        return AttributeValue(attribute, value)
    return AttributeValue("*", seed)


class CrawlerEngine:
    """Drives one policy against one simulated web source.

    Parameters
    ----------
    server:
        The target source.
    selector:
        The query-selection policy (consumed: do not reuse a selector
        across crawls; build a fresh one per run).
    seed:
        RNG seed for the policy's random choices.
    abortion:
        Optional page-fetch abortion policy (Section 3.4).
    use_xml:
        Exercise the XML wire format end to end.
    keep_outcomes:
        Retain per-query outcomes on the result (memory-heavy; off by
        default).
    """

    def __init__(
        self,
        server: SimulatedWebDatabase,
        selector: QuerySelector,
        seed: Optional[int] = None,
        abortion: Optional[AbortionPolicy] = None,
        use_xml: bool = False,
        keep_outcomes: bool = False,
        max_retries: int = 0,
    ) -> None:
        self.server = server
        self.selector = selector
        self.rng = random.Random(seed)
        self.local_db = LocalDatabase(
            track_cooccurrence=selector.requires_cooccurrence
        )
        self.extractor = ResultExtractor(server.interface)
        self.prober = DatabaseProber(
            server,
            self.extractor,
            self.local_db,
            abortion,
            use_xml,
            max_retries=max_retries,
        )
        self.keep_outcomes = keep_outcomes
        self.context = CrawlerContext(
            local_db=self.local_db,
            interface=server.interface,
            page_size=server.page_size,
            rng=self.rng,
            coverage_oracle=self._true_coverage,
        )
        selector.bind(self.context)
        self._issued: set[AnyQuery] = set()
        self._started = False
        self._exhausted = False
        self._history = CrawlHistory()
        self._aborted = 0
        self._rejected = 0
        self._failed = 0
        self._outcomes: List[QueryOutcome] = []

    # ------------------------------------------------------------------
    # Incremental API — prepare / step / result
    # ------------------------------------------------------------------
    def prepare(self, seeds: Iterable[Seed], allow_empty_seeds: bool = False) -> None:
        """Install the seed values and arm the engine (idempotent guard).

        ``allow_empty_seeds`` permits starting with no seed values for
        selectors that can formulate queries on their own — the DM
        selector's domain table, or a clique selector pre-seeded with
        combinations.
        """
        if self._started:
            raise CrawlError("engines are single-use; build a new one per crawl")
        self._started = True
        seed_values = [normalize_seed(s) for s in seeds]
        if not seed_values and not allow_empty_seeds:
            raise CrawlError("at least one seed value is required")
        for value in seed_values:
            self.selector.add_candidate(value)
        self._history.append(0, 0)

    def step(self) -> Optional[QueryOutcome]:
        """Execute the next query end to end; None when the frontier is dry.

        One step = one query–harvest–decompose iteration: ask the
        selector, formulate/validate the wire query, page through the
        results (with abortion/retries as configured), feed discoveries
        back.  Schedulers interleave steps across several engines to
        share a budget between sources.
        """
        if not self._started:
            raise CrawlError("call prepare() (or crawl()) before step()")
        while True:
            proposal = self.selector.next_query()
            if proposal is None:
                self._exhausted = True
                return None
            if isinstance(proposal, (Query, ConjunctiveQuery)):
                # Policies for richer interfaces (e.g. multi-attribute
                # sources) formulate whole queries themselves.
                value = None
                query: Optional[AnyQuery] = proposal
            else:
                value = proposal
                query = self.context.value_to_query(value)
            if query is None or query in self._issued:
                # Inexpressible on this interface, or the same wire query
                # was already sent for an equal-valued candidate.
                continue

            outcome = self.prober.execute(query)
            if outcome.rejected:
                self._rejected += 1
                continue

            self._issued.add(query)
            self.context.lqueried.append(query)
            if value is not None:
                self.context.queried_values.add(value)
            if outcome.aborted:
                self._aborted += 1
            if outcome.failed:
                self._failed += 1
            for candidate in outcome.candidate_values:
                if candidate not in self.context.queried_values:
                    self.selector.add_candidate(candidate)
            self.selector.observe_outcome(outcome)
            if self.keep_outcomes:
                self._outcomes.append(outcome)
            self._history.append(self.server.rounds, len(self.local_db))
            return outcome

    def result(self, stopped_by: Optional[str] = None) -> CrawlResult:
        """Snapshot the crawl's current totals as a :class:`CrawlResult`."""
        if stopped_by is None:
            stopped_by = "frontier-exhausted" if self._exhausted else "in-progress"
        return CrawlResult(
            policy=self.selector.name,
            communication_rounds=self.server.rounds,
            queries_issued=len(self.context.lqueried),
            records_harvested=len(self.local_db),
            coverage=self._true_coverage(),
            history=self._history,
            aborted_queries=self._aborted,
            rejected_queries=self._rejected,
            failed_queries=self._failed,
            stopped_by=stopped_by,
            outcomes=self._outcomes,
        )

    # ------------------------------------------------------------------
    # The closed loop
    # ------------------------------------------------------------------
    def crawl(
        self,
        seeds: Iterable[Seed],
        max_rounds: Optional[int] = None,
        max_queries: Optional[int] = None,
        target_coverage: Optional[float] = None,
        allow_empty_seeds: bool = False,
    ) -> CrawlResult:
        """Run the query–harvest–decompose loop to a stopping criterion."""
        self.prepare(seeds, allow_empty_seeds=allow_empty_seeds)
        stopped_by = "frontier-exhausted"
        while True:
            if max_rounds is not None and self.server.rounds >= max_rounds:
                stopped_by = "max-rounds"
                break
            if max_queries is not None and len(self.context.lqueried) >= max_queries:
                stopped_by = "max-queries"
                break
            if (
                target_coverage is not None
                and self._true_coverage() >= target_coverage
            ):
                stopped_by = "target-coverage"
                break
            if self.step() is None:
                break
        return self.result(stopped_by)

    # ------------------------------------------------------------------
    def _true_coverage(self) -> float:
        size = self.server.truth_size()
        if size == 0:
            return 1.0
        return len(self.local_db) / size


def run_crawl(
    server: SimulatedWebDatabase,
    selector: QuerySelector,
    seeds: Sequence[Seed],
    seed: Optional[int] = None,
    **crawl_kwargs,
) -> CrawlResult:
    """One-shot convenience: build an engine and crawl."""
    return CrawlerEngine(server, selector, seed=seed).crawl(seeds, **crawl_kwargs)
