"""The crawler engine — the "query–harvest–decompose" loop.

:class:`CrawlerEngine` wires together the components of Section 2.5:
the Query Selector (any :class:`~repro.policies.base.QuerySelector`),
the Database Prober, the Result Extractor, and ``DB_local``.  One call
to :meth:`CrawlerEngine.crawl` runs the loop from seed values until a
stopping criterion fires and returns a :class:`CrawlResult` carrying the
full coverage-versus-cost history the experiments plot.

Stopping criteria (any combination; first to fire wins):

- the frontier is exhausted (always on),
- ``max_rounds`` — a communication budget (Figure 5 uses 10,000),
- ``max_queries`` — a query budget,
- ``target_coverage`` — measured against the source's true size; this
  mirrors the paper's controlled experiments, which report the cost of
  reaching 10%…90% coverage and therefore observe true coverage.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.errors import CrawlError, UnsupportedQueryError
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.values import AttributeValue
from repro.crawler.abortion import AbortionPolicy
from repro.crawler.context import CrawlerContext
from repro.crawler.extractor import ResultExtractor
from repro.crawler.localdb import LocalDatabase
from repro.crawler.metrics import CrawlHistory
from repro.crawler.prober import DatabaseProber, QueryOutcome
from repro.policies.base import QuerySelector
from repro.runtime.events import (
    CrawlStopped,
    EventBus,
    PhaseCompleted,
    RecordsHarvested,
    StepStarted,
)
from repro.server.flaky import ExponentialBackoff
from repro.server.webdb import SimulatedWebDatabase

Seed = Union[AttributeValue, Tuple[str, str], str]

#: Decorrelates the backoff-jitter stream from the policy stream when
#: both derive from the same user-facing seed.
_BACKOFF_SEED_SALT = 0x9E3779B9


@dataclass
class CrawlResult:
    """Outcome of one crawl."""

    policy: str
    communication_rounds: int
    queries_issued: int
    records_harvested: int
    coverage: float
    history: CrawlHistory
    aborted_queries: int = 0
    rejected_queries: int = 0
    failed_queries: int = 0
    stopped_by: str = "frontier-exhausted"
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrawlResult({self.policy}: {self.records_harvested} records, "
            f"{self.coverage:.1%} coverage, {self.communication_rounds} rounds, "
            f"{self.queries_issued} queries, stopped by {self.stopped_by})"
        )


def normalize_seed(seed: Seed) -> AttributeValue:
    """Accept ``AttributeValue``, ``(attribute, value)`` or bare string seeds.

    Bare strings become keyword-style seeds under the pseudo-attribute
    ``"*"``; the engine will only be able to issue them on interfaces
    with a search box.
    """
    if isinstance(seed, AttributeValue):
        return seed
    if isinstance(seed, tuple):
        attribute, value = seed
        return AttributeValue(attribute, value)
    return AttributeValue("*", seed)


class CrawlerEngine:
    """Drives one policy against one simulated web source.

    Parameters
    ----------
    server:
        The target source.
    selector:
        The query-selection policy (consumed: do not reuse a selector
        across crawls; build a fresh one per run).
    seed:
        RNG seed for the policy's random choices.
    abortion:
        Optional page-fetch abortion policy (Section 3.4).
    use_xml:
        Exercise the XML wire format end to end.
    keep_outcomes:
        Retain per-query outcomes on the result (memory-heavy; off by
        default).
    bus:
        Event bus every layer of this crawl announces on; defaults to a
        silent bus (see :mod:`repro.runtime.events`).
    backoff:
        Retry backoff schedule, forwarded to the prober (only relevant
        with ``max_retries > 0``).
    local_db:
        Override the ``DB_local`` implementation.  Defaults to the
        interned :class:`~repro.crawler.localdb.LocalDatabase`; the
        hot-path benchmark passes
        :class:`~repro.crawler.reference.ReferenceLocalDatabase` to
        measure against the pre-interning behaviour (selectors detect
        the missing interner and fall back to value-keyed scoring).
        Must be freshly constructed with ``track_cooccurrence``
        matching the selector's ``requires_cooccurrence``.
    """

    def __init__(
        self,
        server: SimulatedWebDatabase,
        selector: QuerySelector,
        seed: Optional[int] = None,
        abortion: Optional[AbortionPolicy] = None,
        use_xml: bool = False,
        keep_outcomes: bool = False,
        max_retries: int = 0,
        bus: Optional[EventBus] = None,
        backoff: Optional[ExponentialBackoff] = None,
        local_db=None,
    ) -> None:
        self.server = server
        self.selector = selector
        self.rng = random.Random(seed)
        self.bus = bus or EventBus()
        self.backoff = backoff
        # Separate stream for retry jitter: backoff draws must not
        # perturb the policy's selection randomness.
        self.backoff_rng = random.Random(
            seed ^ _BACKOFF_SEED_SALT if seed is not None else None
        )
        self.local_db = (
            local_db
            if local_db is not None
            else LocalDatabase(track_cooccurrence=selector.requires_cooccurrence)
        )
        self.extractor = ResultExtractor(
            server.interface,
            interner=getattr(self.local_db, "interner", None),
        )
        self.prober = DatabaseProber(
            server,
            self.extractor,
            self.local_db,
            abortion,
            use_xml,
            max_retries=max_retries,
            bus=self.bus,
            backoff=backoff,
            retry_rng=self.backoff_rng,
            policy=selector.name,
        )
        self.keep_outcomes = keep_outcomes
        self.context = CrawlerContext(
            local_db=self.local_db,
            interface=server.interface,
            page_size=server.page_size,
            rng=self.rng,
            coverage_oracle=self._true_coverage,
        )
        selector.bind(self.context)
        self._issued: set[AnyQuery] = set()
        # Dense-id mirror of context.queried_values (interned databases
        # only): lets the candidate filter compare ints instead of
        # hashing AttributeValues.
        self._queried_ids: Optional[set[int]] = (
            set() if hasattr(self.local_db, "interner") else None
        )
        self._started = False
        self._exhausted = False
        self._history = CrawlHistory()
        self._aborted = 0
        self._rejected = 0
        self._failed = 0
        self._steps = 0
        self._outcomes: List[QueryOutcome] = []

    # ------------------------------------------------------------------
    # Incremental API — prepare / step / result
    # ------------------------------------------------------------------
    def prepare(self, seeds: Iterable[Seed], allow_empty_seeds: bool = False) -> None:
        """Install the seed values and arm the engine (idempotent guard).

        ``allow_empty_seeds`` permits starting with no seed values for
        selectors that can formulate queries on their own — the DM
        selector's domain table, or a clique selector pre-seeded with
        combinations.
        """
        if self._started:
            raise CrawlError("engines are single-use; build a new one per crawl")
        self._started = True
        seed_values = [normalize_seed(s) for s in seeds]
        if not seed_values and not allow_empty_seeds:
            raise CrawlError("at least one seed value is required")
        for value in seed_values:
            self.selector.add_candidate(value)
        self._history.append(0, 0)

    def step(self) -> Optional[QueryOutcome]:
        """Execute the next query end to end; None when the frontier is dry.

        One step = one query–harvest–decompose iteration: ask the
        selector, formulate/validate the wire query, page through the
        results (with abortion/retries as configured), feed discoveries
        back.  Schedulers interleave steps across several engines to
        share a budget between sources.
        """
        if not self._started:
            raise CrawlError("call prepare() (or crawl()) before step()")
        tracing = self.bus.has_tracers
        if tracing:
            step_no = self._steps + 1
            policy = self.selector.name
            self.bus.emit(StepStarted(step=step_no), policy=policy)
            if self.selector._trace_emit is None:
                # Lazily armed on the first traced live step so journal
                # replay (which also drives next_query/observe_outcome)
                # never emits phases for work the crawl already paid for.
                self.selector.set_trace_emitter(self._emit_selector_phase)
        while True:
            if tracing:
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
            proposal = self.selector.next_query()
            if tracing:
                self.bus.emit(
                    PhaseCompleted(
                        step=step_no,
                        phase="select",
                        seconds=time.perf_counter() - wall0,
                        cpu_seconds=time.process_time() - cpu0,
                    ),
                    policy=policy,
                )
            if proposal is None:
                self._exhausted = True
                return None
            value, query = self._formulate(proposal)
            if query is None or query in self._issued:
                # Inexpressible on this interface, or the same wire query
                # was already sent for an equal-valued candidate.
                continue

            outcome = self.prober.execute(query)
            if outcome.rejected:
                self._rejected += 1
                continue

            if tracing:
                if outcome.pages_fetched:
                    detail = {"pages": outcome.pages_fetched}
                    if outcome.total_matches is not None:
                        detail["matches"] = outcome.total_matches
                    self.bus.emit(
                        PhaseCompleted(
                            step=step_no,
                            phase="extract",
                            seconds=self.prober.last_extract_wall,
                            cpu_seconds=self.prober.last_extract_cpu,
                            detail=detail,
                        ),
                        policy=policy,
                    )
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
            self._apply_outcome(value, query, outcome, self.server.rounds)
            if tracing:
                self.bus.emit(
                    PhaseCompleted(
                        step=step_no,
                        phase="decompose",
                        seconds=time.perf_counter() - wall0,
                        cpu_seconds=time.process_time() - cpu0,
                        detail={
                            "candidates": len(outcome.candidate_values),
                            "new_records": len(outcome.new_records),
                        },
                    ),
                    policy=policy,
                )
            if self.bus.has_sinks:
                self.bus.emit(
                    RecordsHarvested(
                        query=query,
                        step=self._steps,
                        new_records=len(outcome.new_records),
                        pages_fetched=outcome.pages_fetched,
                        records_total=len(self.local_db),
                        rounds=self.server.rounds,
                    ),
                    policy=self.selector.name,
                )
            return outcome

    def _emit_selector_phase(
        self,
        phase: str,
        seconds: float,
        cpu_seconds: float,
        detail: Optional[dict] = None,
    ) -> None:
        """Selector-internal phase hook (see QuerySelector.set_trace_emitter).

        ``_steps`` is only incremented at the very end of
        ``_apply_outcome``, so ``_steps + 1`` names the in-flight step
        everywhere a selector can run — scoring inside ``next_query``
        and frontier refresh inside ``observe_outcome`` alike.
        """
        self.bus.emit(
            PhaseCompleted(
                step=self._steps + 1,
                phase=phase,
                seconds=seconds,
                cpu_seconds=cpu_seconds,
                detail=detail or {},
            ),
            policy=self.selector.name,
        )

    def _formulate(
        self, proposal
    ) -> Tuple[Optional[AttributeValue], Optional[AnyQuery]]:
        """Turn a selector proposal into the wire query it implies."""
        if isinstance(proposal, (Query, ConjunctiveQuery)):
            # Policies for richer interfaces (e.g. multi-attribute
            # sources) formulate whole queries themselves.
            return None, proposal
        return proposal, self.context.value_to_query(proposal)

    def _apply_outcome(
        self,
        value: Optional[AttributeValue],
        query: AnyQuery,
        outcome: QueryOutcome,
        rounds: int,
    ) -> None:
        """Fold one executed query's outcome into the crawl state.

        Shared by the live step and journal replay; ``rounds`` is the
        server's round counter after the query (replay passes the
        journaled value instead of reading the live server).
        """
        self._issued.add(query)
        self.context.lqueried.append(query)
        if value is not None:
            self.context.queried_values.add(value)
            if self._queried_ids is not None:
                self._queried_ids.add(self.local_db.intern_value(value))
        if outcome.aborted:
            self._aborted += 1
        if outcome.failed:
            self._failed += 1
        candidate_ids = outcome.candidate_ids
        if candidate_ids is not None and self._queried_ids is not None:
            # Live interned path: candidate_ids mirrors candidate_values
            # 1:1, so the already-queried filter runs on ints.
            queried_ids = self._queried_ids
            values = outcome.candidate_values
            add_candidate_id = self.selector.add_candidate_id
            for index, vid in enumerate(candidate_ids):
                if vid not in queried_ids:
                    add_candidate_id(vid, values[index])
        else:
            # Value path: replayed outcomes (ids are never journaled) and
            # non-interned databases.
            for candidate in outcome.candidate_values:
                if candidate not in self.context.queried_values:
                    self.selector.add_candidate(candidate)
        self.selector.observe_outcome(outcome)
        if self.keep_outcomes:
            self._outcomes.append(outcome)
        self._steps += 1
        self._history.append(rounds, len(self.local_db))

    def result(self, stopped_by: Optional[str] = None) -> CrawlResult:
        """Snapshot the crawl's current totals as a :class:`CrawlResult`."""
        if stopped_by is None:
            stopped_by = "frontier-exhausted" if self._exhausted else "in-progress"
        return CrawlResult(
            policy=self.selector.name,
            communication_rounds=self.server.rounds,
            queries_issued=len(self.context.lqueried),
            records_harvested=len(self.local_db),
            coverage=self._true_coverage(),
            history=self._history,
            aborted_queries=self._aborted,
            rejected_queries=self._rejected,
            failed_queries=self._failed,
            stopped_by=stopped_by,
            outcomes=self._outcomes,
        )

    # ------------------------------------------------------------------
    # The closed loop
    # ------------------------------------------------------------------
    def crawl(
        self,
        seeds: Iterable[Seed],
        max_rounds: Optional[int] = None,
        max_queries: Optional[int] = None,
        target_coverage: Optional[float] = None,
        allow_empty_seeds: bool = False,
    ) -> CrawlResult:
        """Run the query–harvest–decompose loop to a stopping criterion."""
        self.prepare(seeds, allow_empty_seeds=allow_empty_seeds)
        stopped_by = "frontier-exhausted"
        while True:
            if max_rounds is not None and self.server.rounds >= max_rounds:
                stopped_by = "max-rounds"
                break
            if max_queries is not None and len(self.context.lqueried) >= max_queries:
                stopped_by = "max-queries"
                break
            if (
                target_coverage is not None
                and self._true_coverage() >= target_coverage
            ):
                stopped_by = "target-coverage"
                break
            if self.step() is None:
                break
        result = self.result(stopped_by)
        if self.bus.has_sinks:
            self.bus.emit(
                CrawlStopped(
                    stopped_by=stopped_by,
                    rounds=result.communication_rounds,
                    queries=result.queries_issued,
                    records=result.records_harvested,
                ),
                policy=self.selector.name,
            )
        return result

    # ------------------------------------------------------------------
    # Durable-runtime API (see repro.runtime)
    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Completed query–harvest–decompose steps so far."""
        return self._steps

    def state_dict(self) -> dict:
        """JSON-safe snapshot of all engine-side crawl state.

        The selector contributes its own state via
        :meth:`~repro.policies.base.QuerySelector.state_dict`; server
        state is snapshotted separately (``server.runtime_state()``)
        because schedulers share one engine per source but the runtime
        owns when server state is captured.
        """
        from repro.runtime.serialize import (
            encode_interner,
            encode_query,
            encode_record,
            encode_rng,
            encode_value,
            query_sort_key,
        )

        state = {
            "started": self._started,
            "exhausted": self._exhausted,
            "steps": self._steps,
            "issued": [
                encode_query(q) for q in sorted(self._issued, key=query_sort_key)
            ],
            "lqueried": [encode_query(q) for q in self.context.lqueried],
            "queried_values": [
                encode_value(v) for v in sorted(self.context.queried_values)
            ],
            "rng": encode_rng(self.rng),
            "backoff_rng": encode_rng(self.backoff_rng),
            "aborted": self._aborted,
            "rejected": self._rejected,
            "failed": self._failed,
            "history": [[p.rounds, p.records] for p in self._history.points],
            "records": [encode_record(r) for r in self.local_db],
            "selector": self.selector.state_dict(),
            "flags": {
                "use_xml": self.prober.use_xml,
                "keep_outcomes": self.keep_outcomes,
                "max_retries": self.prober.max_retries,
            },
        }
        if self.keep_outcomes:
            from repro.runtime.journal import encode_outcome

            state["outcomes"] = [encode_outcome(o) for o in self._outcomes]
        interner = getattr(self.local_db, "interner", None)
        if interner is not None:
            # The dense id assignment (first-seen order, including
            # frontier values no record contains).  Restoring it before
            # the records re-add guarantees a resumed crawl holds the
            # exact id layout of the original — no crawl decision reads
            # id values, but keeping them identical makes resumed state
            # snapshots byte-comparable to the original run's.
            state["interner"] = encode_interner(interner)
        return state

    def load_state(self, state: dict) -> None:
        """Restore a snapshot onto a freshly constructed engine.

        The engine must have been built with the same server config,
        selector type/config, and flags as the one that produced the
        snapshot; ``prepare``/``crawl`` must not have been called.
        """
        from repro.runtime.serialize import (
            decode_query,
            decode_record,
            decode_value,
            restore_rng,
        )

        if self._started:
            raise CrawlError("load_state requires a fresh engine")
        flags = state.get("flags")
        if flags is not None:
            current = {
                "use_xml": self.prober.use_xml,
                "keep_outcomes": self.keep_outcomes,
                "max_retries": self.prober.max_retries,
            }
            if flags != current:
                raise CrawlError(
                    f"engine config mismatch: checkpoint has {flags}, "
                    f"this engine has {current}"
                )
        self._started = state["started"]
        self._exhausted = state["exhausted"]
        self._steps = state["steps"]
        self._issued = {decode_query(q) for q in state["issued"]}
        # lqueried and queried_values live on the shared context: mutate
        # in place so the selector's bound view stays consistent.
        self.context.lqueried.extend(decode_query(q) for q in state["lqueried"])
        queried_values = [decode_value(v) for v in state["queried_values"]]
        self.context.queried_values.update(queried_values)
        restore_rng(self.rng, state["rng"])
        restore_rng(self.backoff_rng, state["backoff_rng"])
        self._aborted = state["aborted"]
        self._rejected = state["rejected"]
        self._failed = state["failed"]
        self._history = CrawlHistory()
        for rounds, records in state["history"]:
            self._history.append(rounds, records)
        # Restore the dense id assignment first (older checkpoints and
        # non-interned databases simply skip this), then re-add records
        # in insertion order to rebuild DB_local's graph (degrees,
        # co-occurrence) exactly as the original crawl did.
        interner_state = state.get("interner")
        if interner_state is not None and hasattr(self.local_db, "interner"):
            self.local_db.load_interner_state(interner_state)
        for payload in state["records"]:
            self.local_db.add(decode_record(payload))
        if self._queried_ids is not None:
            # The snapshot's queried values are already in the restored
            # interner, so this assigns no new ids; the sorted snapshot
            # order keeps any fallback assignment deterministic anyway.
            intern_value = self.local_db.intern_value
            self._queried_ids.update(intern_value(v) for v in queried_values)
        self.selector.load_state(state["selector"])
        if "outcomes" in state and self.keep_outcomes:
            from repro.runtime.journal import decode_outcome

            self._outcomes = [decode_outcome(o) for o in state["outcomes"]]

    def replay_outcome(self, outcome: QueryOutcome, rounds_after: int) -> None:
        """Re-apply one journaled step without contacting the server.

        Drives the selector through exactly the proposals the live step
        consumed (reproducing its RNG draws and skip decisions, with
        interface rejection re-derived locally — validation is
        deterministic and consumes no server state), verifies the
        selected wire query matches the journaled one, then folds the
        journaled outcome in.  Raises :class:`CrawlError` if the replay
        diverges — a corrupted journal or a config mismatch.
        """
        if not self._started:
            raise CrawlError("load a checkpoint (or prepare()) before replay")
        while True:
            proposal = self.selector.next_query()
            if proposal is None:
                raise CrawlError(
                    f"journal replay diverged: selector exhausted while "
                    f"expecting {outcome.query}"
                )
            value, query = self._formulate(proposal)
            if query is None or query in self._issued:
                continue
            try:
                self.server.interface.validate(query)
            except UnsupportedQueryError:
                # The live step saw the prober reject this query.
                self._rejected += 1
                continue
            break
        if query != outcome.query:
            raise CrawlError(
                f"journal replay diverged: journal has {outcome.query}, "
                f"selector proposed {query}"
            )
        for record in outcome.new_records:
            self.local_db.add(record)
        self._apply_outcome(value, query, outcome, rounds_after)

    # ------------------------------------------------------------------
    def _true_coverage(self) -> float:
        size = self.server.truth_size()
        if size == 0:
            return 1.0
        return len(self.local_db) / size


def run_crawl(
    server: SimulatedWebDatabase,
    selector: QuerySelector,
    seeds: Sequence[Seed],
    seed: Optional[int] = None,
    **crawl_kwargs,
) -> CrawlResult:
    """One-shot convenience: build an engine and crawl."""
    return CrawlerEngine(server, selector, seed=seed).crawl(seeds, **crawl_kwargs)
