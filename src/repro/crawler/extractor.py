"""Result extraction — turning wire responses into records and values.

The paper's crawler architecture (Section 2.5) has a Result Extractor
that pulls data records out of result pages and "decomposes" them into
attribute values stored for future query formulation.  Our simulated
sources can return either parsed :class:`ResultPage` objects or the XML
wire format; the extractor handles both and performs the decomposition
step, filtering the harvested values down to those the target interface
can actually query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.intern import ValueInterner
from repro.core.records import Record
from repro.core.values import AttributeValue
from repro.server.interface import QueryInterface
from repro.server.pagination import ResultPage
from repro.server.service import parse_page


@dataclass(frozen=True)
class Extraction:
    """What one page yielded: its records and their queriable values.

    ``candidate_ids`` mirrors ``candidate_values`` element for element
    when the extractor was built with an interner, else None.  Ids are
    an in-process acceleration only — never serialized.
    """

    records: tuple[Record, ...]
    candidate_values: tuple[AttributeValue, ...]
    candidate_ids: Optional[tuple[int, ...]] = None
    #: Per-record interned ids of the *full* clique (every attribute
    #: value, queriable or not), aligned 1:1 with ``records``.  Lets
    #: ``DB_local.add`` skip re-hashing the clique it was about to
    #: intern itself.  None without an interner.
    clique_ids: Optional[tuple[Tuple[int, ...], ...]] = None


class ResultExtractor:
    """Decomposes result pages into records and candidate query values.

    Parameters
    ----------
    interface:
        The target's query interface; only values the interface can
        query (directly, or as keywords when a search box exists)
        survive decomposition into the candidate pool.
    interner:
        Optional shared :class:`ValueInterner` (``DB_local``'s).  When
        given, decomposition runs on dense ids with a per-record memo:
        a result page is mostly records seen before (duplicates are the
        norm late in a crawl), and a memoized record costs one int
        lookup instead of re-filtering and re-hashing its clique.
    """

    def __init__(
        self,
        interface: QueryInterface,
        interner: Optional[ValueInterner] = None,
    ) -> None:
        self.interface = interface
        self.interner = interner
        #: record_id → (full-clique ids, queriable ids) — stable:
        #: records, interface, and id assignment are all append-only.
        self._record_memo: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    def extract(self, page: Union[ResultPage, str]) -> Extraction:
        """Extract one page — an object, an XML document, or HTML.

        Strings are sniffed: XML web-service responses start with the
        ``<QueryResponse`` envelope; anything else is handed to the HTML
        wrapper (:func:`repro.server.html.parse_html_page`).
        """
        if isinstance(page, str):
            stripped = page.lstrip()
            if stripped.startswith("<QueryResponse"):
                page = parse_page(page)
            else:
                from repro.server.html import parse_html_page

                page = parse_html_page(page)
        records = page.records
        if self.interner is not None:
            values, ids, cliques = self._decompose_interned(records)
            return Extraction(
                records=records,
                candidate_values=tuple(values),
                candidate_ids=tuple(ids),
                clique_ids=cliques,
            )
        candidates = self.decompose(records)
        return Extraction(records=records, candidate_values=tuple(candidates))

    def decompose(self, records: Iterable[Record]) -> List[AttributeValue]:
        """The "decompose" step of the query-harvest-decompose loop.

        Returns the distinct queriable attribute values appearing in the
        records, in first-seen order (order matters for BFS/DFS).
        """
        if self.interner is not None:
            return self._decompose_interned(records)[0]
        queriable = self.interface.queriable_attributes
        keyword_ok = self.interface.supports_keyword
        seen: dict[AttributeValue, None] = {}
        for record in records:
            for pair in record.attribute_values():
                if pair.attribute in queriable or keyword_ok:
                    seen.setdefault(pair, None)
        return list(seen)

    def _decompose_interned(
        self, records: Iterable[Record]
    ) -> Tuple[List[AttributeValue], List[int], Tuple[Tuple[int, ...], ...]]:
        """Id-indexed decomposition with the per-record memo.

        Produces the same values in the same first-seen order as
        :meth:`decompose` — the dedupe runs on ids, and ids map 1:1 to
        values.  Also returns each record's full-clique ids so the
        local database never re-interns a record the extractor already
        saw (each attribute value is hashed exactly once, here).
        """
        interner = self.interner
        memo = self._record_memo
        queriable = self.interface.queriable_attributes
        keyword_ok = self.interface.supports_keyword
        seen: set = set()
        seen_add = seen.add
        out_ids: List[int] = []
        cliques: List[Tuple[int, ...]] = []
        for record in records:
            record_id = record.record_id
            entry = memo.get(record_id)
            if entry is None:
                intern = interner.intern
                clique: List[int] = []
                queriable_ids: List[int] = []
                for pair in record.attribute_values():
                    vid = intern(pair)
                    clique.append(vid)
                    if keyword_ok or pair.attribute in queriable:
                        queriable_ids.append(vid)
                entry = (tuple(clique), tuple(queriable_ids))
                memo[record_id] = entry
            cliques.append(entry[0])
            for vid in entry[1]:
                if vid not in seen:
                    seen_add(vid)
                    out_ids.append(vid)
        value_of = interner.value
        return [value_of(vid) for vid in out_ids], out_ids, tuple(cliques)
