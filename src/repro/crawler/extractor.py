"""Result extraction — turning wire responses into records and values.

The paper's crawler architecture (Section 2.5) has a Result Extractor
that pulls data records out of result pages and "decomposes" them into
attribute values stored for future query formulation.  Our simulated
sources can return either parsed :class:`ResultPage` objects or the XML
wire format; the extractor handles both and performs the decomposition
step, filtering the harvested values down to those the target interface
can actually query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.core.records import Record
from repro.core.values import AttributeValue
from repro.server.interface import QueryInterface
from repro.server.pagination import ResultPage
from repro.server.service import parse_page


@dataclass(frozen=True)
class Extraction:
    """What one page yielded: its records and their queriable values."""

    records: tuple[Record, ...]
    candidate_values: tuple[AttributeValue, ...]


class ResultExtractor:
    """Decomposes result pages into records and candidate query values.

    Parameters
    ----------
    interface:
        The target's query interface; only values the interface can
        query (directly, or as keywords when a search box exists)
        survive decomposition into the candidate pool.
    """

    def __init__(self, interface: QueryInterface) -> None:
        self.interface = interface

    def extract(self, page: Union[ResultPage, str]) -> Extraction:
        """Extract one page — an object, an XML document, or HTML.

        Strings are sniffed: XML web-service responses start with the
        ``<QueryResponse`` envelope; anything else is handed to the HTML
        wrapper (:func:`repro.server.html.parse_html_page`).
        """
        if isinstance(page, str):
            stripped = page.lstrip()
            if stripped.startswith("<QueryResponse"):
                page = parse_page(page)
            else:
                from repro.server.html import parse_html_page

                page = parse_html_page(page)
        records = page.records
        candidates = self.decompose(records)
        return Extraction(records=records, candidate_values=tuple(candidates))

    def decompose(self, records: Iterable[Record]) -> List[AttributeValue]:
        """The "decompose" step of the query-harvest-decompose loop.

        Returns the distinct queriable attribute values appearing in the
        records, in first-seen order (order matters for BFS/DFS).
        """
        queriable = self.interface.queriable_attributes
        keyword_ok = self.interface.supports_keyword
        seen: dict[AttributeValue, None] = {}
        for record in records:
            for pair in record.attribute_values():
                if pair.attribute in queriable or keyword_ok:
                    seen.setdefault(pair, None)
        return list(seen)
