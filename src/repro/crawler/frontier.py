"""Frontier data structures — the paper's ``L_to-query``.

Each naive policy of Section 3.1 is literally a choice of container for
the to-query list: a queue (breadth-first), a stack (depth-first), or a
bag sampled uniformly (random).  The greedy policies instead need a
priority structure re-scored as the local graph grows.  This module
provides all of them behind one small protocol: ``push`` candidates,
``pop`` the next, never yield the same value twice.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.core.values import AttributeValue

ScoreFn = Callable[[AttributeValue], float]

#: Item codecs for checkpoint serialization.  Frontiers normally hold
#: :class:`AttributeValue` items, but the clique selectors store tuples
#: of them, so the state API takes the codec as a parameter.
ItemEncoder = Callable[[Any], Any]
ItemDecoder = Callable[[Any], Any]


def _default_encode(item: AttributeValue) -> list:
    return [item.attribute, item.value]


def _default_decode(payload) -> AttributeValue:
    return AttributeValue(payload[0], payload[1])


class Frontier(ABC):
    """A set-like container of candidate attribute values.

    Implementations guarantee that each pushed value is popped at most
    once and that re-pushing a value already seen (pending or popped) is
    a no-op — a crawler must never issue the same query twice.
    """

    def __init__(self) -> None:
        self._seen: set[AttributeValue] = set()
        self._pending = 0

    def push(self, value: AttributeValue) -> bool:
        """Add a candidate; returns False if it was already known."""
        if value in self._seen:
            return False
        self._seen.add(value)
        self._pending += 1
        self._insert(value)
        return True

    def push_all(self, values: Iterable[AttributeValue]) -> int:
        return sum(1 for value in values if self.push(value))

    def pop(self) -> Optional[AttributeValue]:
        """Remove and return the next candidate, or None when empty."""
        if self._pending == 0:
            return None
        value = self._remove()
        self._pending -= 1
        return value

    def __len__(self) -> int:
        return self._pending

    def __bool__(self) -> bool:
        return self._pending > 0

    def __contains__(self, value: AttributeValue) -> bool:
        return value in self._seen

    @abstractmethod
    def _insert(self, value: AttributeValue) -> None:
        """Store a value known to be new."""

    @abstractmethod
    def _remove(self) -> AttributeValue:
        """Remove the container's next value (container is non-empty)."""

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self, encode: Optional[ItemEncoder] = None) -> dict:
        """Full frontier state as a JSON-safe dict.

        ``seen`` is a set (order-irrelevant) and is stored sorted so
        checkpoint bytes are deterministic; the container payload keeps
        whatever order the concrete frontier depends on.
        """
        encode = encode or _default_encode
        return {
            "seen": [encode(item) for item in sorted(self._seen)],
            "pending": self._pending,
            "container": self._container_state(encode),
        }

    def load_state(
        self, state: dict, decode: Optional[ItemDecoder] = None
    ) -> None:
        """Restore a state captured by :meth:`state_dict` in place."""
        decode = decode or _default_decode
        self._seen = {decode(item) for item in state["seen"]}
        self._pending = state["pending"]
        self._load_container(state["container"], decode)

    @abstractmethod
    def _container_state(self, encode: ItemEncoder):
        """Serialize the concrete container (order preserved)."""

    @abstractmethod
    def _load_container(self, payload, decode: ItemDecoder) -> None:
        """Restore the concrete container from its serialized form."""


class FifoFrontier(Frontier):
    """Queue frontier — breadth-first selection."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[AttributeValue] = deque()

    def _insert(self, value: AttributeValue) -> None:
        self._queue.append(value)

    def _remove(self) -> AttributeValue:
        return self._queue.popleft()

    def _container_state(self, encode: ItemEncoder):
        return [encode(item) for item in self._queue]

    def _load_container(self, payload, decode: ItemDecoder) -> None:
        self._queue = deque(decode(item) for item in payload)


class LifoFrontier(Frontier):
    """Stack frontier — depth-first selection."""

    def __init__(self) -> None:
        super().__init__()
        self._stack: list[AttributeValue] = []

    def _insert(self, value: AttributeValue) -> None:
        self._stack.append(value)

    def _remove(self) -> AttributeValue:
        return self._stack.pop()

    def _container_state(self, encode: ItemEncoder):
        return [encode(item) for item in self._stack]

    def _load_container(self, payload, decode: ItemDecoder) -> None:
        self._stack = [decode(item) for item in payload]


class RandomFrontier(Frontier):
    """Uniform-random frontier (swap-with-last removal, O(1) amortized).

    The RNG is required, not defaulted: an unseeded stream would break
    the bit-identical-replay guarantee the durable runtime makes for
    every policy.  Pass the engine's policy RNG (``context.rng``) — the
    engine checkpoints that stream, so a resumed random crawl draws
    exactly where the original left off.
    """

    def __init__(self, rng: random.Random) -> None:
        if not isinstance(rng, random.Random):
            raise TypeError(
                "RandomFrontier requires an explicit random.Random (the "
                "engine's seeded stream); an unseeded default would break "
                "bit-identical replay"
            )
        super().__init__()
        self._items: list[AttributeValue] = []
        self._rng = rng

    def _insert(self, value: AttributeValue) -> None:
        self._items.append(value)

    def _remove(self) -> AttributeValue:
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()

    def _container_state(self, encode: ItemEncoder):
        # Item order matters: removal draws an *index*, so the restored
        # list must match position for position (the RNG stream itself
        # is checkpointed by the engine).
        return [encode(item) for item in self._items]

    def _load_container(self, payload, decode: ItemDecoder) -> None:
        self._items = [decode(item) for item in payload]


class InternedPriorityFrontier(Frontier):
    """Id-native, incrementally rescored :class:`PriorityFrontier`.

    Same contract and same *serialized state* as
    :class:`PriorityFrontier`, but every internal structure — seen set,
    pending set, heap entries — holds dense int ids instead of
    :class:`AttributeValue` objects, and scoring goes through an
    id-indexed function (e.g. ``LocalDatabase.degree_id``).  A value is
    hashed exactly once, at :meth:`push` time, to intern it; every
    subsequent refresh/pop touch is integer work.

    **Incremental rescoring.**  :meth:`refresh_id` no longer scores and
    pushes eagerly; it only marks the id *dirty* (insertion-ordered,
    deduplicated).  The dirty set drains at the next :meth:`pop` (or
    :meth:`state_dict`): each dirty id is rescored — through
    ``batch_score_fn`` in one call when provided — and re-pushed **only
    if its score actually changed** since its last push.  Both halves
    preserve the eager frontier's pop order exactly:

    - *Deferral* keeps the push sequence: between a refresh and the next
      pop nothing else pushes, so draining in mark order assigns ticks
      in the same relative order the eager pushes would have.
    - *Skipping an unchanged push* is unobservable: among duplicate
      entries of one id at equal score the earliest tick pops first, so
      the redundant later push never wins — for this id or any tie.

    The invariant callers must keep (and the shipped greedy policies do
    keep, by refreshing every id an outcome touched): **every score
    change is announced via refresh before the next pop**.  Two guards
    back the invariant: the pop-time recheck (below) reinserts any
    stale-low entry it uncovers, and each flush re-verifies the heap
    head, correcting up to ``rescore_head`` stale entries.  As an escape
    hatch, ``full_rescore_every=N`` rescans the *entire* pending set on
    every Nth flush (dirty ids first, in mark order, so the push order
    is unchanged when the invariant holds); the differential tests run
    incremental-vs-``full_rescore_every=1`` step-history identity.

    Determinism: heap entries order by ``(-score, tick)`` and ticks are
    unique, so the third tuple element is never compared — swapping the
    value for its id cannot change pop order, and the checkpoint payload
    (which encodes the values, not the ids) matches the value-keyed
    frontier's schema.  ``state_dict`` flushes first: a checkpoint
    performs exactly the pushes the next pop would have, in the same
    order, so observing a crawl cannot perturb it.

    Parameters
    ----------
    score_id_fn:
        Score by id.
    intern_fn:
        ``AttributeValue -> id``, assigning ids to new values (use
        ``LocalDatabase.intern_value`` so statistic arrays grow too).
    lookup_fn:
        ``AttributeValue -> Optional[id]`` without assigning (refresh
        must not intern values it will ignore).
    value_fn:
        ``id -> AttributeValue`` (the interner's list index).
    batch_score_fn:
        Optional ``ids -> [score, ...]`` scoring a whole dirty set in
        one call (see :mod:`repro.policies.vectorized`); falls back to
        per-id ``score_id_fn`` when None.
    full_rescore_every:
        Rescore every pending id on each Nth flush (0 = never).
    rescore_head:
        Stale heap-head entries corrected per flush (0 disables).
    """

    def __init__(
        self,
        score_id_fn: Callable[[int], float],
        intern_fn: Callable[[AttributeValue], int],
        lookup_fn: Callable[[AttributeValue], Optional[int]],
        value_fn: Callable[[int], AttributeValue],
        batch_score_fn: Optional[Callable[[Sequence[int]], Sequence[float]]] = None,
        full_rescore_every: int = 0,
        rescore_head: int = 8,
    ) -> None:
        super().__init__()
        self._score_id = score_id_fn
        self._intern = intern_fn
        self._lookup = lookup_fn
        self._value_of = value_fn
        self._batch_score = batch_score_fn
        self._full_rescore_every = full_rescore_every
        self._rescore_head = rescore_head
        self._heap: list[tuple[float, int, int]] = []
        self._tick = 0
        self._seen_ids: set[int] = set()
        self._pending_ids: set[int] = set()
        #: Insertion-ordered dirty ids awaiting rescore, with a set mirror
        #: for O(1) dedup.
        self._dirty: list[int] = []
        self._dirty_set: set[int] = set()
        #: Last score pushed per pending id — the flush's "did it change"
        #: test.  Entries leave when the id pops.
        self._last_pushed: dict[int, float] = {}
        self._flushes = 0
        #: Monotonic counters surfaced as repro.metrics telemetry:
        #: ids marked dirty, ids actually rescored, flush passes.
        self.stats = {"dirty_total": 0, "rescored_total": 0, "flushes": 0}

    # The base class's _seen/_insert/_remove machinery is value-keyed;
    # this frontier overrides the public surface wholesale instead.
    def push(self, value: AttributeValue) -> bool:
        return self.push_id(self._intern(value))

    def push_id(self, vid: int) -> bool:
        """Id fast path of :meth:`push` for callers already holding ids."""
        if vid in self._seen_ids:
            return False
        self._seen_ids.add(vid)
        self._pending += 1
        self._pending_ids.add(vid)
        score = self._score_id(vid)
        self._last_pushed[vid] = score
        self._tick += 1
        heapq.heappush(self._heap, (-score, self._tick, vid))
        return True

    def _flush(self) -> None:
        """Drain the dirty set into the heap (see class docstring)."""
        self._flushes += 1
        stats = self.stats
        stats["flushes"] += 1
        dirty = self._dirty
        every = self._full_rescore_every
        if every > 0 and self._flushes % every == 0:
            # Escape hatch: dirty ids first in mark order (keeping the
            # incremental push order), then the untouched remainder.
            ids = dirty + sorted(self._pending_ids - self._dirty_set)
        else:
            ids = dirty
        if ids:
            stats["dirty_total"] += len(dirty)
            stats["rescored_total"] += len(ids)
            if self._batch_score is not None:
                scores = self._batch_score(ids)
            else:
                score_id = self._score_id
                scores = [score_id(vid) for vid in ids]
            last = self._last_pushed
            heap = self._heap
            pending = self._pending_ids
            for vid, score in zip(ids, scores):
                if vid not in pending or score == last.get(vid):
                    continue
                last[vid] = score
                self._tick += 1
                heapq.heappush(heap, (-score, self._tick, vid))
            self._dirty = []
            self._dirty_set.clear()
        head = self._rescore_head
        if head:
            heap = self._heap
            pending = self._pending_ids
            score_id = self._score_id
            corrected = 0
            while heap and corrected < head:
                neg_score, _tie, vid = heap[0]
                if vid not in pending:
                    heapq.heappop(heap)  # prune a dead duplicate
                    corrected += 1
                    continue
                fresh = score_id(vid)
                if fresh <= -neg_score:
                    break  # the head is current — nothing hides above it
                heapq.heappop(heap)
                self._last_pushed[vid] = fresh
                self._tick += 1
                heapq.heappush(heap, (-fresh, self._tick, vid))
                corrected += 1

    def pop(self) -> Optional[AttributeValue]:
        if self._pending == 0:
            return None
        if self._dirty or self._full_rescore_every or self._rescore_head:
            self._flush()
        pending = self._pending_ids
        heap = self._heap
        while True:
            neg_score, _tie, vid = heapq.heappop(heap)
            if vid not in pending:
                continue  # out-of-date duplicate of an already-popped value
            fresh = self._score_id(vid)
            if fresh > -neg_score:
                # Grew without a refresh (invariant breach — the recheck
                # is the backstop): reinsert at the correct rank.
                self._last_pushed[vid] = fresh
                self._tick += 1
                heapq.heappush(heap, (-fresh, self._tick, vid))
                continue
            pending.discard(vid)
            self._last_pushed.pop(vid, None)
            self._pending -= 1
            return self._value_of(vid)

    def refresh(self, value: AttributeValue) -> None:
        """Record that ``value``'s score may have changed (no-op if not pending)."""
        vid = self._lookup(value)
        if vid is not None:
            self.refresh_id(vid)

    def refresh_all(self, values: Iterable[AttributeValue]) -> None:
        for value in values:
            self.refresh(value)

    def refresh_id(self, vid: int) -> None:
        """Id fast path of :meth:`refresh`: mark dirty, rescore at next pop."""
        if vid in self._pending_ids and vid not in self._dirty_set:
            self._dirty_set.add(vid)
            self._dirty.append(vid)

    def __contains__(self, value: AttributeValue) -> bool:
        vid = self._lookup(value)
        return vid is not None and vid in self._seen_ids

    def _insert(self, value: AttributeValue) -> None:  # pragma: no cover
        raise AssertionError("push() is overridden; _insert is unreachable")

    def _remove(self) -> AttributeValue:  # pragma: no cover
        raise AssertionError("pop() is overridden; _remove is unreachable")

    def _container_state(self, encode: ItemEncoder):  # pragma: no cover
        raise AssertionError("state_dict() is overridden")

    def _load_container(self, payload, decode: ItemDecoder) -> None:  # pragma: no cover
        raise AssertionError("load_state() is overridden")

    # ------------------------------------------------------------------
    # Checkpoint state — same payload as PriorityFrontier, value-encoded
    # ------------------------------------------------------------------
    def state_dict(self, encode: Optional[ItemEncoder] = None) -> dict:
        # Drain the dirty set first: the flush performs exactly the
        # pushes the next pop would have, in the same order, so the
        # snapshot is self-consistent and taking it perturbs nothing.
        self._flush()
        encode = encode or _default_encode
        value_of = self._value_of
        return {
            "seen": [
                encode(item)
                for item in sorted(value_of(vid) for vid in self._seen_ids)
            ],
            "pending": self._pending,
            "container": {
                "heap": [
                    [neg_score, tie, encode(value_of(vid))]
                    for neg_score, tie, vid in self._heap
                ],
                "tick": self._tick,
                "pending": [
                    encode(item)
                    for item in sorted(
                        value_of(vid) for vid in self._pending_ids
                    )
                ],
            },
        }

    def load_state(
        self, state: dict, decode: Optional[ItemDecoder] = None
    ) -> None:
        decode = decode or _default_decode
        intern = self._intern
        self._seen_ids = {intern(decode(item)) for item in state["seen"]}
        self._pending = state["pending"]
        container = state["container"]
        # Heap order depends only on (neg_score, tick) — ticks are unique
        # — so re-interning the values preserves a valid heap verbatim.
        self._heap = [
            (neg_score, tie, intern(decode(value)))
            for neg_score, tie, value in container["heap"]
        ]
        self._tick = container["tick"]
        self._pending_ids = {intern(decode(value)) for value in container["pending"]}
        # The pushed-score map is not serialized (the payload stays
        # schema-compatible with PriorityFrontier): rebuild it as each
        # pending id's best heap entry.  Scores only grow between pushes
        # for the shipped policies, so "best" is "last pushed".
        self._dirty = []
        self._dirty_set = set()
        last: dict[int, float] = {}
        pending = self._pending_ids
        for neg_score, _tie, vid in self._heap:
            if vid in pending:
                score = -neg_score
                prev = last.get(vid)
                if prev is None or score > prev:
                    last[vid] = score
        self._last_pushed = last
        self._flushes = 0


class PriorityFrontier(Frontier):
    """Max-priority frontier over externally changing scores.

    Scores (e.g. local-graph degrees) grow while a value waits in the
    frontier, and a max-heap's lazy pop-time re-scoring cannot catch
    that: a stale entry *underestimates* its value and hides below the
    top.  Callers therefore :meth:`refresh` values whose scores changed
    (the greedy policies do so for every value touched by a query's
    results); refreshing pushes a duplicate entry with the new score and
    pops discard out-of-date duplicates.  Ties break FIFO among entries
    pushed at the same score for determinism.
    """

    def __init__(self, score_fn: ScoreFn) -> None:
        super().__init__()
        self._score_fn = score_fn
        self._heap: list[tuple[float, int, AttributeValue]] = []
        # A plain int tick (not itertools.count) so the FIFO tie-break
        # stream survives checkpoint/restore exactly.
        self._tick = 0
        self._pending_set: set[AttributeValue] = set()

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def refresh(self, value: AttributeValue) -> None:
        """Record that ``value``'s score may have changed.

        No-op for values not pending (unknown or already popped).
        """
        if value in self._pending_set:
            score = self._score_fn(value)
            heapq.heappush(self._heap, (-score, self._next_tick(), value))

    def refresh_all(self, values: Iterable[AttributeValue]) -> None:
        for value in values:
            self.refresh(value)

    def _insert(self, value: AttributeValue) -> None:
        self._pending_set.add(value)
        score = self._score_fn(value)
        heapq.heappush(self._heap, (-score, self._next_tick(), value))

    def _remove(self) -> AttributeValue:
        while True:
            neg_score, _tie, value = heapq.heappop(self._heap)
            if value not in self._pending_set:
                continue  # out-of-date duplicate of an already-popped value
            fresh = self._score_fn(value)
            if fresh > -neg_score:
                # Grew since this entry was pushed and nobody refreshed it;
                # reinsert at the correct rank rather than returning early.
                heapq.heappush(self._heap, (-fresh, self._next_tick(), value))
                continue
            self._pending_set.discard(value)
            return value

    def _container_state(self, encode: ItemEncoder):
        # The heap list is stored verbatim: any snapshot of a valid heap
        # is itself a valid heap, so no re-heapify is needed on load.
        return {
            "heap": [
                [neg_score, tie, encode(value)]
                for neg_score, tie, value in self._heap
            ],
            "tick": self._tick,
            "pending": [encode(value) for value in sorted(self._pending_set)],
        }

    def _load_container(self, payload, decode: ItemDecoder) -> None:
        self._heap = [
            (neg_score, tie, decode(value))
            for neg_score, tie, value in payload["heap"]
        ]
        self._tick = payload["tick"]
        self._pending_set = {decode(value) for value in payload["pending"]}
