"""Frontier data structures — the paper's ``L_to-query``.

Each naive policy of Section 3.1 is literally a choice of container for
the to-query list: a queue (breadth-first), a stack (depth-first), or a
bag sampled uniformly (random).  The greedy policies instead need a
priority structure re-scored as the local graph grows.  This module
provides all of them behind one small protocol: ``push`` candidates,
``pop`` the next, never yield the same value twice.
"""

from __future__ import annotations

import heapq
import itertools
import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Iterable, Optional

from repro.core.values import AttributeValue

ScoreFn = Callable[[AttributeValue], float]


class Frontier(ABC):
    """A set-like container of candidate attribute values.

    Implementations guarantee that each pushed value is popped at most
    once and that re-pushing a value already seen (pending or popped) is
    a no-op — a crawler must never issue the same query twice.
    """

    def __init__(self) -> None:
        self._seen: set[AttributeValue] = set()
        self._pending = 0

    def push(self, value: AttributeValue) -> bool:
        """Add a candidate; returns False if it was already known."""
        if value in self._seen:
            return False
        self._seen.add(value)
        self._pending += 1
        self._insert(value)
        return True

    def push_all(self, values: Iterable[AttributeValue]) -> int:
        return sum(1 for value in values if self.push(value))

    def pop(self) -> Optional[AttributeValue]:
        """Remove and return the next candidate, or None when empty."""
        if self._pending == 0:
            return None
        value = self._remove()
        self._pending -= 1
        return value

    def __len__(self) -> int:
        return self._pending

    def __bool__(self) -> bool:
        return self._pending > 0

    def __contains__(self, value: AttributeValue) -> bool:
        return value in self._seen

    @abstractmethod
    def _insert(self, value: AttributeValue) -> None:
        """Store a value known to be new."""

    @abstractmethod
    def _remove(self) -> AttributeValue:
        """Remove the container's next value (container is non-empty)."""


class FifoFrontier(Frontier):
    """Queue frontier — breadth-first selection."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[AttributeValue] = deque()

    def _insert(self, value: AttributeValue) -> None:
        self._queue.append(value)

    def _remove(self) -> AttributeValue:
        return self._queue.popleft()


class LifoFrontier(Frontier):
    """Stack frontier — depth-first selection."""

    def __init__(self) -> None:
        super().__init__()
        self._stack: list[AttributeValue] = []

    def _insert(self, value: AttributeValue) -> None:
        self._stack.append(value)

    def _remove(self) -> AttributeValue:
        return self._stack.pop()


class RandomFrontier(Frontier):
    """Uniform-random frontier (swap-with-last removal, O(1) amortized)."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        super().__init__()
        self._items: list[AttributeValue] = []
        self._rng = rng or random.Random()

    def _insert(self, value: AttributeValue) -> None:
        self._items.append(value)

    def _remove(self) -> AttributeValue:
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()


class PriorityFrontier(Frontier):
    """Max-priority frontier over externally changing scores.

    Scores (e.g. local-graph degrees) grow while a value waits in the
    frontier, and a max-heap's lazy pop-time re-scoring cannot catch
    that: a stale entry *underestimates* its value and hides below the
    top.  Callers therefore :meth:`refresh` values whose scores changed
    (the greedy policies do so for every value touched by a query's
    results); refreshing pushes a duplicate entry with the new score and
    pops discard out-of-date duplicates.  Ties break FIFO among entries
    pushed at the same score for determinism.
    """

    def __init__(self, score_fn: ScoreFn) -> None:
        super().__init__()
        self._score_fn = score_fn
        self._heap: list[tuple[float, int, AttributeValue]] = []
        self._counter = itertools.count()
        self._pending_set: set[AttributeValue] = set()

    def refresh(self, value: AttributeValue) -> None:
        """Record that ``value``'s score may have changed.

        No-op for values not pending (unknown or already popped).
        """
        if value in self._pending_set:
            score = self._score_fn(value)
            heapq.heappush(self._heap, (-score, next(self._counter), value))

    def refresh_all(self, values: Iterable[AttributeValue]) -> None:
        for value in values:
            self.refresh(value)

    def _insert(self, value: AttributeValue) -> None:
        self._pending_set.add(value)
        score = self._score_fn(value)
        heapq.heappush(self._heap, (-score, next(self._counter), value))

    def _remove(self) -> AttributeValue:
        while True:
            neg_score, _tie, value = heapq.heappop(self._heap)
            if value not in self._pending_set:
                continue  # out-of-date duplicate of an already-popped value
            fresh = self._score_fn(value)
            if fresh > -neg_score:
                # Grew since this entry was pushed and nobody refreshed it;
                # reinsert at the correct rank rather than returning early.
                heapq.heappush(self._heap, (-fresh, next(self._counter), value))
                continue
            self._pending_set.discard(value)
            return value
