"""The crawler's local database ``DB_local`` and local graph ``G_local``.

Everything a query-selection policy may legitimately know lives here:
the records harvested so far, per-value frequencies (``num(q, DB_local)``),
the local attribute-value graph's degrees (the greedy link signal), and
pairwise co-occurrence counts (the MMMI mutual-information signal).

All statistics are maintained incrementally as records arrive, so policy
lookups are O(1) and adding a record costs O(c²) where ``c`` is the
record's clique size — the same asymptotics as inserting the record's
clique into ``G_local``.

Internally every statistic is **array-backed and id-indexed**: a
:class:`~repro.core.intern.ValueInterner` assigns each attribute value a
dense int id the first time it is seen, frequencies and degrees live in
``array('I')`` columns, adjacency in int-sets, postings in sorted int
arrays, and co-occurrence counts in symmetric per-vertex rows
(``_cooc_rows[u][v]``) so a single dict indexes every partner of a
vertex — the layout the vectorized MMMI recompute iterates
queried-major.  Each value is hashed once per appearance (the intern lookup);
everything after that is integer arithmetic.  The public API is
unchanged — it accepts and returns :class:`AttributeValue` — and the
``*_id`` fast paths let the selectors skip even the single hash when
they already hold an id.  The pre-interning dict implementation is
retained verbatim as
:class:`repro.crawler.reference.ReferenceLocalDatabase` and the
differential tests pin the two to identical statistics.

Postings (per-value and keyword) are built *lazily*: :meth:`add` only
logs the record's interned ids, and the inverted lists materialize on
first read, catching up over the log.  Policies that never consult
postings — GL reads frequencies and degrees only — therefore never pay
for them, while posting-heavy workloads (conjunctive crawls, untracked
PMI) pay exactly the eager cost, amortized.  Laziness is invisible in
results: every accessor flushes before reading.
"""

from __future__ import annotations

import math
from array import array
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.core.intern import (
    StringInterner,
    ValueInterner,
    intersect_sorted,
)
from repro.core.records import Record
from repro.core.values import AttributeValue

#: Shared empty views returned for unknown keys (no per-call allocation).
_EMPTY_VIEW: frozenset = frozenset()
_EMPTY_IDS: Set[int] = frozenset()  # type: ignore[assignment]
_EMPTY_POSTING: array = array("q")
_EMPTY_ROW: Dict[int, int] = {}


class LocalDatabase:
    """Deduplicated store of harvested records with incremental statistics.

    Parameters
    ----------
    track_cooccurrence:
        Maintain pairwise co-occurrence counts (needed by MMMI).  Off by
        default since the quadratic-in-clique bookkeeping is wasted on
        policies that never consult it.
    interner:
        Share an existing :class:`ValueInterner` (e.g. one restored from
        a checkpoint).  A fresh one is built by default.
    """

    def __init__(
        self,
        track_cooccurrence: bool = False,
        interner: Optional[ValueInterner] = None,
    ) -> None:
        self._records: Dict[int, Record] = {}
        #: Dense value ↔ id map shared with the frontier and selectors.
        self.interner = interner if interner is not None else ValueInterner()
        self._tokens = StringInterner()
        # Id-indexed statistic arrays, grown in lock-step with the
        # interner by _ensure().  A value interned through a shared
        # interner but never seen in a record keeps zero statistics,
        # exactly like an absent key did in the dict implementation.
        self._freq = array("I")
        #: Incremental degree column: _deg[vid] == len(_neighbor_sets[vid])
        #: at all times, so degree reads never touch the (larger) sets and
        #: batch scorers can gather degrees straight from the buffer.
        self._deg = array("I")
        self._neighbor_sets: List[Set[int]] = []
        # Lazy inverted indexes: add() appends to the logs; the first
        # accessor that needs a posting list drains them (see
        # _flush_postings / _flush_keywords).
        self._posting_lists: List[array] = []
        self._dirty_postings: Set[int] = set()
        self._posting_log: List[tuple] = []  # (record_id, interned ids)
        self._kw_postings: List[array] = []
        self._record_log: List[Record] = []  # insertion order
        self._kw_upto = 0  # records folded into the keyword index
        self._num_distinct = 0
        self.track_cooccurrence = track_cooccurrence
        # Symmetric per-vertex co-occurrence rows: _cooc_rows[u][v] ==
        # _cooc_rows[v][u] == #records containing both u and v (u != v).
        # Grown only when tracking (the rows would be dead weight for GL).
        self._cooc_rows: List[Dict[int, int]] = []

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern_value(self, value: AttributeValue) -> int:
        """The value's dense id, assigning one (and growing stats) if new."""
        vid = self.interner.intern(value)
        if vid >= len(self._freq):
            self._ensure(vid)
        return vid

    def value_id(self, value: AttributeValue) -> Optional[int]:
        """The value's id, or None if it was never interned here."""
        return self.interner.lookup(value)

    def _ensure(self, vid: int) -> None:
        """Grow the id-indexed arrays to cover ``vid`` (batched)."""
        grow = vid + 1 - len(self._freq)
        if grow <= 0:
            return
        zeros = bytes(grow * self._freq.itemsize)
        self._freq.frombytes(zeros)
        self._deg.frombytes(zeros)
        self._neighbor_sets.extend(set() for _ in range(grow))
        self._posting_lists.extend(array("q") for _ in range(grow))
        if self.track_cooccurrence:
            self._cooc_rows.extend({} for _ in range(grow))

    def load_interner_state(self, payload) -> None:
        """Restore a checkpointed id assignment (before re-adding records).

        Gives the empty database the original run's exact id layout, so
        values first seen as frontier candidates (not in any record)
        keep their original ids after a resume.
        """
        if self._records:
            raise ValueError("load_interner_state requires an empty database")
        self.interner.load_state(payload)
        if len(self.interner):
            self._ensure(len(self.interner) - 1)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, record: Record, ids: Optional[Sequence[int]] = None) -> bool:
        """Store a harvested record; returns False for duplicates.

        Duplicate detection is by record id — the simulated sources give
        every record a stable id, playing the role of the URL / ASIN a
        real extractor would dedupe on.

        ``ids`` may carry the record's full clique pre-interned (in
        ``record.attribute_values()`` order) by a caller sharing this
        database's interner — the extractor's per-record memo — so the
        clique is hashed once per crawl, not once per module.
        """
        record_id = record.record_id
        records = self._records
        if record_id in records:
            return False
        records[record_id] = record
        self._record_log.append(record)
        interner = self.interner
        if ids is None:
            intern = interner.intern
            ids = [intern(pair) for pair in record.attribute_values()]
        freq = self._freq
        if len(freq) < len(interner):
            self._ensure(len(interner) - 1)

        bumped = 0
        for vid in ids:
            count = freq[vid]
            if count == 0:
                bumped += 1
            freq[vid] = count + 1
        if bumped:
            self._num_distinct += bumped
        self._posting_log.append((record_id, ids))

        if self.track_cooccurrence:
            rows = self._cooc_rows
            n = len(ids)
            for i in range(n):
                u = ids[i]
                row_u = rows[u]
                for j in range(i + 1, n):
                    v = ids[j]
                    count = row_u.get(v, 0) + 1
                    row_u[v] = count
                    rows[v][u] = count
        # Clique edges: each vertex unions the whole clique (a C-speed
        # bulk op) and drops itself, instead of O(c²) Python-level adds.
        neighbors = self._neighbor_sets
        deg = self._deg
        for u in ids:
            mine = neighbors[u]
            mine.update(ids)
            mine.discard(u)
            deg[u] = len(mine)
        return True

    def add_all(self, records: Iterable[Record]) -> int:
        """Add many records; returns how many were new."""
        return sum(1 for record in records if self.add(record))

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def record_ids(self) -> List[int]:
        return sorted(self._records)

    # ------------------------------------------------------------------
    # Statistics — what policies are allowed to see
    # ------------------------------------------------------------------
    def frequency(self, value: AttributeValue) -> int:
        """``num(value, DB_local)`` — matched records harvested so far."""
        vid = self.interner.lookup(value)
        return 0 if vid is None or vid >= len(self._freq) else self._freq[vid]

    def frequency_id(self, vid: int) -> int:
        """Id fast path of :meth:`frequency`."""
        return self._freq[vid] if vid < len(self._freq) else 0

    def frequency_column(self) -> array:
        """The live id-indexed frequency column (read-only contract).

        Batch scorers wrap this buffer in a numpy view; it must never be
        mutated from outside and must be re-fetched after any ``add`` or
        ``intern_value`` (growth may reallocate the buffer).
        """
        return self._freq

    def degree_column(self) -> array:
        """The live id-indexed degree column (read-only contract)."""
        return self._deg

    def degree(self, value: AttributeValue) -> int:
        """Degree of ``value`` in the local AVG ``G_local``."""
        vid = self.interner.lookup(value)
        if vid is None or vid >= len(self._deg):
            return 0
        return self._deg[vid]

    def degree_id(self, vid: int) -> int:
        """Id fast path of :meth:`degree`."""
        if vid < len(self._deg):
            return self._deg[vid]
        return 0

    def neighbors(self, value: AttributeValue) -> FrozenSet[AttributeValue]:
        """The value's neighbours in ``G_local`` (a copy-safe view).

        The returned set is immutable and detached from the index:
        callers can keep, compare, or combine it without any way of
        corrupting ``G_local``'s adjacency.
        """
        vid = self.interner.lookup(value)
        if vid is None or vid >= len(self._neighbor_sets):
            return _EMPTY_VIEW
        ids = self._neighbor_sets[vid]
        if not ids:
            return _EMPTY_VIEW
        decode = self.interner.value
        return frozenset(decode(n) for n in ids)

    def neighbor_id_set(self, vid: int) -> Set[int]:
        """The value's neighbour ids — the **live internal set**.

        Zero-copy by design: the MMMI recompute intersects every
        candidate's neighbourhood against the queried set, and copying a
        hub's thousands of neighbours per candidate would dominate the
        pass.  Callers must treat it as read-only.
        """
        if vid < len(self._neighbor_sets):
            return self._neighbor_sets[vid]
        return _EMPTY_IDS

    def matching_ids(self, value: AttributeValue) -> FrozenSet[int]:
        """Ids of local records containing ``value`` (a copy-safe view)."""
        vid = self.interner.lookup(value)
        if vid is None:
            return _EMPTY_VIEW
        if self._posting_log:
            self._flush_postings()
        if vid >= len(self._posting_lists):
            return _EMPTY_VIEW
        plist = self._posting_lists[vid]
        return frozenset(plist) if plist else _EMPTY_VIEW

    def keyword_frequency(self, value: str) -> int:
        """Local records holding ``value`` under *any* attribute."""
        if self._kw_upto < len(self._record_log):
            self._flush_keywords()
        tid = self._tokens.lookup(value)
        if tid is None or tid >= len(self._kw_postings):
            return 0
        return len(self._kw_postings[tid])

    # ------------------------------------------------------------------
    # Postings — lazily materialized inverted indexes
    # ------------------------------------------------------------------
    def _flush_postings(self) -> None:
        """Fold the logged (record, ids) entries into the posting lists.

        add() only logs; the fold runs on first read, so policies that
        never consult postings never pay for them.  Amortized cost for
        posting-heavy workloads equals the eager cost: each logged entry
        is folded exactly once.
        """
        postings = self._posting_lists
        dirty = self._dirty_postings
        for record_id, ids in self._posting_log:
            for vid in ids:
                plist = postings[vid]
                if plist and record_id < plist[-1]:
                    dirty.add(vid)
                plist.append(record_id)
        self._posting_log.clear()

    def _flush_keywords(self) -> None:
        """Fold records added since the last keyword read into the index."""
        intern = self._tokens.intern
        kw_postings = self._kw_postings
        for record in self._record_log[self._kw_upto:]:
            record_id = record.record_id
            seen_tokens: Set[int] = set()
            for pair in record.attribute_values():
                tid = intern(pair.value)
                if tid not in seen_tokens:
                    seen_tokens.add(tid)
                    while len(kw_postings) <= tid:
                        kw_postings.append(array("q"))
                    kw_postings[tid].append(record_id)
        self._kw_upto = len(self._record_log)

    def _sorted_posting(self, vid: int) -> array:
        """The value's posting list, ascending (lazily re-sorted).

        Harvest order is not id order (ranked sources, random
        frontiers), so appends mark the list dirty and the sort is paid
        once per read burst instead of once per insert.
        """
        if self._posting_log:
            self._flush_postings()
        if vid >= len(self._posting_lists):
            return _EMPTY_POSTING
        plist = self._posting_lists[vid]
        if vid in self._dirty_postings:
            self._posting_lists[vid] = plist = array("q", sorted(plist))
            self._dirty_postings.discard(vid)
        return plist

    def conjunctive_matching_ids(self, predicates) -> Set[int]:
        """Local records satisfying every predicate (posting intersection)."""
        return set(self._conjunctive_match(predicates))

    def conjunctive_frequency(self, predicates) -> int:
        """``num(q, DB_local)`` for a conjunctive query."""
        return len(self._conjunctive_match(predicates))

    def conjunctive_frequency_ids(self, vids: Sequence[int]) -> int:
        """Id fast path of :meth:`conjunctive_frequency`."""
        return len(self._intersect_ids(vids))

    def _conjunctive_match(self, predicates) -> Sequence[int]:
        lookup = self.interner.lookup
        vids = []
        for pair in predicates:
            vid = lookup(pair)
            if vid is None:
                return _EMPTY_POSTING
            vids.append(vid)
        return self._intersect_ids(vids)

    def _intersect_ids(self, vids: Sequence[int]) -> Sequence[int]:
        """Sorted-array merge intersection, most-selective-first."""
        postings = [self._sorted_posting(vid) for vid in vids]
        if not postings or any(not p for p in postings):
            return _EMPTY_POSTING
        postings.sort(key=len)
        result: Sequence[int] = postings[0]
        for posting in postings[1:]:
            result = intersect_sorted(result, posting)
            if not result:
                break
        return result

    # ------------------------------------------------------------------
    # Co-occurrence and PMI
    # ------------------------------------------------------------------
    def cooccurrence(self, u: AttributeValue, v: AttributeValue) -> int:
        """Records of ``DB_local`` containing both values.

        With ``track_cooccurrence`` enabled this is O(1); otherwise it
        falls back to intersecting posting lists.  A value co-occurs
        with itself in every record containing it.
        """
        lookup = self.interner.lookup
        uid, vid = lookup(u), lookup(v)
        if uid is None or vid is None:
            return 0
        return self.cooccurrence_ids(uid, vid)

    def cooccurrence_ids(self, u: int, v: int) -> int:
        """Id fast path of :meth:`cooccurrence`."""
        if u == v:
            return self.frequency_id(u)
        if self.track_cooccurrence:
            if u < len(self._cooc_rows):
                return self._cooc_rows[u].get(v, 0)
            return 0
        return len(intersect_sorted(self._sorted_posting(u), self._sorted_posting(v)))

    def cooc_row(self, vid: int) -> Dict[int, int]:
        """The vertex's **live** co-occurrence row ``{partner: joint}``.

        Zero-copy by design, like :meth:`neighbor_id_set`: the vectorized
        MMMI recompute bulk-loads each issued query's partners and joint
        counts straight out of the row.  Callers must treat it as
        read-only.  Empty unless ``track_cooccurrence`` is on.
        """
        if vid < len(self._cooc_rows):
            return self._cooc_rows[vid]
        return _EMPTY_ROW

    def pmi(self, u: AttributeValue, v: AttributeValue) -> float:
        """Pointwise mutual information ``ln P(u,v) / (P(u) P(v))``.

        The Definition 3.1 dependency signal.  Returns ``-inf`` when the
        values never co-occur locally, and ``-inf`` when either value is
        unseen (no evidence of dependency).
        """
        lookup = self.interner.lookup
        uid, vid = lookup(u), lookup(v)
        if uid is None or vid is None:
            return -math.inf
        return self.pmi_ids(uid, vid)

    def pmi_ids(self, u: int, v: int) -> float:
        """Id fast path of :meth:`pmi`."""
        n = len(self._records)
        if n == 0:
            return -math.inf
        joint = self.cooccurrence_ids(u, v)
        if joint == 0:
            return -math.inf
        return math.log(joint * n / (self._freq[u] * self._freq[v]))

    def dependency_score_ids(
        self, vid: int, queried_ids: Set[int], use_max: bool = True
    ) -> float:
        """Definition 3.1's ``s(q_i)`` over interned ids.

        The max (or mean) finite PMI of ``vid`` against the members of
        ``queried_ids`` it co-occurs with; ``-inf`` when it co-occurs
        with none.  Bit-for-bit equal to aggregating
        :meth:`pmi_ids` pairwise — same arithmetic in the same order —
        with the per-pair call overhead inlined away: this is the MMMI
        batch recompute's inner loop.
        """
        queried_neighbors = self._neighbor_sets[vid] & queried_ids
        if not queried_neighbors:
            return -math.inf
        n = len(self._records)
        if n == 0:
            return -math.inf
        freq = self._freq
        fu = freq[vid]
        log = math.log
        best = -math.inf
        total = 0.0
        count = 0
        if self.track_cooccurrence:
            row_get = self._cooc_rows[vid].get
            for v in queried_neighbors:
                joint = row_get(v, 0)
                if joint == 0:
                    continue
                p = log(joint * n / (fu * freq[v]))
                if p > best:
                    best = p
                total += p
                count += 1
        else:
            pmi_ids = self.pmi_ids
            for v in queried_neighbors:
                p = pmi_ids(vid, v)
                if p == -math.inf:
                    continue
                if p > best:
                    best = p
                total += p
                count += 1
        if use_max:
            return best
        if count == 0:
            return -math.inf
        return total / count

    # ------------------------------------------------------------------
    # Vocabulary
    # ------------------------------------------------------------------
    def distinct_values(self) -> List[AttributeValue]:
        """Every attribute value seen locally (vertices of ``G_local``).

        A shared interner may hold ids for values no harvested record
        contains (seeds, frontier candidates); those are *not* vertices
        of ``G_local`` and are filtered by frequency.
        """
        values = self.interner.values()
        return sorted(
            values[vid] for vid, count in enumerate(self._freq) if count
        )

    def num_distinct_values(self) -> int:
        return self._num_distinct

    def values_of_attribute(self, attribute: str) -> List[AttributeValue]:
        key = attribute.strip().lower()
        values = self.interner.values()
        return sorted(
            values[vid]
            for vid, count in enumerate(self._freq)
            if count and values[vid].attribute == key
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_table(self, schema, name: str = "harvest"):
        """Materialize the harvest as a :class:`RelationalTable`.

        The bridge between one crawl and the next: a previous harvest
        becomes a queryable table — persistable via :mod:`repro.io`, or
        fed to :func:`repro.domain.build_domain_table` so a *self*
        domain table bootstraps the re-crawl (the paper's "crawler may
        have already acquired access to structured content from some
        databases in the same domain" includes its own last run).

        Records whose attributes fall outside ``schema`` are rejected by
        the table's own validation, surfacing schema drift loudly.
        """
        from repro.core.table import RelationalTable

        table = RelationalTable(schema, name=name)
        for record_id in self.record_ids():
            table.insert(self._records[record_id])
        return table
