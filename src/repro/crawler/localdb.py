"""The crawler's local database ``DB_local`` and local graph ``G_local``.

Everything a query-selection policy may legitimately know lives here:
the records harvested so far, per-value frequencies (``num(q, DB_local)``),
the local attribute-value graph's degrees (the greedy link signal), and
pairwise co-occurrence counts (the MMMI mutual-information signal).

All statistics are maintained incrementally as records arrive, so policy
lookups are O(1) and adding a record costs O(c²) where ``c`` is the
record's clique size — the same asymptotics as inserting the record's
clique into ``G_local``.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set

from repro.core.records import Record
from repro.core.values import AttributeValue

#: Shared empty view returned for unknown keys (no per-call allocation).
_EMPTY_VIEW: frozenset = frozenset()


class LocalDatabase:
    """Deduplicated store of harvested records with incremental statistics.

    Parameters
    ----------
    track_cooccurrence:
        Maintain pairwise co-occurrence counts (needed by MMMI).  Off by
        default since the quadratic-in-clique bookkeeping is wasted on
        policies that never consult it.
    """

    def __init__(self, track_cooccurrence: bool = False) -> None:
        self._records: Dict[int, Record] = {}
        self._frequency: Dict[AttributeValue, int] = defaultdict(int)
        self._neighbors: Dict[AttributeValue, Set[AttributeValue]] = defaultdict(set)
        self._postings: Dict[AttributeValue, Set[int]] = defaultdict(set)
        self._keyword_postings: Dict[str, Set[int]] = defaultdict(set)
        self.track_cooccurrence = track_cooccurrence
        self._cooccurrence: Dict[frozenset, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, record: Record) -> bool:
        """Store a harvested record; returns False for duplicates.

        Duplicate detection is by record id — the simulated sources give
        every record a stable id, playing the role of the URL / ASIN a
        real extractor would dedupe on.
        """
        if record.record_id in self._records:
            return False
        self._records[record.record_id] = record
        clique = record.attribute_values()
        for pair in clique:
            self._frequency[pair] += 1
            self._postings[pair].add(record.record_id)
            self._keyword_postings[pair.value].add(record.record_id)
        for i in range(len(clique)):
            for j in range(i + 1, len(clique)):
                u, v = clique[i], clique[j]
                self._neighbors[u].add(v)
                self._neighbors[v].add(u)
                if self.track_cooccurrence:
                    self._cooccurrence[frozenset((u, v))] += 1
        return True

    def add_all(self, records: Iterable[Record]) -> int:
        """Add many records; returns how many were new."""
        return sum(1 for record in records if self.add(record))

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def record_ids(self) -> List[int]:
        return sorted(self._records)

    # ------------------------------------------------------------------
    # Statistics — what policies are allowed to see
    # ------------------------------------------------------------------
    def frequency(self, value: AttributeValue) -> int:
        """``num(value, DB_local)`` — matched records harvested so far."""
        return self._frequency.get(value, 0)

    def degree(self, value: AttributeValue) -> int:
        """Degree of ``value`` in the local AVG ``G_local``."""
        neighbors = self._neighbors.get(value)
        return 0 if neighbors is None else len(neighbors)

    def neighbors(self, value: AttributeValue) -> FrozenSet[AttributeValue]:
        """The value's neighbours in ``G_local`` (a copy-safe view).

        The returned set is immutable and detached from the index:
        callers can keep, compare, or combine it without any way of
        corrupting ``G_local``'s adjacency.
        """
        neighbors = self._neighbors.get(value)
        return frozenset(neighbors) if neighbors else _EMPTY_VIEW

    def matching_ids(self, value: AttributeValue) -> FrozenSet[int]:
        """Ids of local records containing ``value`` (a copy-safe view)."""
        ids = self._postings.get(value)
        return frozenset(ids) if ids else _EMPTY_VIEW

    def keyword_frequency(self, value: str) -> int:
        """Local records holding ``value`` under *any* attribute."""
        ids = self._keyword_postings.get(value)
        return 0 if ids is None else len(ids)

    def conjunctive_matching_ids(self, predicates) -> Set[int]:
        """Local records satisfying every predicate (posting intersection)."""
        postings = [self._postings.get(pair) for pair in predicates]
        if not postings or any(not p for p in postings):
            return set()
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def conjunctive_frequency(self, predicates) -> int:
        """``num(q, DB_local)`` for a conjunctive query."""
        return len(self.conjunctive_matching_ids(predicates))

    def cooccurrence(self, u: AttributeValue, v: AttributeValue) -> int:
        """Records of ``DB_local`` containing both values.

        With ``track_cooccurrence`` enabled this is O(1); otherwise it
        falls back to intersecting posting lists.  A value co-occurs
        with itself in every record containing it.
        """
        if u == v:
            return self._frequency.get(u, 0)
        if self.track_cooccurrence:
            return self._cooccurrence.get(frozenset((u, v)), 0)
        a, b = self._postings.get(u), self._postings.get(v)
        if not a or not b:
            return 0
        if len(a) > len(b):
            a, b = b, a
        return sum(1 for record_id in a if record_id in b)

    def pmi(self, u: AttributeValue, v: AttributeValue) -> float:
        """Pointwise mutual information ``ln P(u,v) / (P(u) P(v))``.

        The Definition 3.1 dependency signal.  Returns ``-inf`` when the
        values never co-occur locally, and ``-inf`` when either value is
        unseen (no evidence of dependency).
        """
        n = len(self._records)
        if n == 0:
            return -math.inf
        joint = self.cooccurrence(u, v)
        if joint == 0:
            return -math.inf
        fu, fv = self._frequency.get(u, 0), self._frequency.get(v, 0)
        return math.log(joint * n / (fu * fv))

    def distinct_values(self) -> List[AttributeValue]:
        """Every attribute value seen locally (vertices of ``G_local``)."""
        return sorted(self._frequency)

    def num_distinct_values(self) -> int:
        return len(self._frequency)

    def values_of_attribute(self, attribute: str) -> List[AttributeValue]:
        key = attribute.strip().lower()
        return sorted(v for v in self._frequency if v.attribute == key)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_table(self, schema, name: str = "harvest"):
        """Materialize the harvest as a :class:`RelationalTable`.

        The bridge between one crawl and the next: a previous harvest
        becomes a queryable table — persistable via :mod:`repro.io`, or
        fed to :func:`repro.domain.build_domain_table` so a *self*
        domain table bootstraps the re-crawl (the paper's "crawler may
        have already acquired access to structured content from some
        databases in the same domain" includes its own last run).

        Records whose attributes fall outside ``schema`` are rejected by
        the table's own validation, surfacing schema drift loudly.
        """
        from repro.core.table import RelationalTable

        table = RelationalTable(schema, name=name)
        for record_id in self.record_ids():
            table.insert(self._records[record_id])
        return table
