"""Crawl progress metrics: coverage-versus-cost curves.

Every figure in the paper's evaluation is a view over one underlying
series — distinct records harvested as a function of communication
rounds.  :class:`CrawlHistory` stores that series compactly (one point
per executed query) and answers the two inverse lookups the figures
need: *rounds to reach a coverage level* (Figure 3/4's axes) and
*coverage after a round budget* (Figure 5/6's axes).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class CoveragePoint:
    """Snapshot after one query completed."""

    rounds: int
    records: int  # distinct records in DB_local


@dataclass
class CrawlHistory:
    """Monotone series of :class:`CoveragePoint` with interpolation helpers.

    Points are appended in crawl order; both coordinates are
    non-decreasing, which the ``append`` method enforces.
    """

    points: List[CoveragePoint] = field(default_factory=list)

    def append(self, rounds: int, records: int) -> None:
        if self.points:
            last = self.points[-1]
            if rounds < last.rounds or records < last.records:
                raise ValueError(
                    f"history must be monotone: ({rounds}, {records}) after "
                    f"({last.rounds}, {last.records})"
                )
        self.points.append(CoveragePoint(rounds, records))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def final_rounds(self) -> int:
        return self.points[-1].rounds if self.points else 0

    @property
    def final_records(self) -> int:
        return self.points[-1].records if self.points else 0

    # ------------------------------------------------------------------
    # Figure 3 / 4 axis: cost to reach a coverage level
    # ------------------------------------------------------------------
    def rounds_to_records(self, target_records: int) -> Optional[int]:
        """Rounds spent when the record count first reached the target.

        Returns None if the crawl never got there.  Conservative: the
        crawler is charged the full cost of the query that crossed the
        threshold (coverage is only observable between queries).
        """
        if target_records <= 0:
            return 0
        counts = [p.records for p in self.points]
        index = bisect.bisect_left(counts, target_records)
        if index == len(self.points):
            return None
        return self.points[index].rounds

    def rounds_to_coverage(self, coverage: float, database_size: int) -> Optional[int]:
        """Rounds to first reach ``coverage`` of a ``database_size`` source."""
        import math

        return self.rounds_to_records(math.ceil(coverage * database_size))

    # ------------------------------------------------------------------
    # Figure 5 / 6 axis: coverage within a round budget
    # ------------------------------------------------------------------
    def records_at_rounds(self, budget: int) -> int:
        """Distinct records held after at most ``budget`` rounds."""
        if budget < 0:
            return 0
        rounds = [p.rounds for p in self.points]
        index = bisect.bisect_right(rounds, budget)
        if index == 0:
            return 0
        return self.points[index - 1].records

    def coverage_at_rounds(self, budget: int, database_size: int) -> float:
        if database_size <= 0:
            return 0.0
        return self.records_at_rounds(budget) / database_size

    def coverage_series(
        self, checkpoints: Sequence[int], database_size: int
    ) -> List[float]:
        """Coverage sampled at each round checkpoint (Figure 5's snapshots)."""
        return [self.coverage_at_rounds(c, database_size) for c in checkpoints]

    def cost_series(
        self, coverage_levels: Sequence[float], database_size: int
    ) -> List[Optional[int]]:
        """Rounds needed for each coverage level (Figure 3's series)."""
        return [self.rounds_to_coverage(c, database_size) for c in coverage_levels]
