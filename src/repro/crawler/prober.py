"""The Database Prober — issues one query and pages through its results.

Section 2.5's Database Prober module sits between the Query Selector
and the web source: it submits the chosen query, requests result pages
one communication round at a time, hands each page to the Result
Extractor, and consults the abortion policy (Section 3.4) before paying
for the next page.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import UnsupportedQueryError
from repro.core.query import AnyQuery, ConjunctiveQuery
from repro.core.records import Record
from repro.crawler.abortion import AbortionPolicy, NeverAbort, PageProgress
from repro.crawler.extractor import ResultExtractor
from repro.crawler.localdb import LocalDatabase
from repro.core.values import AttributeValue
from repro.runtime.events import (
    EventBus,
    PageFetched,
    QueryAborted,
    QueryFailed,
    QueryIssued,
    QueryRejected,
)
from repro.server.flaky import (
    ExponentialBackoff,
    PermanentServerFailure,
    submit_with_retries,
)
from repro.server.service import parse_page
from repro.server.webdb import SimulatedWebDatabase


@dataclass
class QueryOutcome:
    """Everything one executed query produced.

    ``new_records`` are the records not previously in ``DB_local`` (in
    arrival order); ``candidate_values`` the queriable values decomposed
    from *all* returned records (new and duplicate alike — a duplicate
    record can still carry a value discovered for the first time when
    interfaces changed, so decomposition never filters by novelty).
    """

    query: AnyQuery
    pages_fetched: int = 0
    records_returned: int = 0
    new_records: List[Record] = field(default_factory=list)
    candidate_values: List[AttributeValue] = field(default_factory=list)
    #: Interned ids mirroring ``candidate_values`` 1:1 when the
    #: extractor shares ``DB_local``'s interner, else None.  In-process
    #: acceleration only: never journaled, and replayed outcomes carry
    #: None (consumers must treat the values as authoritative).
    candidate_ids: Optional[List[int]] = None
    total_matches: Optional[int] = None
    accessible_matches: int = 0
    aborted: bool = False
    rejected: bool = False
    #: The query died on repeated transient failures (retries exhausted);
    #: pages fetched before the failure were still harvested.
    failed: bool = False

    @property
    def harvest_rate(self) -> float:
        """Realized harvest rate: new records per page actually paid for."""
        if self.pages_fetched == 0:
            return 0.0
        return len(self.new_records) / self.pages_fetched


class DatabaseProber:
    """Executes queries against one simulated source.

    Parameters
    ----------
    server:
        The target web database.
    extractor:
        Parses pages and decomposes records into candidate values.
    local_db:
        ``DB_local``; records are inserted as pages arrive so the
        abortion policy sees up-to-date duplicate counts.
    abortion:
        Page-fetch abortion policy; defaults to fetching everything.
    use_xml:
        Exercise the XML wire format (render + parse per page) instead
        of passing result objects directly; identical semantics, used by
        integration tests and the Amazon-style experiments.
    bus:
        Event bus to announce wire activity on (defaults to a silent
        bus; see :mod:`repro.runtime.events`).
    backoff:
        Retry backoff schedule for transient failures (only consulted
        when ``max_retries > 0``).
    retry_rng:
        RNG feeding the backoff jitter; owned (and checkpointed) by the
        engine so retry streams survive resume.
    """

    def __init__(
        self,
        server: SimulatedWebDatabase,
        extractor: ResultExtractor,
        local_db: LocalDatabase,
        abortion: Optional[AbortionPolicy] = None,
        use_xml: bool = False,
        max_retries: int = 0,
        bus: Optional[EventBus] = None,
        backoff: Optional[ExponentialBackoff] = None,
        retry_rng: Optional[random.Random] = None,
        policy: Optional[str] = None,
    ) -> None:
        self.server = server
        self.extractor = extractor
        self.local_db = local_db
        self.abortion = abortion or NeverAbort()
        self.use_xml = use_xml
        self.max_retries = max_retries
        self.bus = bus or EventBus()
        self.backoff = backoff
        self.retry_rng = retry_rng
        self.policy = policy
        # Per-execute() extraction timings, read by the engine to emit
        # the "extract" trace phase.  Only accumulated while a tracing
        # sink is attached (bus.has_tracers).
        self.last_extract_wall = 0.0
        self.last_extract_cpu = 0.0

    def execute(self, query: AnyQuery) -> QueryOutcome:
        """Run ``query`` to completion (or abortion) and return the outcome.

        A query the interface rejects costs nothing and is marked
        ``rejected`` — the crawler simply skips the candidate, the way a
        form that lacks the field cannot be submitted at all.
        """
        outcome = QueryOutcome(query=query)
        known_matches = self._known_matches(query)
        progress = PageProgress()
        page_number = 1
        announce = self.bus.has_sinks
        tracing = self.bus.has_tracers
        if tracing:
            self.last_extract_wall = 0.0
            self.last_extract_cpu = 0.0
        if announce:
            self.bus.emit(QueryIssued(query=query), policy=self.policy)
        while True:
            try:
                meta = self._fetch(query, page_number)
            except UnsupportedQueryError:
                outcome.rejected = True
                if announce:
                    self.bus.emit(QueryRejected(query=query), policy=self.policy)
                return outcome
            except PermanentServerFailure:
                # Retries exhausted mid-query: keep what was harvested,
                # flag the query, and let the crawl move on.
                outcome.failed = True
                if announce:
                    self.bus.emit(
                        QueryFailed(
                            query=query, pages_fetched=outcome.pages_fetched
                        ),
                        policy=self.policy,
                    )
                return outcome
            if tracing:
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                page = self.extractor.extract(meta)
                self.last_extract_wall += time.perf_counter() - wall0
                self.last_extract_cpu += time.process_time() - cpu0
            else:
                page = self.extractor.extract(meta)
            outcome.pages_fetched += 1
            outcome.records_returned += len(page.records)
            outcome.total_matches = meta.total_matches
            outcome.accessible_matches = meta.accessible_matches
            clique_ids = page.clique_ids
            if clique_ids is not None:
                # Interned DB_local: hand over the ids the extractor
                # already computed so add() skips re-hashing the clique.
                add = self.local_db.add
                new_here = [
                    r
                    for r, ids in zip(page.records, clique_ids)
                    if add(r, ids)
                ]
            else:
                new_here = [r for r in page.records if self.local_db.add(r)]
            outcome.new_records.extend(new_here)
            outcome.candidate_values.extend(page.candidate_values)
            if page.candidate_ids is not None:
                if outcome.candidate_ids is None:
                    outcome.candidate_ids = list(page.candidate_ids)
                else:
                    outcome.candidate_ids.extend(page.candidate_ids)
            progress.update(len(page.records), len(new_here))
            if announce:
                self.bus.emit(
                    PageFetched(
                        query=query,
                        page_number=page_number,
                        records=len(page.records),
                        new_records=len(new_here),
                    ),
                    policy=self.policy,
                )
            if not meta.has_next:
                break
            if self.abortion.should_abort(meta, progress, known_matches):
                outcome.aborted = True
                if announce:
                    self.bus.emit(
                        QueryAborted(
                            query=query,
                            pages_fetched=outcome.pages_fetched,
                            pages_saved=max(
                                meta.num_pages - meta.page_number, 0
                            ),
                        ),
                        policy=self.policy,
                    )
                break
            page_number += 1
        return outcome

    def _fetch(self, query: AnyQuery, page_number: int):
        """One page request, with transient-failure retries when enabled."""
        if self.max_retries > 0:
            emit = None
            if self.bus.has_sinks:
                emit = lambda event: self.bus.emit(event, policy=self.policy)
            meta = submit_with_retries(
                self.server,
                query,
                page_number,
                max_retries=self.max_retries,
                rng=self.retry_rng,
                backoff=self.backoff,
                emit=emit,
            )
            if self.use_xml:
                # Exercise the wire format on the successful response.
                from repro.server.service import render_page

                return parse_page(render_page(meta))
            return meta
        if self.use_xml:
            return parse_page(self.server.submit_xml(query, page_number))
        return self.server.submit(query, page_number)

    def _known_matches(self, query: AnyQuery) -> int:
        """``num(q, DB_local)`` before the query runs."""
        if isinstance(query, ConjunctiveQuery):
            return self.local_db.conjunctive_frequency(query.predicates)
        if query.is_keyword:
            return self.local_db.keyword_frequency(query.value)
        return self.local_db.frequency(query.as_attribute_value())
