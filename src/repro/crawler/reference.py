"""The pre-interning ``DB_local`` — retained as a differential oracle.

This is the pure-dict implementation :class:`~repro.crawler.localdb.
LocalDatabase` had before the dense-interning rewrite: every statistic
keyed directly by :class:`~repro.core.values.AttributeValue`, postings
as ``set`` of ints, co-occurrence as ``frozenset``-pair counters.  It is
kept verbatim for two jobs:

- the differential property tests
  (``tests/crawler/test_localdb_differential.py``) feed identical
  record streams to both implementations and assert every statistic
  matches, so the interned hot path can never silently drift; and
- the hot-path benchmark (``benchmarks/test_hotpath_speedup.py``)
  crawls with ``CrawlerEngine(..., local_db=ReferenceLocalDatabase(...))``
  to measure the speedup against the exact pre-rewrite behaviour —
  selectors detect the missing ``interner`` attribute and fall back to
  their original value-keyed scoring paths.

Do not "optimize" this module; its value is being the slow, obviously
correct baseline.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set

from repro.core.records import Record
from repro.core.values import AttributeValue

#: Shared empty view returned for unknown keys (no per-call allocation).
_EMPTY_VIEW: frozenset = frozenset()


class ReferenceLocalDatabase:
    """Deduplicated store of harvested records with incremental statistics.

    Same public surface as :class:`~repro.crawler.localdb.LocalDatabase`
    (minus the id-based fast paths), same semantics, dict-keyed
    throughout.
    """

    def __init__(self, track_cooccurrence: bool = False) -> None:
        self._records: Dict[int, Record] = {}
        self._frequency: Dict[AttributeValue, int] = defaultdict(int)
        self._neighbors: Dict[AttributeValue, Set[AttributeValue]] = defaultdict(set)
        self._postings: Dict[AttributeValue, Set[int]] = defaultdict(set)
        self._keyword_postings: Dict[str, Set[int]] = defaultdict(set)
        self.track_cooccurrence = track_cooccurrence
        self._cooccurrence: Dict[frozenset, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, record: Record) -> bool:
        """Store a harvested record; returns False for duplicates."""
        if record.record_id in self._records:
            return False
        self._records[record.record_id] = record
        clique = record.attribute_values()
        for pair in clique:
            self._frequency[pair] += 1
            self._postings[pair].add(record.record_id)
            self._keyword_postings[pair.value].add(record.record_id)
        for i in range(len(clique)):
            for j in range(i + 1, len(clique)):
                u, v = clique[i], clique[j]
                self._neighbors[u].add(v)
                self._neighbors[v].add(u)
                if self.track_cooccurrence:
                    self._cooccurrence[frozenset((u, v))] += 1
        return True

    def add_all(self, records: Iterable[Record]) -> int:
        return sum(1 for record in records if self.add(record))

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def record_ids(self) -> List[int]:
        return sorted(self._records)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def frequency(self, value: AttributeValue) -> int:
        return self._frequency.get(value, 0)

    def degree(self, value: AttributeValue) -> int:
        neighbors = self._neighbors.get(value)
        return 0 if neighbors is None else len(neighbors)

    def neighbors(self, value: AttributeValue) -> FrozenSet[AttributeValue]:
        neighbors = self._neighbors.get(value)
        return frozenset(neighbors) if neighbors else _EMPTY_VIEW

    def matching_ids(self, value: AttributeValue) -> FrozenSet[int]:
        ids = self._postings.get(value)
        return frozenset(ids) if ids else _EMPTY_VIEW

    def keyword_frequency(self, value: str) -> int:
        ids = self._keyword_postings.get(value)
        return 0 if ids is None else len(ids)

    def conjunctive_matching_ids(self, predicates) -> Set[int]:
        postings = [self._postings.get(pair) for pair in predicates]
        if not postings or any(not p for p in postings):
            return set()
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def conjunctive_frequency(self, predicates) -> int:
        return len(self.conjunctive_matching_ids(predicates))

    def cooccurrence(self, u: AttributeValue, v: AttributeValue) -> int:
        if u == v:
            return self._frequency.get(u, 0)
        if self.track_cooccurrence:
            return self._cooccurrence.get(frozenset((u, v)), 0)
        a, b = self._postings.get(u), self._postings.get(v)
        if not a or not b:
            return 0
        if len(a) > len(b):
            a, b = b, a
        return sum(1 for record_id in a if record_id in b)

    def pmi(self, u: AttributeValue, v: AttributeValue) -> float:
        n = len(self._records)
        if n == 0:
            return -math.inf
        joint = self.cooccurrence(u, v)
        if joint == 0:
            return -math.inf
        fu, fv = self._frequency.get(u, 0), self._frequency.get(v, 0)
        return math.log(joint * n / (fu * fv))

    def distinct_values(self) -> List[AttributeValue]:
        return sorted(self._frequency)

    def num_distinct_values(self) -> int:
        return len(self._frequency)

    def values_of_attribute(self, attribute: str) -> List[AttributeValue]:
        key = attribute.strip().lower()
        return sorted(v for v in self._frequency if v.attribute == key)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_table(self, schema, name: str = "harvest"):
        from repro.core.table import RelationalTable

        table = RelationalTable(schema, name=name)
        for record_id in self.record_ids():
            table.insert(self._records[record_id])
        return table
