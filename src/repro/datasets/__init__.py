"""Synthetic datasets: eBay, ACM, DBLP, IMDB, Amazon DVD, interface corpus."""

from repro.datasets.cars import CAR_SCHEMA, car_interface, generate_cars
from repro.datasets.ebay import EBAY_SCHEMA, generate_ebay
from repro.datasets.interfaces import (
    SourceProfile,
    TABLE1_PROFILES,
    TABLE1_REPOSITORY,
    generate_interface_corpus,
)
from repro.datasets.movies import (
    AMAZON_DVD_SCHEMA,
    IMDB_DT_ATTRIBUTES,
    IMDB_SCHEMA,
    IMDB_TO_AMAZON,
    Movie,
    MovieUniverse,
    generate_amazon_dvd,
    generate_imdb,
    imdb_table_from_movies,
)
from repro.datasets.registry import (
    DatasetInfo,
    dataset_info,
    dataset_names,
    load_dataset,
)
from repro.datasets.scholarly import (
    ACM_SCHEMA,
    DBLP_SCHEMA,
    generate_acm,
    generate_dblp,
)
from repro.datasets.zipf import ZipfSampler, choose_zipf, pareto_int

__all__ = [
    "ACM_SCHEMA",
    "AMAZON_DVD_SCHEMA",
    "CAR_SCHEMA",
    "DBLP_SCHEMA",
    "DatasetInfo",
    "EBAY_SCHEMA",
    "IMDB_DT_ATTRIBUTES",
    "IMDB_SCHEMA",
    "IMDB_TO_AMAZON",
    "Movie",
    "MovieUniverse",
    "SourceProfile",
    "TABLE1_PROFILES",
    "TABLE1_REPOSITORY",
    "ZipfSampler",
    "car_interface",
    "choose_zipf",
    "dataset_info",
    "dataset_names",
    "generate_acm",
    "generate_amazon_dvd",
    "generate_cars",
    "generate_dblp",
    "generate_ebay",
    "generate_imdb",
    "generate_interface_corpus",
    "imdb_table_from_movies",
    "load_dataset",
    "pareto_int",
]
