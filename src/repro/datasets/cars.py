"""Synthetic used-car database with a restrictive multi-attribute form.

Table 1's Car domain is the paper's example of sources where "most
query forms are highly structured and restrictive in the sense that
only multi-attribute queries are accepted" (K.W. 14%, S.Q.M. 58%) —
and crawling them is left as future work, which :mod:`repro.policies.multi`
implements.  This generator produces that workload: listings over
``make / model / year / price / location`` where models nest under
makes (a model string implies its make) and the interface demands at
least two predicates per query, e.g. make *and* model.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.errors import DatasetError
from repro.core.schema import Schema
from repro.core.table import RelationalTable
from repro.datasets import names
from repro.datasets.zipf import ZipfSampler
from repro.server.interface import QueryInterface

CAR_SCHEMA = Schema.of(
    "make",
    "model",
    "year",
    "price",
    "location",
    title={"queriable": False},
)

_MAKES = (
    "toyota honda ford chevrolet nissan volkswagen hyundai bmw mercedes audi "
    "kia mazda subaru volvo lexus jeep porsche fiat renault peugeot"
).split()


def car_interface(min_predicates: int = 2, name: str = "cars") -> QueryInterface:
    """The restrictive form: equality on any attributes, ≥ 2 at a time."""
    return QueryInterface(
        frozenset(CAR_SCHEMA.queriable),
        supports_keyword=False,
        name=name,
        min_predicates=min_predicates,
    )


def generate_cars(n_records: int = 4000, seed: int = 0) -> RelationalTable:
    """Generate ``n_records`` used-car listings."""
    if n_records < 1:
        raise DatasetError(f"need at least one record, got {n_records}")
    rng = random.Random(seed)

    models_per_make = 12
    model_names = names.titles(len(_MAKES) * models_per_make)
    make_sampler = ZipfSampler(len(_MAKES), 1.0)
    model_sampler = ZipfSampler(models_per_make, 0.9)
    n_locations = min(max(n_records // 12, 10), 600)
    locations = names.cities(n_locations)
    location_sampler = ZipfSampler(n_locations, 0.9)
    prices = names.price_buckets(12)
    titles = names.titles(n_records)

    rows: List[dict] = []
    for i in range(n_records):
        make_rank = make_sampler.sample(rng)
        make = _MAKES[make_rank]
        # Models nest under makes: model strings are globally unique so a
        # (make, model) conjunction is exactly a model listing page.
        model_rank = model_sampler.sample(rng)
        model = model_names[make_rank * models_per_make + model_rank]
        year = str(int(rng.triangular(1992, 2006, 2003)))
        rows.append(
            {
                "make": make,
                "model": model,
                "year": year,
                "price": prices[min(rng.randrange(len(prices)), len(prices) - 1)],
                "location": locations[location_sampler.sample(rng)],
                "title": titles[i],
            }
        )
    table = RelationalTable(CAR_SCHEMA, name="cars")
    table.insert_rows(rows)
    return table
