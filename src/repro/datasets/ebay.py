"""Synthetic eBay auction database.

The paper's controlled eBay dataset holds 20,000 auction items queriable
by ``Categories, Seller, Location, Price`` and exposes ~23,000 distinct
attribute values (Table 2) — more than one per record, which tells us
the interface values are fine-grained: most sellers list only an item
or two (with a Zipf head of power sellers), locations are city-level,
prices are dollar amounts with popular price points ($9.99) as mild
hubs, and categories form the broadest grouping.  The generator
reproduces exactly that profile so the attribute-value graph has a few
genuine hubs over a long singleton tail.
"""

from __future__ import annotations

import random

from repro.core.errors import DatasetError
from repro.core.schema import Schema
from repro.core.table import RelationalTable
from repro.datasets import names
from repro.datasets.zipf import ZipfSampler

#: Table 2's eBay interface: four queriable attributes (+ display title).
EBAY_SCHEMA = Schema.of(
    "categories",
    "seller",
    "location",
    "price",
    title={"queriable": False},
)

#: Popular "charm" price points — the price attribute's hubs.
_POPULAR_PRICES = (
    "$0.99", "$4.99", "$9.99", "$14.99", "$19.99", "$24.99",
    "$29.99", "$49.99", "$99.99", "$199.99",
)


def _price(rng: random.Random, price_sampler: ZipfSampler) -> str:
    """A charm price point (40%) or a long-tail dollar amount (60%)."""
    if rng.random() < 0.4:
        return _POPULAR_PRICES[price_sampler.sample(rng)]
    dollars = int(rng.lognormvariate(3.0, 1.2)) + 1
    cents = rng.choice((0, 0, 50, 95, 99))
    return f"${dollars}.{cents:02d}"


def generate_ebay(n_records: int = 5000, seed: int = 0) -> RelationalTable:
    """Generate an auction table of ``n_records`` items."""
    if n_records < 1:
        raise DatasetError(f"need at least one record, got {n_records}")
    rng = random.Random(seed)

    n_sellers = max(int(n_records / 1.6), 10)
    n_categories = min(max(n_records // 25, 12), 1500)
    n_locations = min(max(n_records // 8, 15), 4000)
    sellers = names.usernames(n_sellers)
    categories = names.subjects(n_categories)
    locations = names.cities(n_locations)
    titles = names.titles(n_records)

    seller_sampler = ZipfSampler(n_sellers, 0.9)
    category_sampler = ZipfSampler(n_categories, 0.85)
    location_sampler = ZipfSampler(n_locations, 0.9)
    price_sampler = ZipfSampler(len(_POPULAR_PRICES), 0.8)

    rows = []
    for i in range(n_records):
        seller_rank = seller_sampler.sample(rng)
        seller = sellers[seller_rank]
        # Sellers specialize and ship from one place: a seller's items
        # cluster in a home category (75%) and home city (90%).  This is
        # the attribute-value dependency of Section 3.3 — after the
        # seller is queried, its category and location are mostly
        # duplicates, which only a dependency-aware policy can foresee.
        if rng.random() < 0.75:
            category = categories[(seller_rank * 31) % n_categories]
        else:
            category = categories[category_sampler.sample(rng)]
        if rng.random() < 0.9:
            location = locations[(seller_rank * 17) % n_locations]
        else:
            location = locations[location_sampler.sample(rng)]
        rows.append(
            {
                "categories": category,
                "seller": seller,
                "location": location,
                "price": _price(rng, price_sampler),
                "title": titles[i],
            }
        )
    table = RelationalTable(EBAY_SCHEMA, name="ebay")
    table.insert_rows(rows)
    return table
