"""Synthetic web-source interface corpus — the Table 1 case study.

The paper manually examined 480 sources from 11 domains (5 via the UIUC
Web Repository, 6 via Bizrate.com) and reported, per domain, what
percentage supports keyword search (K.W.) and what percentage is
modellable by the simplified single-predicate query model (S.Q.M.).
Since the original site survey cannot be re-run offline, this module
generates a corpus of source profiles whose per-domain capability
*composition* is calibrated to the paper's percentages; the Table 1
harness then runs the same classification over the corpus and tallies
the table.  Deterministic rounding keeps the regenerated percentages
within one source of the paper's values at the paper's corpus sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import DatasetError
from repro.server.interface import QueryInterface

#: Paper-reported (K.W. %, S.Q.M. %) per domain — Table 1 ground truth.
TABLE1_PROFILES: Dict[str, Tuple[int, int]] = {
    # UIUC Web Repository (left table, 5 domains).
    "book": (82, 100),
    "job": (98, 96),
    "movie": (63, 100),
    "car": (14, 58),
    "music": (65, 100),
    # Bizrate.com (right table, 6 domains).
    "dvd": (78, 96),
    "electronic": (96, 96),
    "computer": (100, 100),
    "games": (91, 96),
    "appliance": (100, 100),
    "jewellery": (96, 100),
}

#: Which repository each domain came from.
TABLE1_REPOSITORY: Dict[str, str] = {
    "book": "uiuc",
    "job": "uiuc",
    "movie": "uiuc",
    "car": "uiuc",
    "music": "uiuc",
    "dvd": "bizrate",
    "electronic": "bizrate",
    "computer": "bizrate",
    "games": "bizrate",
    "appliance": "bizrate",
    "jewellery": "bizrate",
}

#: Typical queriable attributes per domain (for building interfaces).
_DOMAIN_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "book": ("title", "author", "isbn", "publisher"),
    "job": ("title", "company", "location", "category"),
    "movie": ("title", "actor", "director", "genre"),
    "car": ("make", "model", "year", "price", "location"),
    "music": ("title", "artist", "album", "label"),
    "dvd": ("title", "actor", "director", "studio"),
    "electronic": ("brand", "model", "category", "price"),
    "computer": ("brand", "model", "processor", "price"),
    "games": ("title", "platform", "publisher", "genre"),
    "appliance": ("brand", "model", "category", "price"),
    "jewellery": ("brand", "material", "category", "price"),
}


@dataclass(frozen=True)
class SourceProfile:
    """One surveyed web source's query capabilities."""

    domain: str
    name: str
    supports_keyword: bool
    single_attribute_queriable: bool

    def interface(self) -> Optional[QueryInterface]:
        """Materialize a :class:`QueryInterface` for crawlable sources.

        Sources that require multi-attribute queries (not S.Q.M.) have
        no single-predicate interface at all and return None — they are
        exactly the sources the paper leaves to future work.
        """
        attributes = _DOMAIN_ATTRIBUTES[self.domain]
        if self.single_attribute_queriable:
            return QueryInterface(
                frozenset(attributes), self.supports_keyword, name=self.name
            )
        if self.supports_keyword:
            return QueryInterface.keyword_only(name=self.name)
        return None


def generate_interface_corpus(
    sources_per_domain: int = 25, seed: int = 0
) -> List[SourceProfile]:
    """Generate the survey corpus.

    Per domain, exactly ``round(pct/100 * n)`` sources get each
    capability; the assignment of capabilities to sources is shuffled
    but the counts are deterministic, so the Table 1 harness reproduces
    the paper's percentages up to rounding at any corpus size.
    """
    if sources_per_domain < 1:
        raise DatasetError("need at least one source per domain")
    rng = random.Random(seed)
    corpus: List[SourceProfile] = []
    for domain, (kw_pct, sqm_pct) in TABLE1_PROFILES.items():
        n = sources_per_domain
        n_kw = round(kw_pct / 100 * n)
        n_sqm = round(sqm_pct / 100 * n)
        order = list(range(n))
        rng.shuffle(order)
        kw_sources = set(order[:n_kw])
        # S.Q.M. preferentially covers the keyword sources: a keyword box
        # already satisfies the simplified query model, so an S.Q.M. count
        # below the K.W. count would be internally inconsistent after
        # classification.  (Domains where the paper reports K.W. > S.Q.M.,
        # like Job at 98/96, retain that rounding-level inconsistency.)
        sqm_order = sorted(order, key=lambda i: i not in kw_sources)
        sqm_sources = set(sqm_order[:n_sqm])
        kw_flags = [i in kw_sources for i in range(n)]
        sqm_flags = [i in sqm_sources for i in range(n)]
        for i in range(n):
            corpus.append(
                SourceProfile(
                    domain=domain,
                    name=f"{domain}-store-{i:03d}",
                    supports_keyword=kw_flags[i],
                    single_attribute_queriable=sqm_flags[i],
                )
            )
    return corpus
