"""The movie domain: a shared universe feeding IMDB and an Amazon DVD store.

The paper's domain-knowledge experiments rely on two *different but
same-domain* databases: the Internet Movie Database supplies the domain
statistics table used to crawl the Amazon DVD catalogue.  For the
substitution to preserve that experiment's structure, both synthetic
databases must share a value universe with overlapping-but-unequal
content and comparable value distributions.

:class:`MovieUniverse` generates one population of movies (people,
studios, languages, genres, years).  ``generate_imdb`` tabulates the
whole universe under IMDB's interface schema (the paper's Table 2
attributes).  ``generate_amazon_dvd`` draws a recency-biased catalogue
subset — plus a slice of store-exclusive titles IMDB has never heard of
— under a retailer schema with different attribute names, so the
attribute-mapping path of the domain-table builder is exercised for
real.

Collaboration structure matters for MMMI: casts are drawn with a
community bias (co-stars tend to come from the same community), which
creates exactly the attribute-value dependency Section 3.3 targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.errors import DatasetError
from repro.core.schema import Schema
from repro.core.table import RelationalTable
from repro.datasets import names
from repro.datasets.zipf import ZipfSampler, pareto_int


@dataclass(frozen=True)
class Movie:
    """One movie of the universe (pre-tabular representation)."""

    title: str
    year: int
    actors: tuple[str, ...]
    actresses: tuple[str, ...]
    director: str
    editor: str
    producer: str
    costumer: str
    composer: str
    photographer: str
    language: str
    company: str
    release_location: str
    genres: tuple[str, ...]


class _CommunityCast:
    """Draws collaborator groups with Zipf popularity + community bias."""

    def __init__(
        self,
        pool: Sequence[str],
        exponent: float,
        communities: int,
        affinity: float = 0.7,
    ) -> None:
        if not pool:
            raise DatasetError("empty person pool")
        self.pool = list(pool)
        self.sampler = ZipfSampler(len(pool), exponent)
        self.communities = max(communities, 1)
        self.affinity = affinity

    def _community(self, index: int) -> int:
        # Interleaved assignment: every community holds popular and
        # obscure members alike.
        return index % self.communities

    def draw(self, rng: random.Random, count: int) -> tuple[str, ...]:
        """Draw ``count`` distinct collaborators around a Zipf-picked lead."""
        count = min(count, len(self.pool))
        lead = self.sampler.sample(rng)
        chosen = {lead}
        community = self._community(lead)
        attempts = 0
        while len(chosen) < count and attempts < 50 * count:
            attempts += 1
            if rng.random() < self.affinity:
                # Same-community pick: jump by community stride.
                hop = self.sampler.sample(rng)
                candidate = (hop - hop % self.communities) + community
                if candidate >= len(self.pool):
                    candidate = community
            else:
                candidate = self.sampler.sample(rng)
            chosen.add(candidate)
        return tuple(self.pool[i] for i in sorted(chosen))


class MovieUniverse:
    """A reproducible population of movies shared by IMDB and the store.

    Parameters
    ----------
    n_movies:
        Universe size (the paper's IMDB snapshot holds 400k movies).
    seed:
        Master randomness seed.
    obscure_fraction:
        Share of movies whose entire cast is one-off people appearing in
        no other movie.  Those movies are still connected inside IMDB
        (through company / language / location hubs, which IMDB's rich
        interface can query) but form **data islands** under a
        people-and-title-only retail interface — exactly the paper's
        Limitation 2, and the structural reason a relational-link
        crawler plateaus on the DVD store while the domain-knowledge
        crawler keeps jumping islands through domain-table values.
    """

    def __init__(
        self,
        n_movies: int = 5000,
        seed: int = 0,
        obscure_fraction: float = 0.3,
        actor_director_fraction: float = 0.15,
    ) -> None:
        if n_movies < 1:
            raise DatasetError(f"need at least one movie, got {n_movies}")
        if not 0.0 <= obscure_fraction < 1.0:
            raise DatasetError("obscure_fraction must be in [0, 1)")
        if not 0.0 <= actor_director_fraction <= 1.0:
            raise DatasetError("actor_director_fraction must be in [0, 1]")
        self.n_movies = n_movies
        self.seed = seed
        self.obscure_fraction = obscure_fraction
        #: Share of (non-obscure) movies directed by someone from the
        #: actor pool.  Actor-directors make the same *string* appear
        #: under two attributes — the structure that gives keyword
        #: ("fading schema") interfaces their extra reach.
        self.actor_director_fraction = actor_director_fraction
        self._obscure_cursor = 10_000_000  # index space far past the pools
        rng = random.Random(seed)

        n_actors = max(n_movies // 2, 30)
        n_actresses = max(n_movies // 3, 20)
        n_crew = max(n_movies // 8, 10)
        actor_pool = names.person_names(n_actors + n_actresses + 5 * n_crew)
        self._actors = _CommunityCast(
            actor_pool[:n_actors], exponent=1.1, communities=max(n_actors // 40, 1)
        )
        self._actresses = _CommunityCast(
            actor_pool[n_actors : n_actors + n_actresses],
            exponent=1.1,
            communities=max(n_actresses // 40, 1),
        )
        crew_pool = actor_pool[n_actors + n_actresses :]
        self._crew = {
            role: (
                crew_pool[i * n_crew : (i + 1) * n_crew],
                ZipfSampler(n_crew, 1.0),
            )
            for i, role in enumerate(
                ("director", "editor", "producer", "composer", "photographer")
            )
        }
        n_costumers = max(n_crew // 2, 5)
        self._costumers = (
            names.usernames(n_costumers),
            ZipfSampler(n_costumers, 0.9),
        )
        self._titles = names.titles(n_movies)
        self._languages = names.languages(20)
        self._language_sampler = ZipfSampler(20, 1.4)
        n_companies = max(n_movies // 50, 8)
        self._companies = names.companies(n_companies)
        self._company_sampler = ZipfSampler(n_companies, 1.2)
        self._locations = names.cities(min(max(n_movies // 40, 10), 50))
        self._location_sampler = ZipfSampler(len(self._locations), 1.1)
        self._genres = names.genres(20)

        self.movies: List[Movie] = [self._make_movie(rng, i) for i in range(n_movies)]

    def _fresh_obscure_people(self, count: int) -> tuple[str, ...]:
        """One-off people never reused across movies (island casts)."""
        people = tuple(
            names.person_name(self._obscure_cursor + offset) for offset in range(count)
        )
        self._obscure_cursor += count
        return people

    def _make_movie(self, rng: random.Random, index: int) -> Movie:
        year = int(rng.triangular(1930, 2005, 1998))
        crew = {}
        for role, (pool, sampler) in self._crew.items():
            crew[role] = pool[sampler.sample(rng)]
        costumer_pool, costumer_sampler = self._costumers
        genre_count = 1 + (rng.random() < 0.35)
        genre_ranks = sorted(rng.sample(range(len(self._genres)), genre_count))
        obscure = rng.random() < self.obscure_fraction
        if obscure:
            actors = self._fresh_obscure_people(1 + (rng.random() < 0.5))
            actresses = self._fresh_obscure_people(1)
            director = self._fresh_obscure_people(1)[0]
        else:
            actors = self._actors.draw(rng, pareto_int(rng, 2, 3.5))
            actresses = self._actresses.draw(rng, pareto_int(rng, 1, 2.5))
            if rng.random() < self.actor_director_fraction:
                # An actor-director: the name also exists in the actor
                # column of other movies (occasionally this one).
                director = self._actors.draw(rng, 1)[0]
            else:
                director = crew["director"]
        return Movie(
            title=self._titles[index],
            year=year,
            actors=actors,
            actresses=actresses,
            director=director,
            editor=crew["editor"],
            producer=crew["producer"],
            costumer=costumer_pool[costumer_sampler.sample(rng)],
            composer=crew["composer"],
            photographer=crew["photographer"],
            language=self._languages[self._language_sampler.sample(rng)],
            company=self._companies[self._company_sampler.sample(rng)],
            release_location=self._locations[self._location_sampler.sample(rng)],
            genres=tuple(self._genres[r] for r in genre_ranks),
        )

    def since(self, year: int) -> List[Movie]:
        """Movies released in or after ``year`` (the DM(I)/DM(II) subsets)."""
        return [m for m in self.movies if m.year >= year]


#: IMDB interface schema — the paper's Table 2 queriable attributes.
IMDB_SCHEMA = Schema.of(
    "title",
    actor={"multivalued": True},
    actress={"multivalued": True},
    director={},
    editor={},
    producer={},
    costumer={},
    composer={},
    photographer={},
    language={},
    company={},
    release_location={},
    year={"queriable": False},
)

#: Amazon DVD store schema — retailer vocabulary.  Like the real DVD
#: search, only titles and people are queriable; studio, language,
#: genre and price appear on result pages but cannot be predicated on,
#: so no cheap flat partition of the catalogue exists and the crawl
#: must ride the people/title graph (which is why the paper's GL stalls
#: below 70% there while DM keeps feeding it fresh people).
AMAZON_DVD_SCHEMA = Schema.of(
    "title",
    actor={"multivalued": True},
    actress={"multivalued": True},
    director={},
    studio={"queriable": False},
    language={"queriable": False},
    genre={"queriable": False, "multivalued": True},
    price={"queriable": False},
    year={"queriable": False},
)

#: Attribute mapping from IMDB vocabulary into the store's (schema
#: matching, which the paper treats as solved prior work [24]).
IMDB_TO_AMAZON = {"company": "studio"}

#: IMDB attributes with a *queriable* Amazon counterpart (DT scope).
IMDB_DT_ATTRIBUTES = ("title", "actor", "actress", "director")


def _movie_rows_imdb(movies: Sequence[Movie]) -> List[dict]:
    return [
        {
            "title": m.title,
            "actor": m.actors,
            "actress": m.actresses,
            "director": m.director,
            "editor": m.editor,
            "producer": m.producer,
            "costumer": m.costumer,
            "composer": m.composer,
            "photographer": m.photographer,
            "language": m.language,
            "company": m.company,
            "release_location": m.release_location,
            "year": str(m.year),
        }
        for m in movies
    ]


def imdb_table_from_movies(
    movies: Sequence[Movie], name: str = "imdb"
) -> RelationalTable:
    """Tabulate a movie list under the IMDB schema (used for DT subsets)."""
    table = RelationalTable(IMDB_SCHEMA, name=name)
    table.insert_rows(_movie_rows_imdb(movies))
    return table


def generate_imdb(
    n_records: int = 5000,
    seed: int = 0,
    universe: Optional[MovieUniverse] = None,
) -> RelationalTable:
    """The synthetic Internet Movie Database (whole universe)."""
    universe = universe or MovieUniverse(n_records, seed)
    return imdb_table_from_movies(universe.movies)


def generate_amazon_dvd(
    universe: MovieUniverse,
    catalogue_fraction: float = 0.6,
    exclusive_fraction: float = 0.05,
    seed: int = 1,
) -> RelationalTable:
    """The synthetic Amazon DVD store.

    Parameters
    ----------
    universe:
        The shared movie universe (build it once, feed both stores).
    catalogue_fraction:
        Share of universe movies the store carries; the draw is
        recency-biased (newer releases are likelier to be on DVD).
    exclusive_fraction:
        Store-only titles (relative to catalogue size) absent from the
        universe — the reason Eq. 4.3's smoothing exists.
    seed:
        Store-level randomness, independent of the universe seed.
    """
    if not 0 < catalogue_fraction <= 1:
        raise DatasetError("catalogue_fraction must be in (0, 1]")
    if exclusive_fraction < 0:
        raise DatasetError("exclusive_fraction must be >= 0")
    rng = random.Random(seed ^ 0x5EED)
    prices = names.price_buckets(10)
    year_span = max(m.year for m in universe.movies) - 1929

    rows: List[dict] = []
    for movie in universe.movies:
        recency = (movie.year - 1929) / year_span  # 0 (old) .. 1 (new)
        keep_probability = catalogue_fraction * (0.4 + 1.2 * recency)
        if rng.random() >= min(keep_probability, 1.0):
            continue
        rows.append(
            {
                "title": movie.title,
                "actor": movie.actors,
                "actress": movie.actresses,
                "director": movie.director,
                "studio": movie.company,
                "language": movie.language,
                "genre": movie.genres,
                "price": prices[min(rng.randrange(len(prices)), len(prices) - 1)],
                "year": str(movie.year),
            }
        )

    n_exclusive = int(len(rows) * exclusive_fraction)
    if n_exclusive:
        exclusive_titles = names.titles(universe.n_movies + n_exclusive)[
            universe.n_movies :
        ]
        pool = names.person_names(max(universe.n_movies // 2, 30))
        for i in range(n_exclusive):
            cast = rng.sample(pool, min(3, len(pool)))
            rows.append(
                {
                    "title": exclusive_titles[i],
                    "actor": tuple(cast[:2]),
                    "actress": (cast[-1],),
                    "director": rng.choice(pool),
                    "studio": f"storebrand video {1 + i % 3}",
                    "language": "english",
                    "genre": (rng.choice(names.genres(20)),),
                    "price": rng.choice(prices),
                    "year": str(rng.randrange(1990, 2006)),
                }
            )

    table = RelationalTable(AMAZON_DVD_SCHEMA, name="amazon-dvd")
    table.insert_rows(rows)
    return table
