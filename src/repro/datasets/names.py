"""Deterministic synthetic vocabularies.

Every generator below produces an arbitrarily large list of distinct,
human-looking strings from a fixed seed corpus: base word lists are
combined, and once combinations run out a numeric disambiguator is
appended.  The functions are pure — the same arguments always yield the
same vocabulary — so datasets are reproducible across runs and machines.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.errors import DatasetError

_FIRST_NAMES = (
    "james john robert michael william david richard joseph thomas charles "
    "mary patricia jennifer linda elizabeth barbara susan jessica sarah karen "
    "daniel matthew anthony donald mark paul steven andrew kenneth george "
    "nancy lisa betty margaret sandra ashley kimberly emily donna michelle "
    "joshua kevin brian edward ronald timothy jason jeffrey ryan jacob "
    "carol amanda melissa deborah stephanie rebecca laura sharon cynthia kathleen "
    "gary nicholas eric jonathan stephen larry justin scott brandon benjamin "
    "amy shirley anna angela helen brenda pamela nicole ruth katherine "
    "samuel gregory alexander frank patrick raymond jack dennis jerry tyler "
    "virginia catherine christine samantha debra rachel carolyn janet emma maria "
    "hiroshi kenji yuki akira marco luca giulia pierre claire sofia "
    "ivan dmitri olga chen wei li ravi priya ahmed fatima"
).split()

_LAST_NAMES = (
    "smith johnson williams brown jones garcia miller davis rodriguez martinez "
    "hernandez lopez gonzalez wilson anderson thomas taylor moore jackson martin "
    "lee perez thompson white harris sanchez clark ramirez lewis robinson "
    "walker young allen king wright scott torres nguyen hill flores "
    "green adams nelson baker hall rivera campbell mitchell carter roberts "
    "gomez phillips evans turner diaz parker cruz edwards collins reyes "
    "stewart morris morales murphy cook rogers gutierrez ortiz morgan cooper "
    "peterson bailey reed kelly howard ramos kim cox ward richardson "
    "watson brooks chavez wood james bennett gray mendoza ruiz hughes "
    "price alvarez castillo sanders patel myers long ross foster jimenez "
    "tanaka suzuki yamamoto kobayashi rossi ferrari esposito dubois laurent "
    "meyer wagner becker schulz keller ivanov petrov volkov zhang wang"
).split()

_NOUNS = (
    "river mountain shadow garden empire circuit harbor winter summer echo "
    "silence journey horizon mirror forest canyon island thunder whisper flame "
    "crystal engine compass lantern voyage fortress meadow tempest beacon ember "
    "orchard prairie glacier monsoon archive cipher paradox spectrum quantum vertex "
    "sonata ballad anthem rhapsody prelude nocturne aurora eclipse zenith nadir "
    "falcon raven sparrow heron osprey lynx panther otter badger marlin "
    "saffron indigo crimson cobalt amber obsidian ivory onyx jade coral "
    "harvest festival carnival odyssey saga chronicle legend fable parable myth"
).split()

_ADJECTIVES = (
    "silent golden broken hidden distant burning frozen endless ancient gentle "
    "crimson hollow savage tranquil luminous obscure radiant solemn vivid weary "
    "restless daring humble noble fierce quiet rapid sober subtle wild "
    "electric magnetic chromatic seismic lunar solar stellar coastal urban rural "
    "eternal fleeting forgotten remembered invisible infinite narrow vast early late"
).split()

_CITIES = (
    "springfield riverton fairview georgetown salem madison clinton arlington ashland dover "
    "burlington manchester oxford bristol cambridge winchester newport richmond lancaster york "
    "dayton auburn florence troy athens sparta verona geneva vienna lisbon "
    "portland austin denver boston seattle chicago houston phoenix atlanta miami "
    "toronto vancouver montreal dublin glasgow cardiff leeds perth osaka kyoto"
).split()

_COMPANY_ROOTS = (
    "acme apex vertex nova polaris meridian zenith atlas orion titan "
    "summit cascade pinnacle horizon frontier keystone landmark beacon anchor harbor "
    "quantum stellar lunar solaris aurora nebula pulsar quasar cosmos vega "
    "cedar oak maple willow aspen birch sequoia cypress juniper laurel"
).split()

_COMPANY_SUFFIXES = "studios pictures films media group works corp labs house partners".split()

_GENRES = (
    "drama comedy thriller horror documentary animation western musical romance crime "
    "adventure fantasy scifi mystery war biography family sport noir history"
).split()

_LANGUAGES = (
    "english french spanish german italian japanese mandarin cantonese hindi korean "
    "portuguese russian arabic dutch swedish polish turkish greek hebrew danish"
).split()

_SUBJECTS = (
    "databases networking algorithms compilers cryptography robotics graphics visualization "
    "datamining machinelearning retrieval security architecture verification optimization "
    "concurrency semantics logic complexity bioinformatics multimedia hci storage "
    "scheduling caching indexing clustering ranking crawling extraction integration streams"
).split()

_VENUE_WORDS = (
    "international symposium conference workshop transactions journal letters annals "
    "bulletin proceedings review quarterly"
).split()


def _expand(base: Callable[[int], str], count: int) -> List[str]:
    """Materialize ``count`` distinct strings from an indexed template."""
    if count < 0:
        raise DatasetError(f"count must be >= 0, got {count}")
    return [base(i) for i in range(count)]


def person_name(index: int) -> str:
    """The ``index``-th distinct "last, first" person name.

    Indexes are unbounded; past the first/last-name cross product a
    numeric disambiguator is appended.
    """
    first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
    last = _LAST_NAMES[(index // len(_FIRST_NAMES)) % len(_LAST_NAMES)]
    serial = index // (len(_FIRST_NAMES) * len(_LAST_NAMES))
    suffix = f" {serial + 1}" if serial else ""
    return f"{last}, {first}{suffix}"


def person_names(count: int) -> List[str]:
    """Distinct "last, first" person names (IMDB-style ordering)."""
    return _expand(person_name, count)


def titles(count: int) -> List[str]:
    """Distinct work titles ("the silent river", "broken compass iv", ...)."""

    def make(i: int) -> str:
        adjective = _ADJECTIVES[i % len(_ADJECTIVES)]
        noun = _NOUNS[(i // len(_ADJECTIVES)) % len(_NOUNS)]
        serial = i // (len(_ADJECTIVES) * len(_NOUNS))
        suffix = f" {serial + 1}" if serial else ""
        article = "the " if i % 3 == 0 else ""
        return f"{article}{adjective} {noun}{suffix}"

    return _expand(make, count)


def venues(count: int) -> List[str]:
    """Distinct publication venues ("symposium on databases", ...)."""

    def make(i: int) -> str:
        kind = _VENUE_WORDS[i % len(_VENUE_WORDS)]
        subject = _SUBJECTS[(i // len(_VENUE_WORDS)) % len(_SUBJECTS)]
        serial = i // (len(_VENUE_WORDS) * len(_SUBJECTS))
        suffix = f" {serial + 1}" if serial else ""
        return f"{kind} on {subject}{suffix}"

    return _expand(make, count)


def subjects(count: int) -> List[str]:
    """Distinct subject keywords."""

    def make(i: int) -> str:
        subject = _SUBJECTS[i % len(_SUBJECTS)]
        serial = i // len(_SUBJECTS)
        return f"{subject} {serial + 1}" if serial else subject

    return _expand(make, count)


def cities(count: int) -> List[str]:
    """Distinct location names ("springfield", "riverton 2", ...)."""

    def make(i: int) -> str:
        city = _CITIES[i % len(_CITIES)]
        serial = i // len(_CITIES)
        return f"{city} {serial + 1}" if serial else city

    return _expand(make, count)


def companies(count: int) -> List[str]:
    """Distinct company names ("acme studios", ...)."""

    def make(i: int) -> str:
        root = _COMPANY_ROOTS[i % len(_COMPANY_ROOTS)]
        suffix = _COMPANY_SUFFIXES[(i // len(_COMPANY_ROOTS)) % len(_COMPANY_SUFFIXES)]
        serial = i // (len(_COMPANY_ROOTS) * len(_COMPANY_SUFFIXES))
        tail = f" {serial + 1}" if serial else ""
        return f"{root} {suffix}{tail}"

    return _expand(make, count)


def genres(count: int) -> List[str]:
    """Distinct genre labels (at most a few dozen are realistic)."""

    def make(i: int) -> str:
        genre = _GENRES[i % len(_GENRES)]
        serial = i // len(_GENRES)
        return f"{genre} {serial + 1}" if serial else genre

    return _expand(make, count)


def languages(count: int) -> List[str]:
    """Distinct language names."""

    def make(i: int) -> str:
        language = _LANGUAGES[i % len(_LANGUAGES)]
        serial = i // len(_LANGUAGES)
        return f"{language} {serial + 1}" if serial else language

    return _expand(make, count)


def usernames(count: int) -> List[str]:
    """Distinct seller/user handles ("quietfalcon7", ...)."""

    def make(i: int) -> str:
        adjective = _ADJECTIVES[i % len(_ADJECTIVES)]
        noun = _NOUNS[(i // len(_ADJECTIVES)) % len(_NOUNS)]
        serial = i // (len(_ADJECTIVES) * len(_NOUNS))
        return f"{adjective}{noun}{serial}" if serial else f"{adjective}{noun}"

    return _expand(make, count)


def price_buckets(count: int) -> List[str]:
    """Price-range labels ("$0-$10", "$10-$25", ...), coarse to fine."""
    edges = [0, 10, 25, 50, 75, 100, 150, 200, 300, 500, 750, 1000, 1500, 2500, 5000]
    buckets = [f"${lo}-${hi}" for lo, hi in zip(edges, edges[1:])]
    buckets.append(f"${edges[-1]}+")
    if count <= len(buckets):
        return buckets[:count]
    extra = [f"${5000 * (i + 2)}+" for i in range(count - len(buckets))]
    return buckets + extra
