"""Dataset registry: the paper's four controlled sources by name.

Maps dataset names to generators and records the paper's reported
statistics (record counts and Table 2's distinct-attribute-value
counts) next to the scales this reproduction uses by default, so
harness code and documentation stay in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.errors import DatasetError
from repro.core.table import RelationalTable
from repro.datasets.ebay import generate_ebay
from repro.datasets.movies import generate_imdb
from repro.datasets.scholarly import generate_acm, generate_dblp

Generator = Callable[[int, int], RelationalTable]


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry for one controlled database."""

    name: str
    generator: Generator
    paper_records: int
    paper_distinct_values: int
    default_records: int
    queriable_attributes: Tuple[str, ...]


_REGISTRY: Dict[str, DatasetInfo] = {
    "ebay": DatasetInfo(
        name="ebay",
        generator=lambda n, seed: generate_ebay(n, seed),
        paper_records=20_000,
        paper_distinct_values=22_950,
        default_records=4_000,
        queriable_attributes=("categories", "seller", "location", "price"),
    ),
    "acm": DatasetInfo(
        name="acm",
        generator=lambda n, seed: generate_acm(n, seed),
        paper_records=150_000,
        paper_distinct_values=370_416,
        default_records=4_000,
        queriable_attributes=(
            "title",
            "conference",
            "journal",
            "author",
            "subject_keywords",
        ),
    ),
    "dblp": DatasetInfo(
        name="dblp",
        generator=lambda n, seed: generate_dblp(n, seed),
        paper_records=500_000,
        paper_distinct_values=860_293,
        default_records=4_000,
        queriable_attributes=("title", "conference", "journal", "author", "volume"),
    ),
    "imdb": DatasetInfo(
        name="imdb",
        generator=lambda n, seed: generate_imdb(n, seed),
        paper_records=400_000,
        paper_distinct_values=1_225_895,
        default_records=3_000,
        queriable_attributes=(
            "title",
            "actor",
            "actress",
            "director",
            "editor",
            "producer",
            "costumer",
            "composer",
            "photographer",
            "language",
            "company",
            "release_location",
        ),
    ),
}


def dataset_names() -> Tuple[str, ...]:
    """The four controlled databases, in the paper's Figure 3 order."""
    return ("ebay", "imdb", "dblp", "acm")


def dataset_info(name: str) -> DatasetInfo:
    try:
        return _REGISTRY[name.strip().lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def load_dataset(name: str, n_records: int = 0, seed: int = 0) -> RelationalTable:
    """Generate a controlled database by name.

    ``n_records = 0`` uses the registry's default scale (chosen so that
    full crawls complete in seconds while preserving the distributional
    properties the experiments measure).
    """
    info = dataset_info(name)
    size = n_records or info.default_records
    return info.generator(size, seed)
