"""Synthetic scholarly databases: ACM Digital Library and DBLP.

Table 2 lists their interfaces — ACM: ``Title, Conference, Journal,
Author, Subject keywords``; DBLP: ``Title, Conference, Journal, Author,
Volume``.  Author lists are the paper's canonical example of both
multi-valued attributes (concatenated into a full-text-searchable
column) and attribute-value dependency ("many authors often publish
papers together"), so authors are drawn from Zipf-popular pools with a
community co-authorship bias, exactly the structure MMMI exploits.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.errors import DatasetError
from repro.core.schema import Schema
from repro.core.table import RelationalTable
from repro.datasets import names
from repro.datasets.movies import _CommunityCast
from repro.datasets.zipf import ZipfSampler, pareto_int

ACM_SCHEMA = Schema.of(
    "title",
    "conference",
    "journal",
    author={"multivalued": True},
    subject_keywords={"multivalued": True},
)

DBLP_SCHEMA = Schema.of(
    "title",
    "conference",
    "journal",
    "volume",
    author={"multivalued": True},
)


def _paper_rows(
    n_records: int,
    seed: int,
    with_keywords: bool,
    with_volume: bool,
) -> List[dict]:
    rng = random.Random(seed)
    n_authors = max(n_records // 3, 20)
    n_venues = min(max(n_records // 60, 10), 600)
    # Exponent 0.8 keeps the head realistic: the most prolific author
    # appears on a few percent of papers, not a third of them.
    authors = _CommunityCast(
        names.person_names(n_authors),
        exponent=0.8,
        communities=max(n_authors // 30, 1),
        affinity=0.75,
    )
    venues = names.venues(n_venues)
    venue_sampler = ZipfSampler(n_venues, 0.95)
    titles = names.titles(n_records)
    keywords = names.subjects(min(max(n_records // 20, 30), 500))
    keyword_sampler = ZipfSampler(len(keywords), 1.0)

    rows = []
    for i in range(n_records):
        venue = venues[venue_sampler.sample(rng)]
        is_journal = rng.random() < 0.4
        row: dict = {
            "title": titles[i],
            "author": authors.draw(rng, pareto_int(rng, 1, 2.8)),
        }
        if is_journal:
            row["journal"] = venue
        else:
            row["conference"] = venue
        if with_keywords:
            count = pareto_int(rng, 1, 2.2)
            ranks = {keyword_sampler.sample(rng) for _ in range(count)}
            row["subject_keywords"] = tuple(keywords[r] for r in sorted(ranks))
        if with_volume and is_journal:
            row["volume"] = f"vol {1 + keyword_sampler.sample(rng) % 60}"
        rows.append(row)
    return rows


def generate_acm(n_records: int = 5000, seed: int = 0) -> RelationalTable:
    """The ACM Digital Library stand-in (150k records in the paper)."""
    if n_records < 1:
        raise DatasetError(f"need at least one record, got {n_records}")
    table = RelationalTable(ACM_SCHEMA, name="acm")
    table.insert_rows(
        _paper_rows(n_records, seed, with_keywords=True, with_volume=False)
    )
    return table


def generate_dblp(n_records: int = 5000, seed: int = 0) -> RelationalTable:
    """The DBLP stand-in (500k records in the paper)."""
    if n_records < 1:
        raise DatasetError(f"need at least one record, got {n_records}")
    table = RelationalTable(DBLP_SCHEMA, name="dblp")
    table.insert_rows(
        _paper_rows(n_records, seed + 17, with_keywords=False, with_volume=True)
    )
    return table
