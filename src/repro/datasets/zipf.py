"""Zipf / power-law samplers for synthetic database generation.

The paper's Figure 2 case study finds AVG degree distributions "very
close to power-law": a few hub values are extremely popular while "the
massive many" are sparsely connected.  The generators therefore draw
attribute values Zipf-distributed — rank ``i`` is sampled with
probability proportional to ``1 / i^s`` — which yields the required
frequency (and hence degree) heavy tail.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence, TypeVar

import numpy as np

from repro.core.errors import DatasetError

T = TypeVar("T")


class ZipfSampler:
    """Samples ranks ``0 .. n-1`` with ``P(i) ∝ 1 / (i + 1)^exponent``.

    Sampling is O(log n) per draw via the precomputed CDF; construction
    is O(n).  ``exponent = 0`` degenerates to uniform sampling.
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise DatasetError(f"need at least one rank, got n={n}")
        if exponent < 0:
            raise DatasetError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), exponent)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf: List[float] = cdf.tolist()

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]

    def sample_distinct(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` distinct ranks (count must not exceed n)."""
        if count > self.n:
            raise DatasetError(f"cannot draw {count} distinct ranks from {self.n}")
        seen: set[int] = set()
        out: List[int] = []
        # Rejection sampling is fast while count << n; fall back to a
        # weighted shuffle when the request is a large share of the space.
        if count <= self.n // 2:
            while len(out) < count:
                rank = self.sample(rng)
                if rank not in seen:
                    seen.add(rank)
                    out.append(rank)
            return out
        ranks = list(range(self.n))
        rng.shuffle(ranks)
        return ranks[:count]

    def probability(self, rank: int) -> float:
        """Exact probability of a rank under the sampler."""
        if not 0 <= rank < self.n:
            raise DatasetError(f"rank {rank} out of range [0, {self.n})")
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - low


def choose_zipf(items: Sequence[T], sampler: ZipfSampler, rng: random.Random) -> T:
    """Pick one item of a ranked sequence via the sampler."""
    if len(items) != sampler.n:
        raise DatasetError(
            f"sampler covers {sampler.n} ranks but sequence has {len(items)}"
        )
    return items[sampler.sample(rng)]


def pareto_int(rng: random.Random, minimum: int, mean: float) -> int:
    """A small heavy-tailed integer (≥ minimum) with roughly the given mean.

    Used for per-record multiplicity choices (number of authors,
    actors, keywords) where an occasional large cast matters.
    """
    if mean <= minimum:
        return minimum
    # Shifted geometric-ish tail built on the exponential transform.
    scale = mean - minimum
    draw = rng.expovariate(1.0 / scale)
    return minimum + int(draw)


def interleave_unique(*sequences: Sequence[T]) -> List[T]:
    """Round-robin merge preserving first occurrence only (utility)."""
    seen: set[T] = set()
    merged: List[T] = []
    for bundle in itertools.zip_longest(*sequences):
        for item in bundle:
            if item is not None and item not in seen:
                seen.add(item)
                merged.append(item)
    return merged
