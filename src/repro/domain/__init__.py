"""Domain knowledge: statistics tables built from same-domain samples."""

from repro.domain.table import (
    DomainEntry,
    DomainStatisticsTable,
    SortedIdUnion,
    build_domain_table,
)

__all__ = [
    "DomainEntry",
    "DomainStatisticsTable",
    "SortedIdUnion",
    "build_domain_table",
]
