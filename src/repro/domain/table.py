"""Domain statistics tables (Definition 4.1).

A domain statistics table ``DT`` distils a *sample database* of the
target's domain (e.g. IMDB when crawling an Amazon DVD store) into the
two things the DM query selector needs:

- ``P(q, DM)`` — each candidate value's probability of occurring in a
  record of the domain sample, and
- posting lists ``S(q, DM)`` — which sample records each value matches,
  needed to maintain ``P(L_queried, DM)`` incrementally (Section 4.4).

Attribute names in the sample rarely match the target's interface
exactly (IMDB says "director", a store might say "directed by"); the
builder accepts an attribute mapping, standing in for the schema
matching the paper cites as solved prior work.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import DatasetError
from repro.core.table import RelationalTable
from repro.core.values import AttributeValue


@dataclass(frozen=True)
class DomainEntry:
    """One ``<q_i, P(q_i, DM)>`` entry plus its posting list."""

    value: AttributeValue
    count: int
    postings: Tuple[int, ...]  # sorted record ids within the sample


class DomainStatisticsTable:
    """Immutable collection of :class:`DomainEntry` over one domain sample."""

    def __init__(self, entries: Dict[AttributeValue, DomainEntry], size: int) -> None:
        if size < 1:
            raise DatasetError("domain sample must contain at least one record")
        self._entries = entries
        self.size = size
        self._attributes = frozenset(v.attribute for v in entries)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, value: AttributeValue) -> bool:
        return value in self._entries

    @property
    def attributes(self) -> frozenset:
        """Attributes (in target space) the table has statistics for."""
        return self._attributes

    def count(self, value: AttributeValue) -> int:
        """``num(q, DM)`` — sample records matching the value."""
        entry = self._entries.get(value)
        return 0 if entry is None else entry.count

    def probability(self, value: AttributeValue) -> float:
        """Unsmoothed ``P(q, DM) = num(q, DM) / |DM|``."""
        return self.count(value) / self.size

    def postings(self, value: AttributeValue) -> Tuple[int, ...]:
        """``S(q, DM)`` — sorted ids of sample records matching the value."""
        entry = self._entries.get(value)
        return () if entry is None else entry.postings

    def values(self) -> List[AttributeValue]:
        """All table values, most probable first (ties broken by value)."""
        return sorted(self._entries, key=lambda v: (-self._entries[v].count, v))

    def values_of_attribute(self, attribute: str) -> List[AttributeValue]:
        key = attribute.strip().lower()
        return [v for v in self.values() if v.attribute == key]


def build_domain_table(
    sample: RelationalTable,
    attributes: Optional[Iterable[str]] = None,
    attribute_map: Optional[Mapping[str, str]] = None,
    min_count: int = 1,
) -> DomainStatisticsTable:
    """Build a :class:`DomainStatisticsTable` from a sample database.

    Parameters
    ----------
    sample:
        The domain sample (e.g. an IMDB subset).
    attributes:
        Sample attributes to include; defaults to all of them.
    attribute_map:
        Rename sample attributes into the target's interface vocabulary
        (``{"director": "directed by"}``).  Unmapped attributes keep
        their names.
    min_count:
        Drop values occurring in fewer sample records — a size/noise
        knob for the DM(I)-versus-DM(II) comparisons.
    """
    if min_count < 1:
        raise DatasetError(f"min_count must be >= 1, got {min_count}")
    keep = None if attributes is None else {a.strip().lower() for a in attributes}
    rename = {k.strip().lower(): v.strip().lower() for k, v in (attribute_map or {}).items()}

    counts: Dict[AttributeValue, int] = {}
    postings: Dict[AttributeValue, List[int]] = {}
    # Sample record ids are re-indexed densely so posting lists stay small.
    for dense_id, record in enumerate(sorted(sample, key=lambda r: r.record_id)):
        seen_here = set()
        for pair in record.attribute_values():
            if keep is not None and pair.attribute not in keep:
                continue
            mapped = AttributeValue(rename.get(pair.attribute, pair.attribute), pair.value)
            if mapped in seen_here:
                continue
            seen_here.add(mapped)
            counts[mapped] = counts.get(mapped, 0) + 1
            postings.setdefault(mapped, []).append(dense_id)
    entries = {
        value: DomainEntry(value, count, tuple(postings[value]))
        for value, count in counts.items()
        if count >= min_count
    }
    return DomainStatisticsTable(entries, len(sample))


class SortedIdUnion:
    """Incrementally maintained union of sorted posting lists (Section 4.4).

    The paper keeps ``S(L_queried[1…m], DM)`` as a sorted duplicate-free
    list and unions each newly issued query's postings into it by a
    sorted-merge.  :meth:`union` is exactly that merge;
    :attr:`cardinality` over :attr:`universe_size` gives
    ``P(L_queried, DM)`` in O(1).
    """

    def __init__(self, universe_size: int) -> None:
        if universe_size < 1:
            raise DatasetError("universe must contain at least one record")
        self.universe_size = universe_size
        self._ids: List[int] = []

    def union(self, postings: Iterable[int]) -> int:
        """Merge a sorted posting list in; returns how many ids were new."""
        incoming = list(postings)
        if not incoming:
            return 0
        merged: List[int] = []
        added = 0
        existing = self._ids
        i = j = 0
        while i < len(existing) and j < len(incoming):
            a, b = existing[i], incoming[j]
            if a < b:
                merged.append(a)
                i += 1
            elif b < a:
                merged.append(b)
                added += 1
                j += 1
            else:
                merged.append(a)
                i += 1
                j += 1
        merged.extend(existing[i:])
        remainder = incoming[j:]
        # Deduplicate within the incoming remainder itself.
        for value in remainder:
            if not merged or merged[-1] != value:
                merged.append(value)
                added += 1
        self._ids = merged
        return added

    def __contains__(self, record_id: int) -> bool:
        index = bisect.bisect_left(self._ids, record_id)
        return index < len(self._ids) and self._ids[index] == record_id

    @property
    def cardinality(self) -> int:
        return len(self._ids)

    @property
    def fraction(self) -> float:
        """``P(L_queried, DM)`` — covered share of the domain sample."""
        return len(self._ids) / self.universe_size

    def state_dict(self) -> dict:
        """Checkpoint payload (see ``repro.runtime``); ids are already sorted."""
        return {"ids": list(self._ids)}

    def load_state(self, state: dict) -> None:
        self._ids = list(state["ids"])
