"""Database size estimation: overlap analysis + t confidence bounds."""

from repro.estimation.multisample import (
    all_estimates,
    capture_frequencies,
    chao1,
    jackknife1,
    schnabel,
)
from repro.estimation.profiler import (
    SourceProfileReport,
    fit_zipf_exponent,
    profile_source,
)
from repro.estimation.overlap import (
    capture_recapture,
    pair_estimate,
    pairwise_estimates,
)
from repro.estimation.ttest import (
    ConfidenceInterval,
    t_confidence_interval,
    upper_confidence_bound,
)

__all__ = [
    "ConfidenceInterval",
    "SourceProfileReport",
    "all_estimates",
    "capture_frequencies",
    "capture_recapture",
    "chao1",
    "fit_zipf_exponent",
    "jackknife1",
    "pair_estimate",
    "pairwise_estimates",
    "profile_source",
    "schnabel",
    "t_confidence_interval",
    "upper_confidence_bound",
]
