"""Multi-sample size estimators beyond pairwise Lincoln–Petersen.

The paper combines its six crawl samples only pairwise; the
capture–recapture literature offers estimators that use all samples
jointly, which this module adds as extensions:

- :func:`schnabel` — the Schnabel census over sequential samples;
- :func:`chao1` — Chao's lower-bound richness estimator from the
  capture-frequency counts (how many records were seen exactly once /
  twice across all samples);
- :func:`jackknife1` — the first-order jackknife.

All take the same input as :func:`repro.estimation.pairwise_estimates`
(a sequence of harvested record-id sets) and return a point estimate of
the universe size, so the size-estimation experiment can report them
side by side.
"""

from __future__ import annotations

from collections import Counter
from typing import AbstractSet, Dict, Sequence

from repro.core.errors import EstimationError


def _check_samples(samples: Sequence[AbstractSet]) -> None:
    if len(samples) < 2:
        raise EstimationError("need at least two samples")
    if all(len(sample) == 0 for sample in samples):
        raise EstimationError("all samples are empty")


def capture_frequencies(samples: Sequence[AbstractSet]) -> Dict[int, int]:
    """``f_k`` — how many records appear in exactly ``k`` samples."""
    counts = Counter()
    for sample in samples:
        counts.update(sample)
    frequencies: Counter = Counter(counts.values())
    return dict(frequencies)


def schnabel(samples: Sequence[AbstractSet]) -> float:
    """Schnabel multi-census estimate.

    Treat the samples as sequential capture occasions: at occasion ``t``
    with ``C_t`` captures of which ``R_t`` were already marked and
    ``M_t`` marked animals at large, ``N̂ = Σ C_t·M_t / Σ R_t``.
    """
    _check_samples(samples)
    marked: set = set()
    numerator = 0.0
    recaptures = 0
    for sample in samples:
        if marked:
            numerator += len(sample) * len(marked)
            recaptures += len(sample & marked)
        marked |= set(sample)
    if recaptures == 0:
        raise EstimationError("no recaptures across samples")
    return numerator / recaptures


def chao1(samples: Sequence[AbstractSet]) -> float:
    """Chao's estimator from singleton/doubleton capture frequencies.

    ``N̂ = S_obs + f₁² / (2·f₂)`` where ``f₁``/``f₂`` count records seen
    in exactly one / two samples.  With no doubletons the bias-corrected
    form ``S_obs + f₁(f₁−1)/2`` is used.
    """
    _check_samples(samples)
    frequencies = capture_frequencies(samples)
    observed = sum(frequencies.values())
    f1 = frequencies.get(1, 0)
    f2 = frequencies.get(2, 0)
    if f2 > 0:
        return observed + f1 * f1 / (2.0 * f2)
    return observed + f1 * (f1 - 1) / 2.0


def jackknife1(samples: Sequence[AbstractSet]) -> float:
    """First-order jackknife: ``S_obs + f₁·(n−1)/n`` over ``n`` samples."""
    _check_samples(samples)
    n = len(samples)
    frequencies = capture_frequencies(samples)
    observed = sum(frequencies.values())
    f1 = frequencies.get(1, 0)
    return observed + f1 * (n - 1) / n


def all_estimates(samples: Sequence[AbstractSet]) -> Dict[str, float]:
    """Every multi-sample estimator that is computable on the input."""
    out: Dict[str, float] = {}
    for name, estimator in (
        ("schnabel", schnabel),
        ("chao1", chao1),
        ("jackknife1", jackknife1),
    ):
        try:
            out[name] = estimator(samples)
        except EstimationError:
            continue
    return out
