"""Database size estimation by overlap analysis (Section 5, "real crawl").

The paper cannot ask Amazon for its DVD count, so it estimates it the
Lawrence–Giles way [18]: run several independent limited crawls from
random seeds, treat each pair of result sets as a capture–recapture
experiment, and combine the ``C(n, 2)`` pairwise estimates statistically.
For two independent samples ``A`` and ``B`` of a universe of size ``N``,
``|A ∩ B| / |B| ≈ |A| / N``, giving the classical Lincoln–Petersen
estimator ``N̂ = |A|·|B| / |A ∩ B|``.
"""

from __future__ import annotations

import itertools
from typing import AbstractSet, List, Sequence

from repro.core.errors import EstimationError


def capture_recapture(size_a: int, size_b: int, overlap: int) -> float:
    """Lincoln–Petersen estimate ``|A|·|B| / |A ∩ B|``.

    Raises
    ------
    EstimationError
        If the overlap is zero (disjoint samples carry no size signal)
        or inconsistent with the sample sizes.
    """
    if size_a < 0 or size_b < 0:
        raise EstimationError("sample sizes must be non-negative")
    if overlap <= 0:
        raise EstimationError("overlap analysis requires a non-empty intersection")
    if overlap > min(size_a, size_b):
        raise EstimationError(
            f"overlap {overlap} exceeds a sample size ({size_a}, {size_b})"
        )
    return size_a * size_b / overlap


def pair_estimate(sample_a: AbstractSet, sample_b: AbstractSet) -> float:
    """Capture–recapture estimate from two harvested record-id sets."""
    return capture_recapture(
        len(sample_a), len(sample_b), len(sample_a & sample_b)
    )


def pairwise_estimates(samples: Sequence[AbstractSet]) -> List[float]:
    """All ``C(n, 2)`` pairwise estimates (the paper's 15, for n = 6).

    Pairs with empty intersections are skipped — a disjoint pair says
    the universe is large but not how large.  Raises when *no* pair
    overlaps; downstream confidence statements impose their own minimum
    (a t-interval needs at least two estimates).
    """
    if len(samples) < 2:
        raise EstimationError("need at least two independent samples")
    estimates: List[float] = []
    for a, b in itertools.combinations(samples, 2):
        try:
            estimates.append(pair_estimate(a, b))
        except EstimationError:
            continue
    if not estimates:
        raise EstimationError(
            "no sample pair overlaps; crawl longer or reseed"
        )
    return estimates
