"""Query-probe source profiling (related work [4, 13, 17]).

Before committing a crawl budget to an unknown source, a few cheap
probe queries characterize it — the "probe, count" half of
probe-count-classify (Ipeirotis et al. [17]) and the query-based access
modelling of Agichtein et al. [4].  Each probe costs one communication
round (only the first result page is fetched; the reported total does
the counting), and the profile estimates:

- the **hit rate** — how many probe values the source knows at all
  (also the DM selector's ``P(q ∈ DB | q ∈ DM)`` prior);
- the **match distribution** — mean/median/max matches per hit, plus a
  Zipf exponent fitted to the sorted match counts, which predicts
  whether hub-riding (GL) will pay off;
- a **crawl cost forecast** — the page cost of exhausting the source
  through queries, extrapolated from the probe mass.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.errors import EstimationError
from repro.core.query import Query
from repro.core.values import AttributeValue


@dataclass(frozen=True)
class SourceProfileReport:
    """What the probes revealed about one source."""

    probes: int
    hits: int
    match_counts: tuple  # totals of the non-empty probes, descending
    rounds_spent: int
    page_size: int
    zipf_exponent: Optional[float]

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    @property
    def mean_matches(self) -> float:
        if not self.match_counts:
            return 0.0
        return sum(self.match_counts) / len(self.match_counts)

    @property
    def median_matches(self) -> float:
        if not self.match_counts:
            return 0.0
        counts = sorted(self.match_counts)
        middle = len(counts) // 2
        if len(counts) % 2:
            return float(counts[middle])
        return (counts[middle - 1] + counts[middle]) / 2.0

    @property
    def max_matches(self) -> int:
        return max(self.match_counts) if self.match_counts else 0

    @property
    def hubby(self) -> bool:
        """Whether the probe distribution shows a hub head.

        True when the largest probe's matches dwarf the median — the
        regime where greedy link-based selection shines.
        """
        return self.max_matches >= 10 * max(self.median_matches, 1.0)

    def estimated_pages_per_value(self) -> float:
        """Mean page cost of a random candidate query, per Def. 2.3."""
        if not self.match_counts:
            return 1.0
        costs = [max(math.ceil(c / self.page_size), 1) for c in self.match_counts]
        # Misses still cost their one empty page.
        misses = self.probes - self.hits
        return (sum(costs) + misses) / self.probes

    def render(self) -> str:
        from repro.experiments.report import render_table

        rows = [
            ["probes issued", self.probes],
            ["rounds spent", self.rounds_spent],
            ["hit rate", f"{self.hit_rate:.1%}"],
            ["mean matches per hit", round(self.mean_matches, 1)],
            ["median matches per hit", round(self.median_matches, 1)],
            ["max matches", self.max_matches],
            ["zipf exponent", "-" if self.zipf_exponent is None
             else round(self.zipf_exponent, 2)],
            ["hub head present", self.hubby],
            ["mean pages per query", round(self.estimated_pages_per_value(), 2)],
        ]
        return render_table(["quantity", "value"], rows, title="Source profile")


def fit_zipf_exponent(match_counts: Sequence[int]) -> Optional[float]:
    """Fit ``count(rank) ∝ rank^-s`` over the sorted non-zero counts.

    Returns None with fewer than three distinct ranks (no line to fit).
    """
    counts = sorted((c for c in match_counts if c > 0), reverse=True)
    if len(counts) < 3:
        return None
    ranks = np.arange(1, len(counts) + 1, dtype=float)
    slope, _intercept = np.polyfit(np.log10(ranks), np.log10(counts), deg=1)
    return float(-slope)


def profile_source(
    server,
    probe_values: Sequence[AttributeValue],
    max_probes: int = 30,
    rng: Optional[random.Random] = None,
) -> SourceProfileReport:
    """Probe a source with candidate values and summarize what it knows.

    Each probe fetches only the first result page; sources that report
    totals are counted exactly, others by the first page's floor (the
    page is full ⇒ at least ``accessible`` matches).  Values the
    interface cannot express are skipped without cost.
    """
    if not probe_values:
        raise EstimationError("need at least one probe value")
    rng = rng or random.Random(0)
    candidates = list(probe_values)
    rng.shuffle(candidates)
    rounds_before = server.rounds
    hits = 0
    issued = 0
    match_counts: List[int] = []
    for value in candidates:
        if issued >= max_probes:
            break
        query = Query.equality(value.attribute, value.value)
        if not server.interface.accepts(query):
            if server.interface.supports_keyword:
                query = Query.keyword(value.value)
            else:
                continue
        page = server.submit(query, 1)
        issued += 1
        total = (
            page.total_matches
            if page.total_matches is not None
            else page.accessible_matches
        )
        if total > 0:
            hits += 1
            match_counts.append(total)
    if issued == 0:
        raise EstimationError("no probe was expressible on this interface")
    match_counts.sort(reverse=True)
    return SourceProfileReport(
        probes=issued,
        hits=hits,
        match_counts=tuple(match_counts),
        rounds_spent=server.rounds - rounds_before,
        page_size=server.page_size,
        zipf_exponent=fit_zipf_exponent(match_counts),
    )
