"""Student-t confidence statements over size estimates.

The paper applies t-testing to its 15 pairwise overlap estimates and
concludes "with 90% confidence, the Amazon DVD product database contains
less than 37,000 data records" — a one-sided upper confidence bound on
the mean estimate.  Both the two-sided interval and the one-sided bound
are provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats

from repro.core.errors import EstimationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its two-sided confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int


def _check(values: Sequence[float]) -> None:
    if len(values) < 2:
        raise EstimationError("need at least two estimates for a t-interval")
    if any(not math.isfinite(v) for v in values):
        raise EstimationError("estimates must be finite")


def t_confidence_interval(
    values: Sequence[float], confidence: float = 0.9
) -> ConfidenceInterval:
    """Two-sided t confidence interval for the mean of ``values``."""
    _check(values)
    if not 0 < confidence < 1:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stderr = math.sqrt(variance / n)
    critical = float(stats.t.ppf(0.5 + confidence / 2, df=n - 1))
    margin = critical * stderr
    return ConfidenceInterval(mean, mean - margin, mean + margin, confidence, n)


def upper_confidence_bound(values: Sequence[float], confidence: float = 0.9) -> float:
    """One-sided upper bound: mean + t₍α₎·s/√n (the "< 37,000" statement)."""
    _check(values)
    if not 0 < confidence < 1:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stderr = math.sqrt(variance / n)
    critical = float(stats.t.ppf(confidence, df=n - 1))
    return mean + critical * stderr
