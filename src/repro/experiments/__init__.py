"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.ablations import (
    run_abortion_ablation,
    run_greedy_signal_ablation,
    run_mmmi_ablation,
    run_smoothing_ablation,
)
from repro.experiments.amazon import AmazonSetup, build_amazon_setup
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import (
    COVERAGE_LEVELS,
    Figure3Panel,
    Figure3Result,
    run_figure3,
)
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.keyword import (
    KeywordInterfaceResult,
    run_keyword_interface,
)
from repro.experiments.harness import (
    PolicyRun,
    group_policy_runs,
    run_policy,
    run_policy_suite,
    sample_seed_values,
)
from repro.experiments.report import render_series, render_table
from repro.experiments.size_estimation import (
    SizeEstimationResult,
    run_size_estimation,
)
from repro.experiments.stability import (
    PolicySpread,
    StabilityResult,
    run_stability,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2

__all__ = [
    "AmazonSetup",
    "COVERAGE_LEVELS",
    "Figure2Result",
    "Figure3Panel",
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "KeywordInterfaceResult",
    "PolicyRun",
    "PolicySpread",
    "SizeEstimationResult",
    "StabilityResult",
    "Table1Result",
    "Table2Result",
    "build_amazon_setup",
    "group_policy_runs",
    "render_series",
    "render_table",
    "run_abortion_ablation",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_greedy_signal_ablation",
    "run_keyword_interface",
    "run_mmmi_ablation",
    "run_policy",
    "run_policy_suite",
    "run_size_estimation",
    "run_smoothing_ablation",
    "run_stability",
    "run_table1",
    "run_table2",
    "sample_seed_values",
]
