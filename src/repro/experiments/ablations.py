"""Ablation experiment drivers for the design choices DESIGN.md calls out.

Each driver mirrors one `benchmarks/test_ablation_*.py` bench as a
library function, so the ablations are runnable programmatically and
from the CLI, not only under pytest:

- :func:`run_greedy_signal_ablation` — GL's ranking signal: local
  degree vs local frequency vs the omniscient oracle.
- :func:`run_mmmi_ablation` — MMMI switch point, aggregate function,
  and the pure-Definition-3.1 ordering.
- :func:`run_smoothing_ablation` — Eq. 4.3 ΔDM smoothing on/off, plus
  the implied database-size estimate.
- :func:`run_abortion_ablation` — §3.4's two abortion heuristics under
  reported/hidden totals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crawler.abortion import (
    CombinedAbort,
    DuplicateFractionAbort,
    TotalCountAbort,
)
from repro.crawler.engine import CrawlerEngine
from repro.datasets.ebay import generate_ebay
from repro.datasets.registry import load_dataset
from repro.experiments.amazon import AmazonSetup, build_amazon_setup
from repro.experiments.figure3 import COVERAGE_LEVELS
from repro.experiments.harness import run_policy_suite, sample_seed_values
from repro.experiments.report import render_series, render_table
from repro.parallel import parallel_map
from repro.policies.domain import DomainKnowledgeSelector
from repro.policies.greedy import GreedyFrequencySelector, GreedyLinkSelector
from repro.policies.hybrid import GreedyMmmiSelector
from repro.policies.oracle import OracleSelector
from repro.server.webdb import SimulatedWebDatabase


@dataclass
class GreedySignalResult:
    database_size: int
    levels: Tuple[float, ...]
    series: Dict[str, list]

    def cost_at_90(self, label: str) -> float:
        return self.series[label][-1]

    def render(self) -> str:
        return render_series(
            "coverage",
            [f"{level:.0%}" for level in self.levels],
            self.series,
            title=(
                "Ablation — greedy ranking signal on DBLP "
                f"(|DB| = {self.database_size:,})"
            ),
        )


def run_greedy_signal_ablation(
    n_records: int = 5000, n_seeds: int = 3, seed: int = 2, workers=1,
    bus=None, trace=None, trace_timings=True,
) -> GreedySignalResult:
    """Degree vs frequency vs oracle on the DBLP database."""
    table = load_dataset("dblp", n_records, seed=seed)
    runs = run_policy_suite(
        table,
        {
            "degree (GL)": GreedyLinkSelector,
            "frequency": GreedyFrequencySelector,
            "oracle": lambda: OracleSelector(table, page_size=10),
        },
        n_seeds=n_seeds,
        rng_seed=seed,
        target_coverage=0.9,
        workers=workers,
        bus=bus,
        trace=trace,
        trace_timings=trace_timings,
    )
    series = {
        label: run.mean_cost_at(COVERAGE_LEVELS, len(table))
        for label, run in runs.items()
    }
    return GreedySignalResult(
        database_size=len(table), levels=COVERAGE_LEVELS, series=series
    )


@dataclass
class MmmiAblationResult:
    database_size: int
    target_coverage: float
    rounds: Dict[str, float]

    def render(self) -> str:
        return render_table(
            ["variant", f"mean rounds to {self.target_coverage:.0%}"],
            [[label, round(value)] for label, value in self.rounds.items()],
            title=(
                "Ablation — MMMI configuration on eBay "
                f"(|DB| = {self.database_size:,})"
            ),
        )


def run_mmmi_ablation(
    n_records: int = 6000,
    n_seeds: int = 3,
    seed: int = 2,
    target_coverage: float = 0.97,
    workers=1,
    bus=None,
    trace=None,
    trace_timings=True,
) -> MmmiAblationResult:
    """Switch point / aggregate / popularity-blending variants."""
    table = generate_ebay(n_records, seed=seed)
    variants = {
        "gl (no switch)": GreedyLinkSelector,
        "switch@0.75": lambda: GreedyMmmiSelector(0.75, detector=None),
        "switch@0.85": lambda: GreedyMmmiSelector(0.85, detector=None),
        "switch@0.95": lambda: GreedyMmmiSelector(0.95, detector=None),
        "mean-aggregate": lambda: GreedyMmmiSelector(
            0.85, detector=None, aggregate="mean"
        ),
        "pure-def-3.1": lambda: GreedyMmmiSelector(
            0.85, detector=None, popularity_weight=0.0
        ),
    }
    runs = run_policy_suite(
        table, variants, n_seeds=n_seeds, rng_seed=seed,
        target_coverage=target_coverage, workers=workers, bus=bus,
        trace=trace, trace_timings=trace_timings,
    )
    return MmmiAblationResult(
        database_size=len(table),
        target_coverage=target_coverage,
        rounds={label: run.mean_rounds for label, run in runs.items()},
    )


@dataclass
class SmoothingAblationResult:
    true_size: int
    #: label → (final coverage, implied |DB| estimate)
    results: Dict[str, Tuple[float, float]]

    def coverage(self, label: str) -> float:
        return self.results[label][0]

    def size_estimate(self, label: str) -> float:
        return self.results[label][1]

    def render(self) -> str:
        return render_table(
            ["variant", "final coverage", "implied |DB| estimate"],
            [
                [label, f"{coverage:.1%}", round(estimate)]
                for label, (coverage, estimate) in self.results.items()
            ],
            title=(
                "Ablation — Eq. 4.3 smoothing on the Amazon store "
                f"(true |DB| = {self.true_size:,})"
            ),
        )


def _smoothing_variant(payload, item) -> Tuple[str, float, float]:
    """Worker: one smoothing variant on a fresh store (parallel-safe)."""
    setup, seeds, rng_seed = payload
    label, smoothing = item
    server = setup.make_server()
    selector = DomainKnowledgeSelector(setup.dm1, smoothing=smoothing)
    engine = CrawlerEngine(server, selector, seed=rng_seed)
    outcome = engine.crawl(seeds, max_rounds=setup.request_budget)
    return label, outcome.coverage, selector.estimated_database_size()


def run_smoothing_ablation(
    setup: Optional[AmazonSetup] = None, rng_seed: int = 3, workers=1
) -> SmoothingAblationResult:
    """The ΔDM smoothing knob on the Amazon store."""
    setup = setup or build_amazon_setup()
    [seeds] = setup.sample_seeds(1, rng_seed=rng_seed)
    variants = [("smoothing on", True), ("smoothing off", False)]
    rows = parallel_map(
        _smoothing_variant, variants, payload=(setup, seeds, rng_seed),
        workers=workers,
    )
    results: Dict[str, Tuple[float, float]] = {
        label: (coverage, estimate) for label, coverage, estimate in rows
    }
    return SmoothingAblationResult(true_size=len(setup.store), results=results)


@dataclass
class AbortionAblationResult:
    database_size: int
    target_coverage: float
    #: label → (rounds, coverage, aborted queries)
    results: Dict[str, Tuple[int, float, int]]

    def rounds(self, label: str) -> int:
        return self.results[label][0]

    def render(self) -> str:
        return render_table(
            ["variant", f"rounds to {self.target_coverage:.0%}", "coverage",
             "aborted queries"],
            [
                [label, rounds, f"{coverage:.1%}", aborted]
                for label, (rounds, coverage, aborted) in self.results.items()
            ],
            title=(
                "Ablation — §3.4 query abortion on eBay "
                f"(|DB| = {self.database_size:,})"
            ),
        )


def _abortion_variant(payload, item) -> Tuple[str, int, float, int]:
    """Worker: one abortion heuristic against a fresh server."""
    table, seeds, seed, target_coverage = payload
    label, abortion, report_total = item
    server = SimulatedWebDatabase(table, page_size=10, report_total=report_total)
    engine = CrawlerEngine(
        server, GreedyLinkSelector(), seed=seed, abortion=abortion
    )
    outcome = engine.crawl(seeds, target_coverage=target_coverage)
    return (
        label,
        outcome.communication_rounds,
        outcome.coverage,
        outcome.aborted_queries,
    )


def run_abortion_ablation(
    n_records: int = 6000,
    seed: int = 5,
    target_coverage: float = 0.95,
    workers=1,
) -> AbortionAblationResult:
    """Both §3.4 heuristics under reported and hidden totals."""
    table = generate_ebay(n_records, seed=seed)
    seeds = sample_seed_values(table, 1, random.Random(seed), min_frequency=3)
    variants = [
        ("no abortion (totals shown)", None, True),
        ("heuristic 1 (totals shown)", TotalCountAbort(min_harvest_rate=1.0), True),
        ("no abortion (totals hidden)", None, False),
        (
            "heuristic 2 (totals hidden)",
            DuplicateFractionAbort(max_duplicate_fraction=0.9, probe_pages=2),
            False,
        ),
        ("combined (totals shown)", CombinedAbort(), True),
    ]
    rows = parallel_map(
        _abortion_variant,
        variants,
        payload=(table, seeds, seed, target_coverage),
        workers=workers,
    )
    results: Dict[str, Tuple[int, float, int]] = {
        label: (rounds, coverage, aborted)
        for label, rounds, coverage, aborted in rows
    }
    return AbortionAblationResult(
        database_size=len(table),
        target_coverage=target_coverage,
        results=results,
    )
