"""Shared setup for the Amazon-DVD experiments (Figures 5, 6, size est.).

Builds the movie universe once, derives the DVD store and the two IMDB
domain tables from it, and scales the paper's absolute constants to the
chosen universe size: Amazon's 3,200-record result limit and the
10,000-request budget are both kept proportional to the paper's
37,000-record store, so the regime (how hard the limit binds, how much
budget per record) matches the original experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.table import RelationalTable
from repro.datasets.movies import (
    IMDB_DT_ATTRIBUTES,
    MovieUniverse,
    generate_amazon_dvd,
    imdb_table_from_movies,
)
from repro.domain.table import DomainStatisticsTable, build_domain_table
from repro.experiments.harness import sample_seed_values
from repro.server.limits import ResultLimitPolicy
from repro.server.webdb import SimulatedWebDatabase

#: The paper's constants for the live Amazon experiment.
PAPER_STORE_SIZE = 37_000
PAPER_RESULT_LIMIT = 3_200
PAPER_REQUEST_BUDGET = 10_000

#: Domain-table subset years (the paper's DM(I) and DM(II)).
DM1_YEAR = 1960
DM2_YEAR = 1980


@dataclass
class AmazonSetup:
    """Everything the Amazon experiments need, built consistently."""

    universe: MovieUniverse
    store: RelationalTable
    dm1: DomainStatisticsTable
    dm2: DomainStatisticsTable
    result_limit: int
    request_budget: int
    seed: int

    def make_server(
        self, limit: Optional[int] = None, page_size: int = 10
    ) -> SimulatedWebDatabase:
        """A fresh store server (fresh communication log) per crawl."""
        return SimulatedWebDatabase(
            self.store,
            page_size=page_size,
            limit_policy=ResultLimitPolicy(
                limit=limit if limit is not None else self.result_limit,
                ordering="ranked",
                seed=self.seed,
            ),
        )

    def sample_seeds(self, count: int, rng_seed: int = 0):
        """Seed values from the store's connected bulk (frequency ≥ 3).

        The minimum frequency keeps seeds off single-record data
        islands, from which a relational crawler could not even start.
        """
        rng = random.Random(rng_seed)
        return [
            sample_seed_values(self.store, 1, rng, min_frequency=3)
            for _ in range(count)
        ]


def build_amazon_setup(
    n_movies: int = 6000,
    seed: int = 4,
    obscure_fraction: float = 0.2,
    budget_scale: float = 1.6,
) -> AmazonSetup:
    """Construct the experiment fixture.

    ``budget_scale`` stretches the paper-proportional request budget;
    the default of 1.6 compensates for small-scale granularity (at a
    few thousand records a single hub query is a visible fraction of
    the whole budget, which is not true at 37k).
    """
    universe = MovieUniverse(n_movies, seed=seed, obscure_fraction=obscure_fraction)
    store = generate_amazon_dvd(universe, seed=seed + 5)
    scale = len(store) / PAPER_STORE_SIZE
    result_limit = max(int(PAPER_RESULT_LIMIT * scale), 20)
    request_budget = int(PAPER_REQUEST_BUDGET * scale * budget_scale)
    dm1 = build_domain_table(
        imdb_table_from_movies(universe.since(DM1_YEAR), name="imdb-dm1"),
        attributes=IMDB_DT_ATTRIBUTES,
    )
    dm2 = build_domain_table(
        imdb_table_from_movies(universe.since(DM2_YEAR), name="imdb-dm2"),
        attributes=IMDB_DT_ATTRIBUTES,
    )
    return AmazonSetup(
        universe=universe,
        store=store,
        dm1=dm1,
        dm2=dm2,
        result_limit=result_limit,
        request_budget=request_budget,
        seed=seed,
    )
