"""Figure 2 — relational link degree distributions.

Builds the attribute-value graphs of the scholarly and movie databases
(the paper plots DBLP and IMDB; ACM is reported as similar to DBLP) and
fits a power law to each degree distribution.  The paper's claim is
qualitative — the log-log scatter is "very close to power-law" — which
here becomes: negative slope, reasonable R², and a heavy tail (the top
1% of vertices own a disproportionate share of edge endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.registry import load_dataset
from repro.experiments.report import render_table
from repro.graph.avg import build_avg_from_table
from repro.graph.powerlaw import (
    PowerLawFit,
    degree_histogram,
    fit_power_law_points,
    hub_fraction,
    loglog_points,
)

#: Databases the paper plots (ACM included for its "similar" remark).
FIGURE2_DATASETS = ("dblp", "imdb", "acm")


@dataclass(frozen=True)
class DegreeDistribution:
    """One database's Figure 2 panel."""

    dataset: str
    n_vertices: int
    n_edges: int
    fit: PowerLawFit
    hub_share_top1pct: float
    points: Tuple[np.ndarray, np.ndarray]  # (log10 degree, log10 frequency)


@dataclass
class Figure2Result:
    panels: List[DegreeDistribution]

    def panel(self, dataset: str) -> DegreeDistribution:
        for entry in self.panels:
            if entry.dataset == dataset:
                return entry
        raise KeyError(dataset)

    def render(self) -> str:
        return render_table(
            ["dataset", "vertices", "edges", "slope", "exponent", "R^2", "top-1% share"],
            [
                [
                    panel.dataset,
                    panel.n_vertices,
                    panel.n_edges,
                    round(panel.fit.slope, 2),
                    round(panel.fit.exponent, 2),
                    round(panel.fit.r_squared, 3),
                    round(panel.hub_share_top1pct, 3),
                ]
                for panel in self.panels
            ],
            title="Figure 2 — AVG degree distributions (log-log power-law fits)",
        )


def run_figure2(
    n_records: int = 4000, seed: int = 0, datasets: Tuple[str, ...] = FIGURE2_DATASETS
) -> Figure2Result:
    """Regenerate Figure 2's distributions and fits."""
    panels = []
    for name in datasets:
        table = load_dataset(name, n_records, seed=seed)
        graph = build_avg_from_table(table, queriable_only=True)
        histogram = degree_histogram(graph)
        x, y = loglog_points(histogram)
        fit = fit_power_law_points(x, y)
        panels.append(
            DegreeDistribution(
                dataset=name,
                n_vertices=graph.number_of_nodes(),
                n_edges=graph.number_of_edges(),
                fit=fit,
                hub_share_top1pct=hub_fraction(graph, 0.01),
                points=(x, y),
            )
        )
    return Figure2Result(panels=panels)
