"""Figure 3 — greedy link-based versus naive query selection.

For each of the four controlled databases, crawls with GL, breadth-
first, depth-first and random selection, averaged over several seed
values, and reports the communication rounds needed to reach each
database-coverage checkpoint (10%…90%) — the four panels of Figure 3.

The paper's headline shapes, which the benchmark asserts:

- GL reaches high coverage (≥ 70%) cheaper than every naive method on
  every database;
- every method's cost curve steepens sharply past ~80% coverage (the
  "low marginal benefit" phenomenon).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.registry import dataset_names, load_dataset
from repro.experiments.harness import PolicyRun, run_policy_suite
from repro.experiments.report import render_series
from repro.policies.greedy import GreedyLinkSelector
from repro.policies.naive import (
    BreadthFirstSelector,
    DepthFirstSelector,
    RandomSelector,
)

#: Coverage checkpoints on Figure 3's x axis.
COVERAGE_LEVELS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Figure 3's four methods.
FIGURE3_POLICIES = {
    "greedy-link": GreedyLinkSelector,
    "bfs": BreadthFirstSelector,
    "dfs": DepthFirstSelector,
    "random": RandomSelector,
}


@dataclass
class Figure3Panel:
    """One database's cost-versus-coverage series."""

    dataset: str
    database_size: int
    levels: Tuple[float, ...]
    series: Dict[str, List[Optional[float]]]
    runs: Dict[str, PolicyRun] = field(default_factory=dict)

    def cost(self, policy: str, level: float) -> Optional[float]:
        return self.series[policy][self.levels.index(level)]

    def render(self) -> str:
        return render_series(
            "coverage",
            [f"{level:.0%}" for level in self.levels],
            self.series,
            title=(
                f"Figure 3 ({self.dataset}) — rounds to reach coverage, "
                f"|DB| = {self.database_size:,}"
            ),
        )

    def chart(self, width: int = 64, height: int = 14) -> str:
        """The panel as an ASCII line chart (cost vs. coverage level).

        Series that never reached a level are truncated at their last
        reached level, matching how the paper's plots simply end.
        """
        from repro.analysis.charts import ascii_chart

        reached = {
            label: [cost for cost in costs if cost is not None]
            for label, costs in self.series.items()
        }
        shortest = min(len(costs) for costs in reached.values())
        if shortest == 0:
            raise ValueError("no method reached even the first level")
        series = {label: costs[:shortest] for label, costs in reached.items()}
        return ascii_chart(
            series,
            width=width,
            height=height,
            x_values=[level * 100 for level in self.levels[:shortest]],
            title=f"Figure 3 ({self.dataset}) — rounds vs. coverage %",
            y_label="rnd",
        )


@dataclass
class Figure3Result:
    panels: List[Figure3Panel]

    def panel(self, dataset: str) -> Figure3Panel:
        for entry in self.panels:
            if entry.dataset == dataset:
                return entry
        raise KeyError(dataset)

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels)


def run_figure3(
    n_records: int = 4000,
    n_seeds: int = 4,
    seed: int = 0,
    datasets: Sequence[str] = (),
    max_level: float = 0.9,
    page_size: int = 10,
    workers=1,
    bus=None,
    trace=None,
    trace_timings=True,
) -> Figure3Result:
    """Regenerate Figure 3 (all four panels by default).

    ``n_records`` scales each controlled database; the paper's absolute
    round counts scale accordingly but the ordering of methods does not.
    ``workers`` fans each panel's (policy × seed) grid out over a
    process pool (see :mod:`repro.parallel`); results are bit-identical
    to the sequential run.
    """
    levels = tuple(level for level in COVERAGE_LEVELS if level <= max_level)
    panels = []
    for name in datasets or dataset_names():
        table = load_dataset(name, n_records, seed=seed)
        runs = run_policy_suite(
            table,
            {label: factory for label, factory in FIGURE3_POLICIES.items()},
            n_seeds=n_seeds,
            rng_seed=seed,
            page_size=page_size,
            target_coverage=max_level,
            workers=workers,
            bus=bus,
            trace=trace,
            trace_timings=trace_timings,
            trace_append=bool(panels),
        )
        series = {
            label: run.mean_cost_at(levels, len(table))
            for label, run in runs.items()
        }
        panels.append(
            Figure3Panel(
                dataset=name,
                database_size=len(table),
                levels=levels,
                series=series,
                runs=runs,
            )
        )
    return Figure3Result(panels=panels)
