"""Figure 4 — effects of mutual-information-based ordering (MMMI).

On the eBay dataset, compares plain GL against GL that switches to MMMI
ordering once coverage reaches the saturation point (the paper uses
85%).  The measured quantity is the cost of "squeezing out the marginal
content": communication rounds to climb from the switch point to the
final coverage target.  The paper reports MMMI saving about 1,200
rounds on its 20k-record eBay; at other scales the saving scales, so
the benchmark asserts the *sign* and reports the magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import load_dataset
from repro.experiments.harness import PolicyRun, run_policy_suite
from repro.experiments.report import render_table
from repro.policies.greedy import GreedyLinkSelector
from repro.policies.hybrid import GreedyMmmiSelector


@dataclass
class Figure4Result:
    dataset: str
    database_size: int
    switch_coverage: float
    target_coverage: float
    greedy: PolicyRun
    hybrid: PolicyRun

    @property
    def greedy_rounds(self) -> float:
        return self.greedy.mean_rounds

    @property
    def hybrid_rounds(self) -> float:
        return self.hybrid.mean_rounds

    @property
    def rounds_saved(self) -> float:
        """Positive when MMMI reaches the target cheaper than plain GL."""
        return self.greedy_rounds - self.hybrid_rounds

    def render(self) -> str:
        table = render_table(
            ["method", "rounds to target", "final coverage"],
            [
                ["greedy-link", round(self.greedy_rounds), f"{self.greedy.mean_final_coverage:.1%}"],
                ["greedy-link + MMMI", round(self.hybrid_rounds), f"{self.hybrid.mean_final_coverage:.1%}"],
            ],
            title=(
                f"Figure 4 ({self.dataset}) — MMMI switch at "
                f"{self.switch_coverage:.0%}, target {self.target_coverage:.0%}, "
                f"|DB| = {self.database_size:,}"
            ),
        )
        return table + f"\nrounds saved by MMMI: {self.rounds_saved:.0f}"


def run_figure4(
    n_records: int = 4000,
    n_seeds: int = 3,
    seed: int = 0,
    dataset: str = "ebay",
    switch_coverage: float = 0.85,
    target_coverage: float = 0.97,
    batch_size: int = 25,
    popularity_weight: float = 1.0,
    workers=1,
    bus=None,
    trace=None,
    trace_timings=True,
) -> Figure4Result:
    """Regenerate Figure 4 on the eBay dataset.

    ``target_coverage`` defaults to 97% rather than the 100% in the
    figure: the paper's own Figure 4 axis tops out at full coverage of
    the *reachable* records, and at small scales the final fraction of
    a percent is dominated by a handful of single-record queries that
    add noise, not signal.
    """
    table = load_dataset(dataset, n_records, seed=seed)
    runs = run_policy_suite(
        table,
        {
            "greedy-link": GreedyLinkSelector,
            "greedy-link+mmmi": lambda: GreedyMmmiSelector(
                switch_coverage=switch_coverage,
                detector=None,
                batch_size=batch_size,
                popularity_weight=popularity_weight,
            ),
        },
        n_seeds=n_seeds,
        rng_seed=seed,
        target_coverage=target_coverage,
        workers=workers,
        bus=bus,
        trace=trace,
        trace_timings=trace_timings,
    )
    return Figure4Result(
        dataset=dataset,
        database_size=len(table),
        switch_coverage=switch_coverage,
        target_coverage=target_coverage,
        greedy=runs["greedy-link"],
        hybrid=runs["greedy-link+mmmi"],
    )
