"""Figure 5 — domain-knowledge versus greedy link on the Amazon DVD store.

Crawls the simulated store with GL and with the DM selector backed by
two domain tables — DM(I) built from the larger IMDB subset (movies
since 1960) and DM(II) from the smaller one (since 1980) — under the
paper-proportional request budget, taking coverage snapshots at regular
request checkpoints.

Shapes asserted by the benchmark, per the paper:

- both DM crawlers end with higher coverage than GL;
- DM(I) ends at or above DM(II) (a richer domain table helps);
- GL's curve flattens (data islands + dependency) while DM keeps
  climbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.amazon import AmazonSetup, build_amazon_setup
from repro.experiments.harness import PolicyRun, group_policy_runs
from repro.experiments.report import render_series
from repro.parallel import CrawlGrid, CrawlTask, run_crawl_grid
from repro.policies.domain import DomainKnowledgeSelector
from repro.policies.greedy import GreedyLinkSelector


@dataclass
class Figure5Result:
    store_size: int
    result_limit: int
    request_budget: int
    checkpoints: Tuple[int, ...]
    series: Dict[str, List[float]]  # label -> mean coverage per checkpoint
    runs: Dict[str, PolicyRun]

    def final(self, label: str) -> float:
        return self.series[label][-1]

    def render(self) -> str:
        return render_series(
            "requests",
            list(self.checkpoints),
            {k: [round(v, 3) for v in vs] for k, vs in self.series.items()},
            title=(
                f"Figure 5 — coverage vs. requests on the Amazon DVD store "
                f"(|DB| = {self.store_size:,}, limit = {self.result_limit}, "
                f"budget = {self.request_budget:,})"
            ),
        )

    def chart(self, width: int = 64, height: int = 14) -> str:
        """The figure as an ASCII line chart (coverage vs. requests)."""
        from repro.analysis.charts import ascii_chart

        return ascii_chart(
            self.series,
            width=width,
            height=height,
            x_values=list(self.checkpoints),
            title="Figure 5 — coverage vs. requests",
            y_label="cov",
        )


def run_figure5(
    setup: Optional[AmazonSetup] = None,
    n_seeds: int = 2,
    n_checkpoints: int = 10,
    rng_seed: int = 0,
    workers=1,
    bus=None,
    trace=None,
    trace_timings=True,
) -> Figure5Result:
    """Regenerate Figure 5 (builds a default :class:`AmazonSetup` if needed)."""
    setup = setup or build_amazon_setup()
    budget = setup.request_budget
    step = max(budget // n_checkpoints, 1)
    checkpoints = tuple(range(step, budget + 1, step))
    seed_sets = setup.sample_seeds(n_seeds, rng_seed=rng_seed)

    policies = {
        "greedy-link": GreedyLinkSelector,
        "dm1": lambda: DomainKnowledgeSelector(setup.dm1),
        "dm2": lambda: DomainKnowledgeSelector(setup.dm2),
    }
    tasks = tuple(
        CrawlTask(label=label, seed_index=index, seeds=tuple(seeds))
        for label in policies
        for index, seeds in enumerate(seed_sets)
    )
    grid = CrawlGrid(
        make_server=lambda task: setup.make_server(),
        make_selector=lambda task: policies[task.label](),
        tasks=tasks,
        rng_seed=rng_seed,
        crawl_kwargs={"max_rounds": budget},
    )
    outcome = run_crawl_grid(
        grid, workers=workers, bus=bus,
        trace=trace, trace_timings=trace_timings,
    )
    runs: Dict[str, PolicyRun] = group_policy_runs(tasks, outcome.results)

    size = len(setup.store)
    series = {
        label: run.mean_coverage_at(checkpoints, size) for label, run in runs.items()
    }
    return Figure5Result(
        store_size=size,
        result_limit=setup.result_limit,
        request_budget=budget,
        checkpoints=checkpoints,
        series=series,
        runs=runs,
    )
