"""Figure 6 — crawling performance under tighter result-size limits.

Repeats the Amazon-store crawl (GL and DM(I)) with the source's result
limit tightened to 50 and 10 records per query — the paper's "most Web
databases set an upper bound on the number of results" scenario — next
to the store's native (Amazon-proportional) limit.

Shapes asserted by the benchmark, per the paper:

- both methods lose coverage as the limit tightens;
- limit = 10 hurts more than limit = 50;
- DM stays at or above GL at every limit (the limit "delays the
  discovery of hub nodes", which DM sidesteps via the domain table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crawler.engine import CrawlerEngine
from repro.experiments.amazon import AmazonSetup, build_amazon_setup
from repro.experiments.harness import PolicyRun
from repro.experiments.report import render_table
from repro.policies.domain import DomainKnowledgeSelector
from repro.policies.greedy import GreedyLinkSelector


@dataclass
class Figure6Result:
    store_size: int
    request_budget: int
    limits: Tuple[int, ...]
    #: ``coverage[(method, limit)]`` → mean final coverage.
    coverage: Dict[Tuple[str, int], float]
    runs: Dict[Tuple[str, int], PolicyRun]

    def degradation(self, method: str, limit: int) -> float:
        """Relative coverage loss versus the native (largest) limit."""
        base = self.coverage[(method, max(self.limits))]
        if base == 0:
            return 0.0
        return 1.0 - self.coverage[(method, limit)] / base

    def render(self) -> str:
        methods = sorted({method for method, _limit in self.coverage})
        rows = []
        for method in methods:
            row = [method]
            for limit in self.limits:
                row.append(f"{self.coverage[(method, limit)]:.1%}")
            rows.append(row)
        return render_table(
            ["method"] + [f"limit {limit}" for limit in self.limits],
            rows,
            title=(
                f"Figure 6 — final coverage under result-size limits "
                f"(|DB| = {self.store_size:,}, budget = {self.request_budget:,})"
            ),
        )


def run_figure6(
    setup: Optional[AmazonSetup] = None,
    limits: Tuple[int, ...] = (10, 50),
    n_seeds: int = 2,
    rng_seed: int = 0,
) -> Figure6Result:
    """Regenerate Figure 6.

    ``limits`` are the tightened caps; the setup's native limit (the
    3,200-proportional one) is always included as the baseline.
    """
    setup = setup or build_amazon_setup()
    all_limits = tuple(sorted(set(limits) | {setup.result_limit}))
    budget = setup.request_budget
    seed_sets = setup.sample_seeds(n_seeds, rng_seed=rng_seed)
    policies = {
        "greedy-link": GreedyLinkSelector,
        "dm1": lambda: DomainKnowledgeSelector(setup.dm1),
    }
    coverage: Dict[Tuple[str, int], float] = {}
    runs: Dict[Tuple[str, int], PolicyRun] = {}
    size = len(setup.store)
    for limit in all_limits:
        for label, factory in policies.items():
            run: Optional[PolicyRun] = None
            for index, seeds in enumerate(seed_sets):
                server = setup.make_server(limit=limit)
                engine = CrawlerEngine(server, factory(), seed=rng_seed + index)
                result = engine.crawl(seeds, max_rounds=budget)
                if run is None:
                    run = PolicyRun(policy=result.policy)
                run.results.append(result)
            assert run is not None
            runs[(label, limit)] = run
            coverage[(label, limit)] = run.mean_final_coverage
    return Figure6Result(
        store_size=size,
        request_budget=budget,
        limits=all_limits,
        coverage=coverage,
        runs=runs,
    )
