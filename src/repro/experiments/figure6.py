"""Figure 6 — crawling performance under tighter result-size limits.

Repeats the Amazon-store crawl (GL and DM(I)) with the source's result
limit tightened to 50 and 10 records per query — the paper's "most Web
databases set an upper bound on the number of results" scenario — next
to the store's native (Amazon-proportional) limit.

Shapes asserted by the benchmark, per the paper:

- both methods lose coverage as the limit tightens;
- limit = 10 hurts more than limit = 50;
- DM stays at or above GL at every limit (the limit "delays the
  discovery of hub nodes", which DM sidesteps via the domain table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.experiments.amazon import AmazonSetup, build_amazon_setup
from repro.experiments.harness import PolicyRun
from repro.experiments.report import render_table
from repro.parallel import CrawlGrid, CrawlTask, run_crawl_grid
from repro.policies.domain import DomainKnowledgeSelector
from repro.policies.greedy import GreedyLinkSelector


@dataclass
class Figure6Result:
    store_size: int
    request_budget: int
    limits: Tuple[int, ...]
    #: ``coverage[(method, limit)]`` → mean final coverage.
    coverage: Dict[Tuple[str, int], float]
    runs: Dict[Tuple[str, int], PolicyRun]

    def degradation(self, method: str, limit: int) -> float:
        """Relative coverage loss versus the native (largest) limit."""
        base = self.coverage[(method, max(self.limits))]
        if base == 0:
            return 0.0
        return 1.0 - self.coverage[(method, limit)] / base

    def render(self) -> str:
        methods = sorted({method for method, _limit in self.coverage})
        rows = []
        for method in methods:
            row = [method]
            for limit in self.limits:
                row.append(f"{self.coverage[(method, limit)]:.1%}")
            rows.append(row)
        return render_table(
            ["method"] + [f"limit {limit}" for limit in self.limits],
            rows,
            title=(
                f"Figure 6 — final coverage under result-size limits "
                f"(|DB| = {self.store_size:,}, budget = {self.request_budget:,})"
            ),
        )


def run_figure6(
    setup: Optional[AmazonSetup] = None,
    limits: Tuple[int, ...] = (10, 50),
    n_seeds: int = 2,
    rng_seed: int = 0,
    workers=1,
    bus=None,
    trace=None,
    trace_timings=True,
) -> Figure6Result:
    """Regenerate Figure 6.

    ``limits`` are the tightened caps; the setup's native limit (the
    3,200-proportional one) is always included as the baseline.
    """
    setup = setup or build_amazon_setup()
    all_limits = tuple(sorted(set(limits) | {setup.result_limit}))
    budget = setup.request_budget
    seed_sets = setup.sample_seeds(n_seeds, rng_seed=rng_seed)
    policies = {
        "greedy-link": GreedyLinkSelector,
        "dm1": lambda: DomainKnowledgeSelector(setup.dm1),
    }
    tasks = tuple(
        CrawlTask(label=label, seed_index=index, seeds=tuple(seeds), key=limit)
        for limit in all_limits
        for label in policies
        for index, seeds in enumerate(seed_sets)
    )
    grid = CrawlGrid(
        make_server=lambda task: setup.make_server(limit=task.key),
        make_selector=lambda task: policies[task.label](),
        tasks=tasks,
        rng_seed=rng_seed,
        crawl_kwargs={"max_rounds": budget},
    )
    outcome = run_crawl_grid(
        grid, workers=workers, bus=bus,
        trace=trace, trace_timings=trace_timings,
    )
    coverage: Dict[Tuple[str, int], float] = {}
    runs: Dict[Tuple[str, int], PolicyRun] = {}
    size = len(setup.store)
    for task, result in zip(tasks, outcome.results):
        cell = (task.label, task.key)
        run = runs.get(cell)
        if run is None:
            run = runs[cell] = PolicyRun(policy=result.policy)
        run.results.append(result)
    for cell, run in runs.items():
        coverage[cell] = run.mean_final_coverage
    return Figure6Result(
        store_size=size,
        request_budget=budget,
        limits=all_limits,
        coverage=coverage,
        runs=runs,
    )
