"""Shared machinery for the per-figure experiment drivers.

The paper's evaluation protocol repeats across figures: build a
controlled source, pick seed values, run each query-selection policy,
average over several seeds, and read either *cost to reach coverage
levels* (Figure 3/4) or *coverage within a round budget* (Figure 5/6)
off the crawl histories.  This module implements that protocol once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.table import RelationalTable
from repro.core.values import AttributeValue
from repro.crawler.engine import CrawlerEngine, CrawlResult
from repro.policies.base import QuerySelector
from repro.server.limits import ResultLimitPolicy
from repro.server.webdb import SimulatedWebDatabase

#: A policy factory: fresh selector per crawl (selectors are single-use).
PolicyFactory = Callable[[], QuerySelector]


def sample_seed_values(
    table: RelationalTable,
    count: int,
    rng: random.Random,
    min_frequency: int = 1,
) -> List[AttributeValue]:
    """Draw seed attribute values from random records of the table.

    Mirrors the paper's setup ("evaluated four times with different seed
    values ... and the average result is reported").  One queriable
    value is drawn from each of ``count`` random records;
    ``min_frequency`` can bias seeds away from single-record islands
    (used for the Amazon experiments, where a frequency-1 seed may be an
    island the relational crawler can never leave).
    """
    queriable = set(table.schema.queriable)
    record_ids = table.record_ids()
    seeds: List[AttributeValue] = []
    attempts = 0
    while len(seeds) < count and attempts < 200 * count:
        attempts += 1
        record = table.get(record_ids[rng.randrange(len(record_ids))])
        candidates = [
            pair
            for pair in record.attribute_values()
            if pair.attribute in queriable
            and table.frequency(pair) >= min_frequency
        ]
        if not candidates:
            continue
        value = candidates[rng.randrange(len(candidates))]
        if value not in seeds:
            seeds.append(value)
    if not seeds:
        raise ValueError("could not sample any seed values")
    return seeds


@dataclass
class PolicyRun:
    """One policy's averaged measurements over several seeded crawls."""

    policy: str
    results: List[CrawlResult] = field(default_factory=list)

    def mean_cost_at(self, levels: Sequence[float], database_size: int) -> List[Optional[float]]:
        """Mean rounds to each coverage level (None if any run missed it)."""
        out: List[Optional[float]] = []
        for level in levels:
            costs = [
                r.history.rounds_to_coverage(level, database_size)
                for r in self.results
            ]
            if any(c is None for c in costs):
                out.append(None)
            else:
                out.append(sum(costs) / len(costs))
        return out

    def mean_coverage_at(self, checkpoints: Sequence[int], database_size: int) -> List[float]:
        """Mean coverage at each round checkpoint."""
        out = []
        for checkpoint in checkpoints:
            values = [
                r.history.coverage_at_rounds(checkpoint, database_size)
                for r in self.results
            ]
            out.append(sum(values) / len(values))
        return out

    @property
    def mean_final_coverage(self) -> float:
        return sum(r.coverage for r in self.results) / len(self.results)

    @property
    def mean_rounds(self) -> float:
        return sum(r.communication_rounds for r in self.results) / len(self.results)


def run_policy(
    table: RelationalTable,
    policy_factory: PolicyFactory,
    seeds: Sequence[Sequence[AttributeValue]],
    page_size: int = 10,
    limit_policy: Optional[ResultLimitPolicy] = None,
    rng_seed: int = 0,
    **crawl_kwargs,
) -> PolicyRun:
    """Crawl ``table`` once per seed set and aggregate the results.

    ``seeds`` is a sequence of seed-value lists — one crawl per entry;
    each crawl gets a fresh server (fresh communication log) and a fresh
    selector from the factory.
    """
    run: Optional[PolicyRun] = None
    for index, seed_values in enumerate(seeds):
        server = SimulatedWebDatabase(
            table, page_size=page_size, limit_policy=limit_policy
        )
        engine = CrawlerEngine(server, policy_factory(), seed=rng_seed + index)
        result = engine.crawl(seed_values, **crawl_kwargs)
        if run is None:
            run = PolicyRun(policy=result.policy)
        run.results.append(result)
    assert run is not None
    return run


def run_policy_suite(
    table: RelationalTable,
    policies: Dict[str, PolicyFactory],
    n_seeds: int = 4,
    seed_min_frequency: int = 1,
    page_size: int = 10,
    limit_policy: Optional[ResultLimitPolicy] = None,
    rng_seed: int = 0,
    **crawl_kwargs,
) -> Dict[str, PolicyRun]:
    """Run several policies over the same seed sets (paired comparison)."""
    rng = random.Random(rng_seed)
    seed_sets = [
        sample_seed_values(table, 1, rng, min_frequency=seed_min_frequency)
        for _ in range(n_seeds)
    ]
    return {
        label: run_policy(
            table,
            factory,
            seed_sets,
            page_size=page_size,
            limit_policy=limit_policy,
            rng_seed=rng_seed,
            **crawl_kwargs,
        )
        for label, factory in policies.items()
    }
