"""Shared machinery for the per-figure experiment drivers.

The paper's evaluation protocol repeats across figures: build a
controlled source, pick seed values, run each query-selection policy,
average over several seeds, and read either *cost to reach coverage
levels* (Figure 3/4) or *coverage within a round budget* (Figure 5/6)
off the crawl histories.  This module implements that protocol once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import shmtable
from repro.core.table import RelationalTable
from repro.core.values import AttributeValue
from repro.crawler.engine import CrawlResult
from repro.metrics.registry import MetricsRegistry
from repro.parallel import CrawlGrid, CrawlTask, WorkerSpec, run_crawl_grid
from repro.policies.base import QuerySelector
from repro.runtime.events import EventBus
from repro.server.limits import ResultLimitPolicy
from repro.server.webdb import SimulatedWebDatabase

#: A policy factory: fresh selector per crawl (selectors are single-use).
PolicyFactory = Callable[[], QuerySelector]


def _table_source(table: RelationalTable, share: bool):
    """Resolve how grid workers reach the table.

    Returns ``(source, payloads, cleanup)``: ``source()`` is what the
    server factory hands to :class:`SimulatedWebDatabase` (called inside
    workers, after fork), ``payloads`` goes on the grid for shm-byte
    accounting, and ``cleanup()`` must run once the grid is done.

    With ``share`` and a supported platform the table is flattened into
    one shared-memory block (:func:`repro.core.shmtable.share_table`)
    and every worker attaches the same read-only view — identical crawl
    results, no per-worker table copy.  Otherwise workers close over
    the table object itself (the legacy path).
    """
    if share and shmtable.supported() and len(table) > 0:
        handle = shmtable.share_table(table)
        return handle.table, (handle,), handle.unlink
    return (lambda: table), (), (lambda: None)


def sample_seed_values(
    table: RelationalTable,
    count: int,
    rng: random.Random,
    min_frequency: int = 1,
) -> List[AttributeValue]:
    """Draw seed attribute values from random records of the table.

    Mirrors the paper's setup ("evaluated four times with different seed
    values ... and the average result is reported").  One queriable
    value is drawn from each of ``count`` random records;
    ``min_frequency`` can bias seeds away from single-record islands
    (used for the Amazon experiments, where a frequency-1 seed may be an
    island the relational crawler can never leave).
    """
    queriable = set(table.schema.queriable)
    record_ids = table.record_ids()
    seeds: List[AttributeValue] = []
    attempts = 0
    while len(seeds) < count and attempts < 200 * count:
        attempts += 1
        record = table.get(record_ids[rng.randrange(len(record_ids))])
        candidates = [
            pair
            for pair in record.attribute_values()
            if pair.attribute in queriable
            and table.frequency(pair) >= min_frequency
        ]
        if not candidates:
            continue
        value = candidates[rng.randrange(len(candidates))]
        if value not in seeds:
            seeds.append(value)
    if not seeds:
        raise ValueError("could not sample any seed values")
    return seeds


@dataclass
class PolicyRun:
    """One policy's averaged measurements over several seeded crawls."""

    policy: str
    results: List[CrawlResult] = field(default_factory=list)

    def mean_cost_at(self, levels: Sequence[float], database_size: int) -> List[Optional[float]]:
        """Mean rounds to each coverage level (None if any run missed it)."""
        out: List[Optional[float]] = []
        for level in levels:
            costs = [
                r.history.rounds_to_coverage(level, database_size)
                for r in self.results
            ]
            if any(c is None for c in costs):
                out.append(None)
            else:
                out.append(sum(costs) / len(costs))
        return out

    def mean_coverage_at(self, checkpoints: Sequence[int], database_size: int) -> List[float]:
        """Mean coverage at each round checkpoint."""
        out = []
        for checkpoint in checkpoints:
            values = [
                r.history.coverage_at_rounds(checkpoint, database_size)
                for r in self.results
            ]
            out.append(sum(values) / len(values))
        return out

    @property
    def mean_final_coverage(self) -> float:
        return sum(r.coverage for r in self.results) / len(self.results)

    @property
    def mean_rounds(self) -> float:
        return sum(r.communication_rounds for r in self.results) / len(self.results)


def group_policy_runs(
    tasks: Sequence[CrawlTask], results: Sequence[CrawlResult]
) -> Dict[str, PolicyRun]:
    """Fold grid results back into per-policy runs, preserving order.

    Results arrive in fixed task order, so each policy's
    :class:`PolicyRun` holds its crawls in seed-set order — exactly the
    list the sequential loop would have built.
    """
    runs: Dict[str, PolicyRun] = {}
    for task, result in zip(tasks, results):
        label = task.label or result.policy
        run = runs.get(label)
        if run is None:
            run = runs[label] = PolicyRun(policy=result.policy)
        run.results.append(result)
    return runs


def run_policy(
    table: RelationalTable,
    policy_factory: PolicyFactory,
    seeds: Sequence[Sequence[AttributeValue]],
    page_size: int = 10,
    limit_policy: Optional[ResultLimitPolicy] = None,
    rng_seed: int = 0,
    workers: WorkerSpec = 1,
    bus: Optional[EventBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[str] = None,
    trace_timings: bool = True,
    trace_append: bool = False,
    share_table: bool = False,
    **crawl_kwargs,
) -> PolicyRun:
    """Crawl ``table`` once per seed set and aggregate the results.

    ``seeds`` is a sequence of seed-value lists — one crawl per entry;
    each crawl gets a fresh server (fresh communication log) and a fresh
    selector from the factory.  ``workers`` fans the crawls out over a
    process pool (``None``/``"auto"`` = one per CPU); the parallel run
    is bit-identical to ``workers=1`` because each crawl derives its
    engine seed as ``rng_seed + index`` either way.  ``metrics``
    (a :class:`~repro.metrics.registry.MetricsRegistry`) receives
    per-task telemetry merged in fixed task order.  ``share_table``
    ships the table to workers as one shared-memory block instead of a
    per-worker copy (identical results; silently falls back to the
    plain table where shared memory is unavailable).
    """
    tasks = tuple(
        CrawlTask(label="", seed_index=index, seeds=tuple(seed_values))
        for index, seed_values in enumerate(seeds)
    )
    source, payloads, cleanup = _table_source(table, share_table)
    grid = CrawlGrid(
        make_server=lambda task: SimulatedWebDatabase(
            source(), page_size=page_size, limit_policy=limit_policy
        ),
        make_selector=lambda task: policy_factory(),
        tasks=tasks,
        rng_seed=rng_seed,
        crawl_kwargs=crawl_kwargs,
        shared_payloads=payloads,
    )
    try:
        outcome = run_crawl_grid(
            grid,
            workers=workers,
            bus=bus,
            metrics=metrics,
            trace=trace,
            trace_timings=trace_timings,
            trace_append=trace_append,
        )
    finally:
        cleanup()
    [run] = group_policy_runs(tasks, outcome.results).values()
    return run


def run_policy_suite(
    table: RelationalTable,
    policies: Dict[str, PolicyFactory],
    n_seeds: int = 4,
    seed_min_frequency: int = 1,
    page_size: int = 10,
    limit_policy: Optional[ResultLimitPolicy] = None,
    rng_seed: int = 0,
    workers: WorkerSpec = 1,
    bus: Optional[EventBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[str] = None,
    trace_timings: bool = True,
    trace_append: bool = False,
    share_table: bool = False,
    **crawl_kwargs,
) -> Dict[str, PolicyRun]:
    """Run several policies over the same seed sets (paired comparison).

    The whole (policy × seed-set) grid fans out together through
    :func:`repro.parallel.run_crawl_grid`, so a 4-policy × 4-seed suite
    keeps up to 16 workers busy; ``workers=1`` is the legacy sequential
    path (same task order, same results).  ``share_table`` backs every
    worker's server with one shared-memory copy of the table (see
    :func:`run_policy`).
    """
    rng = random.Random(rng_seed)
    seed_sets = [
        sample_seed_values(table, 1, rng, min_frequency=seed_min_frequency)
        for _ in range(n_seeds)
    ]
    tasks = tuple(
        CrawlTask(label=label, seed_index=index, seeds=tuple(seed_values))
        for label in policies
        for index, seed_values in enumerate(seed_sets)
    )
    source, payloads, cleanup = _table_source(table, share_table)
    grid = CrawlGrid(
        make_server=lambda task: SimulatedWebDatabase(
            source(), page_size=page_size, limit_policy=limit_policy
        ),
        make_selector=lambda task: policies[task.label](),
        tasks=tasks,
        rng_seed=rng_seed,
        crawl_kwargs=crawl_kwargs,
        shared_payloads=payloads,
    )
    try:
        outcome = run_crawl_grid(
            grid,
            workers=workers,
            bus=bus,
            metrics=metrics,
            trace=trace,
            trace_timings=trace_timings,
            trace_append=trace_append,
        )
    finally:
        cleanup()
    return group_policy_runs(tasks, outcome.results)
