"""The "fading schema" experiment (extension of the §2.2 case study).

The paper's Table 1 case study observes that "contrary to the common
belief ... most e-commerce Web sites also support keyword based search
over their transactional product databases" and argues this "trend of
fading schema opens exciting opportunities for query-based database
crawling": the crawler can throw any harvested value into the search
box and let the site pick the column.

The paper never quantifies the opportunity; this experiment does.  The
same DVD store is crawled through three interfaces:

- **structured** — the retail form (title/people predicates only);
- **keyword** — a bare search box (every value of every displayed
  attribute becomes a candidate query, and names shared across columns
  — actor-directors — match both);
- **both** — structured predicates plus a keyword fallback.

Coverage within one request budget quantifies how much reach the
keyword box adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crawler.engine import CrawlerEngine, CrawlResult
from repro.experiments.amazon import AmazonSetup, build_amazon_setup
from repro.experiments.report import render_table
from repro.policies.greedy import GreedyLinkSelector
from repro.server.interface import QueryInterface


@dataclass
class KeywordInterfaceResult:
    store_size: int
    request_budget: int
    results: Dict[str, CrawlResult]

    def coverage(self, label: str) -> float:
        return self.results[label].coverage

    def render(self) -> str:
        return render_table(
            ["interface", "coverage @ budget", "queries", "rounds"],
            [
                [
                    label,
                    f"{result.coverage:.1%}",
                    result.queries_issued,
                    result.communication_rounds,
                ]
                for label, result in self.results.items()
            ],
            title=(
                "Fading schema — the same store through three interfaces "
                f"(|DB| = {self.store_size:,}, budget = {self.request_budget:,})"
            ),
        )


def run_keyword_interface(
    setup: Optional[AmazonSetup] = None, rng_seed: int = 0
) -> KeywordInterfaceResult:
    """Crawl the store under structured / keyword / combined interfaces."""
    setup = setup or build_amazon_setup()
    budget = setup.request_budget
    [seeds] = setup.sample_seeds(1, rng_seed=rng_seed)
    schema = setup.store.schema
    interfaces = {
        "structured (title/people)": None,  # the store's native interface
        "keyword box only": QueryInterface.keyword_only(setup.store.name),
        "structured + keyword": QueryInterface.from_schema(
            schema, supports_keyword=True, name=setup.store.name
        ),
    }
    results: Dict[str, CrawlResult] = {}
    for label, interface in interfaces.items():
        server = setup.make_server()
        if interface is not None:
            # Rebuild the server with the alternate interface; the limit
            # policy and page size stay identical.
            from repro.server.webdb import SimulatedWebDatabase

            server = SimulatedWebDatabase(
                setup.store,
                page_size=server.page_size,
                limit_policy=server.limit_policy,
                interface=interface,
            )
        engine = CrawlerEngine(server, GreedyLinkSelector(), seed=rng_seed)
        results[label] = engine.crawl(seeds, max_rounds=budget)
    return KeywordInterfaceResult(
        store_size=len(setup.store),
        request_budget=budget,
        results=results,
    )
