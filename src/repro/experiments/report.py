"""Plain-text rendering of experiment results.

Every experiment driver returns a result object with a ``render()``
method producing the paper-style table as monospace text; this module
holds the shared formatting helpers so the tables line up consistently
in test output, benchmark logs, and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_cell(value) -> str:
    """Human formatting: ints with thousands separators, floats short."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]], title="T"))
    T
    a | b
    --+----
    1 | 2.5
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells.extend([format_cell(value) for value in row] for row in rows)
    widths = [
        max(len(row[column]) for row in cells) for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line.rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence,
    series: dict,
    title: Optional[str] = None,
) -> str:
    """Render named series over shared x values (a figure, as a table).

    ``series`` maps a series name to its y values (same length as
    ``x_values``).
    """
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][index] for name in series]
        for index, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)


def percentage(value: float) -> str:
    """Format a fraction as a percentage string ("82%")."""
    return f"{round(value * 100)}%"
