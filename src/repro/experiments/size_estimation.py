"""Section 5's Amazon-size estimation by overlap analysis.

The paper runs 6 independent crawls of 5,000 interactions each from
random seeds, forms all C(6,2) = 15 pairwise capture–recapture
estimates over the harvested record sets, and applies a t-test to state
"with 90% confidence, the Amazon DVD product database contains less
than 37,000 data records".  This driver does the same against the
simulated store — where, unlike the paper, the true size is known, so
the benchmark can check the confidence machinery against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crawler.engine import CrawlerEngine
from repro.estimation.multisample import all_estimates
from repro.estimation.overlap import pairwise_estimates
from repro.estimation.ttest import (
    ConfidenceInterval,
    t_confidence_interval,
    upper_confidence_bound,
)
from repro.experiments.amazon import AmazonSetup, build_amazon_setup
from repro.experiments.report import render_table
from repro.policies.naive import RandomSelector


@dataclass
class SizeEstimationResult:
    true_size: int
    n_crawls: int
    interactions_per_crawl: int
    sample_sizes: List[int]
    union_size: int
    estimates: List[float]
    interval: ConfidenceInterval
    upper_bound: float
    confidence: float
    #: Extension beyond the paper: joint multi-sample estimators
    #: (Schnabel, Chao1, first-order jackknife) on the same samples.
    alternative_estimates: Dict[str, float] = None  # type: ignore[assignment]

    @property
    def relative_error(self) -> float:
        """``(mean estimate − true size) / true size``.

        Expected to be mildly negative: capture–recapture assumes
        uniform independent samples, while query-based crawls are
        biased toward the popular, well-connected region and cannot see
        data islands at all — so the estimator really measures the
        *crawlable* universe.  The paper's "< 37,000 with 90%
        confidence" statement carries the same bias; here the ground
        truth is known, so the bias is visible instead of hidden.
        """
        return (self.interval.mean - self.true_size) / self.true_size

    @property
    def upper_bound_holds(self) -> bool:
        """Whether the one-sided bound brackets the true size."""
        return self.true_size <= self.upper_bound

    def render(self) -> str:
        rows = [
            ["true size", self.true_size],
            ["crawls x interactions", f"{self.n_crawls} x {self.interactions_per_crawl}"],
            ["records seen across crawls", self.union_size],
            ["pairwise estimates", len(self.estimates)],
            ["mean estimate", round(self.interval.mean)],
            ["relative error", f"{self.relative_error:+.1%}"],
            [f"{self.confidence:.0%} two-sided interval",
             f"[{self.interval.lower:,.0f}, {self.interval.upper:,.0f}]"],
            [f"{self.confidence:.0%} upper bound", round(self.upper_bound)],
            ["bound >= true size", self.upper_bound_holds],
        ]
        for name, estimate in (self.alternative_estimates or {}).items():
            rows.append([f"{name} (multi-sample, extension)", round(estimate)])
        return render_table(
            ["quantity", "value"],
            rows,
            title="Size estimation — overlap analysis + t bound (Section 5)",
        )


def run_size_estimation(
    setup: Optional[AmazonSetup] = None,
    n_crawls: int = 6,
    interactions: Optional[int] = None,
    confidence: float = 0.9,
    rng_seed: int = 0,
) -> SizeEstimationResult:
    """Regenerate the overlap-analysis experiment.

    ``interactions`` defaults to the paper's 5,000 scaled by store size.
    Crawls use random selection from random seeds — independence between
    samples is what capture–recapture needs, and the paper's six
    "independent crawls" from random seed values serve the same purpose.
    """
    setup = setup or build_amazon_setup()
    store_size = len(setup.store)
    if interactions is None:
        interactions = max(int(5000 * store_size / 37_000), 50)
    seed_sets = setup.sample_seeds(n_crawls, rng_seed=rng_seed + 101)
    samples = []
    for index, seeds in enumerate(seed_sets):
        server = setup.make_server()
        engine = CrawlerEngine(server, RandomSelector(), seed=rng_seed + index)
        result = engine.crawl(seeds, max_rounds=interactions)
        samples.append(frozenset(engine.local_db.record_ids()))
    estimates = pairwise_estimates(samples)
    interval = t_confidence_interval(estimates, confidence=confidence)
    bound = upper_confidence_bound(estimates, confidence=confidence)
    union: frozenset = frozenset().union(*samples)
    return SizeEstimationResult(
        true_size=store_size,
        n_crawls=n_crawls,
        interactions_per_crawl=interactions,
        sample_sizes=[len(s) for s in samples],
        union_size=len(union),
        estimates=estimates,
        interval=interval,
        upper_bound=bound,
        confidence=confidence,
        alternative_estimates=all_estimates(samples),
    )
