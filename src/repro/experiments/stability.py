"""Seed-stability analysis of the policy comparison.

The paper hedges against seed luck by running "each query selection
algorithm ... four times with different seed values (starting points)
... and the average result is reported".  This experiment quantifies
how much hedging is needed: per policy, the spread (mean, standard
deviation, min–max) of the cost to reach a coverage target across many
independent seeds, and — the actionable statistic — how often the
paper's headline ordering (GL cheapest) holds *per individual seed*.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.registry import load_dataset
from repro.experiments.harness import run_policy, sample_seed_values
from repro.experiments.report import render_table
from repro.policies.greedy import GreedyLinkSelector
from repro.policies.naive import BreadthFirstSelector, RandomSelector


@dataclass(frozen=True)
class PolicySpread:
    policy: str
    costs: Tuple[int, ...]  # rounds to target, one per seed

    @property
    def mean(self) -> float:
        return sum(self.costs) / len(self.costs)

    @property
    def stdev(self) -> float:
        if len(self.costs) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((c - mean) ** 2 for c in self.costs) / (len(self.costs) - 1)
        )

    @property
    def coefficient_of_variation(self) -> float:
        return self.stdev / self.mean if self.mean else 0.0


@dataclass
class StabilityResult:
    dataset: str
    database_size: int
    target_coverage: float
    n_seeds: int
    spreads: Dict[str, PolicySpread]
    #: Fraction of individual seeds on which GL was the cheapest policy.
    gl_wins_fraction: float

    def spread(self, policy: str) -> PolicySpread:
        return self.spreads[policy]

    def render(self) -> str:
        rows = []
        for policy, spread in self.spreads.items():
            rows.append(
                [
                    policy,
                    round(spread.mean),
                    round(spread.stdev),
                    min(spread.costs),
                    max(spread.costs),
                    f"{spread.coefficient_of_variation:.1%}",
                ]
            )
        table = render_table(
            ["policy", "mean rounds", "stdev", "min", "max", "cv"],
            rows,
            title=(
                f"Seed stability on {self.dataset} — rounds to "
                f"{self.target_coverage:.0%} over {self.n_seeds} seeds "
                f"(|DB| = {self.database_size:,})"
            ),
        )
        return table + (
            f"\nGL cheapest on {self.gl_wins_fraction:.0%} of individual seeds"
        )


def run_stability(
    dataset: str = "dblp",
    n_records: int = 3000,
    n_seeds: int = 8,
    target_coverage: float = 0.8,
    seed: int = 0,
    policies: Optional[Dict[str, type]] = None,
    workers=1,
    bus=None,
    trace=None,
    trace_timings=True,
) -> StabilityResult:
    """Measure per-seed cost spread for several policies on one dataset."""
    table = load_dataset(dataset, n_records, seed=seed)
    rng = random.Random(seed)
    seed_sets: List[Sequence] = [
        sample_seed_values(table, 1, rng) for _ in range(n_seeds)
    ]
    chosen = policies or {
        "greedy-link": GreedyLinkSelector,
        "bfs": BreadthFirstSelector,
        "random": RandomSelector,
    }
    per_policy_costs: Dict[str, List[int]] = {}
    for label, factory in chosen.items():
        run = run_policy(
            table,
            factory,
            seed_sets,
            rng_seed=seed,
            target_coverage=target_coverage,
            workers=workers,
            bus=bus,
            trace=trace,
            trace_timings=trace_timings,
            trace_append=bool(per_policy_costs),
        )
        per_policy_costs[label] = [
            result.communication_rounds for result in run.results
        ]
    spreads = {
        label: PolicySpread(policy=label, costs=tuple(costs))
        for label, costs in per_policy_costs.items()
    }
    gl_wins = 0
    if "greedy-link" in per_policy_costs:
        for index in range(n_seeds):
            gl_cost = per_policy_costs["greedy-link"][index]
            if all(
                gl_cost <= costs[index]
                for label, costs in per_policy_costs.items()
                if label != "greedy-link"
            ):
                gl_wins += 1
    return StabilityResult(
        dataset=dataset,
        database_size=len(table),
        target_coverage=target_coverage,
        n_seeds=n_seeds,
        spreads=spreads,
        gl_wins_fraction=gl_wins / n_seeds if n_seeds else 0.0,
    )
