"""Table 1 — the query-capability case study over 480 web sources.

Generates the synthetic interface corpus (calibrated to the paper's
per-domain percentages), runs the same classification the paper's
manual survey applied — does the source support keyword search (K.W.)?
is it modellable by the simplified single-predicate query model
(S.Q.M.)? — and tallies the per-domain percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets.interfaces import (
    SourceProfile,
    TABLE1_PROFILES,
    TABLE1_REPOSITORY,
    generate_interface_corpus,
)
from repro.experiments.report import percentage, render_table
from repro.parallel import parallel_map


@dataclass(frozen=True)
class DomainSurveyRow:
    """One domain's tallied capabilities."""

    domain: str
    repository: str
    n_sources: int
    keyword_fraction: float
    sqm_fraction: float
    paper_keyword_fraction: float
    paper_sqm_fraction: float


@dataclass
class Table1Result:
    rows: List[DomainSurveyRow]

    def row(self, domain: str) -> DomainSurveyRow:
        for entry in self.rows:
            if entry.domain == domain:
                return entry
        raise KeyError(domain)

    def max_absolute_error(self) -> float:
        """Largest |measured − paper| over both columns and all domains."""
        worst = 0.0
        for entry in self.rows:
            worst = max(
                worst,
                abs(entry.keyword_fraction - entry.paper_keyword_fraction),
                abs(entry.sqm_fraction - entry.paper_sqm_fraction),
            )
        return worst

    def render(self) -> str:
        return render_table(
            ["domain", "repo", "n", "K.W.", "S.Q.M.", "paper K.W.", "paper S.Q.M."],
            [
                [
                    entry.domain,
                    entry.repository,
                    entry.n_sources,
                    percentage(entry.keyword_fraction),
                    percentage(entry.sqm_fraction),
                    percentage(entry.paper_keyword_fraction),
                    percentage(entry.paper_sqm_fraction),
                ]
                for entry in self.rows
            ],
            title="Table 1 — single-attribute queriability across 11 domains",
        )


def classify(profile: SourceProfile) -> Tuple[bool, bool]:
    """The survey's classification of one source: (K.W., S.Q.M.).

    A keyword-searchable source naturally satisfies the simplified
    query model too (a keyword is a single-value query) — the paper's
    Table 1 reflects the two capabilities as reported separately by its
    human annotators, which the corpus generator preserves.
    """
    interface = profile.interface()
    if interface is None:
        return False, False
    return interface.supports_keyword, interface.single_attribute_queriable


def _tally_domain(tallies: Dict[str, List[SourceProfile]], domain: str) -> DomainSurveyRow:
    """Worker: classify and tally one domain's sources."""
    profiles = tallies[domain]
    classified = [classify(p) for p in profiles]
    n = len(classified)
    keyword = sum(1 for kw, _sqm in classified if kw) / n
    sqm = sum(1 for _kw, sqm in classified if sqm) / n
    paper_kw, paper_sqm = TABLE1_PROFILES[domain]
    return DomainSurveyRow(
        domain=domain,
        repository=TABLE1_REPOSITORY[domain],
        n_sources=n,
        keyword_fraction=keyword,
        sqm_fraction=sqm,
        paper_keyword_fraction=paper_kw / 100,
        paper_sqm_fraction=paper_sqm / 100,
    )


def run_table1(
    sources_per_domain: int = 44, seed: int = 0, workers=1
) -> Table1Result:
    """Regenerate Table 1.

    The default of 44 sources per domain makes a 484-source corpus —
    the paper examined 480 across its two repositories.  Domains tally
    independently, so the survey fans out per domain when ``workers``
    allows (the per-domain order of ``rows`` is fixed either way).
    """
    corpus = generate_interface_corpus(sources_per_domain, seed=seed)
    tallies: Dict[str, List[SourceProfile]] = {}
    for profile in corpus:
        tallies.setdefault(profile.domain, []).append(profile)
    rows = parallel_map(
        _tally_domain, list(tallies), payload=tallies, workers=workers
    )
    return Table1Result(rows=rows)
