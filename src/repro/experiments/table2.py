"""Table 2 — query interface schemas and distinct attribute-value counts.

For each controlled database, lists the queriable attributes exposed by
its interface and the number of distinct attribute values (AVG vertex
count), next to the counts the paper reports for its full-size
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.registry import dataset_info, dataset_names, load_dataset
from repro.experiments.report import render_table


@dataclass(frozen=True)
class Table2Row:
    dataset: str
    queriable_attributes: tuple
    records: int
    distinct_values: int
    paper_records: int
    paper_distinct_values: int

    @property
    def values_per_record(self) -> float:
        return self.distinct_values / self.records

    @property
    def paper_values_per_record(self) -> float:
        return self.paper_distinct_values / self.paper_records


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def row(self, dataset: str) -> Table2Row:
        for entry in self.rows:
            if entry.dataset == dataset:
                return entry
        raise KeyError(dataset)

    def render(self) -> str:
        return render_table(
            [
                "dataset",
                "queriable attributes",
                "records",
                "distinct values",
                "v/r",
                "paper records",
                "paper values",
                "paper v/r",
            ],
            [
                [
                    entry.dataset,
                    ", ".join(entry.queriable_attributes),
                    entry.records,
                    entry.distinct_values,
                    round(entry.values_per_record, 2),
                    entry.paper_records,
                    entry.paper_distinct_values,
                    round(entry.paper_values_per_record, 2),
                ]
                for entry in self.rows
            ],
            title="Table 2 — database query interface schemas",
        )


def run_table2(n_records: Optional[int] = None, seed: int = 0) -> Table2Result:
    """Regenerate Table 2 at the given scale (registry defaults if None).

    Distinct values are counted over the queriable attributes — the
    candidate query pool the crawler actually faces.
    """
    rows = []
    for name in dataset_names():
        info = dataset_info(name)
        table = load_dataset(name, n_records or 0, seed=seed)
        queriable = set(table.schema.queriable)
        distinct = sum(
            1 for value in table.distinct_values() if value.attribute in queriable
        )
        rows.append(
            Table2Row(
                dataset=name,
                queriable_attributes=info.queriable_attributes,
                records=len(table),
                distinct_values=distinct,
                paper_records=info.paper_records,
                paper_distinct_values=info.paper_distinct_values,
            )
        )
    return Table2Result(rows=rows)
