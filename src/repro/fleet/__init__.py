"""Fleet crawling: one round budget over hundreds-to-thousands of sources.

The cross-source analogue of the paper's per-source query selection:
instead of asking "which query next?" inside one source, the fleet
scheduler asks "which *source* deserves the next query?" — greedy on
exploration-adjusted marginal harvest rate, round-robin fair share, or
greedy under an explicit starvation guarantee — subject to per-source
politeness cooldowns over deterministic simulated time.

- :mod:`repro.fleet.sources` — deterministic heterogeneous fleet plans
  (heavy-tailed sizes, mixed datasets, mixed GL/GF/MMMI/DM policies);
- :mod:`repro.fleet.scheduler` — polite fleet schedulers built on the
  warehouse budget loop + the server lane's ``RateLimiter``;
- :mod:`repro.fleet.driver` — sharded parallel execution with
  fixed-order merge (bit-identical at any worker count), mid-run
  checkpoint/resume, metrics/trace/bench outputs.
"""

from repro.fleet.driver import (
    FleetConfig,
    FleetPlan,
    FleetResult,
    compare_fleet,
    fleet_bench_payload,
    plan_shards,
    run_fleet,
)
from repro.fleet.scheduler import (
    FLEET_SCHEDULERS,
    FleetClock,
    PoliteGreedyFleet,
    PoliteRoundRobinFleet,
    make_fleet_scheduler,
)
from repro.fleet.sources import (
    FLEET_POLICIES,
    SourceSpec,
    build_fleet,
    build_source,
    plan_fleet,
    source_seeds,
)

__all__ = [
    "FLEET_POLICIES",
    "FLEET_SCHEDULERS",
    "FleetClock",
    "FleetConfig",
    "FleetPlan",
    "FleetResult",
    "PoliteGreedyFleet",
    "PoliteRoundRobinFleet",
    "SourceSpec",
    "build_fleet",
    "build_source",
    "compare_fleet",
    "fleet_bench_payload",
    "make_fleet_scheduler",
    "plan_fleet",
    "plan_shards",
    "run_fleet",
    "source_seeds",
]
