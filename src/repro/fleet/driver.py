"""The fleet experiment driver: shard, run, merge — deterministically.

A fleet run spends one global round budget over N sources.  To scale to
thousands of sources the driver partitions the fleet into ``shards``
(a *plan* parameter, independent of worker count), gives each shard a
deterministic slice of the budget, runs each shard's polite scheduler
as one task of :func:`repro.parallel.parallel_map`, and merges shard
outputs in fixed shard order.  Because the shard plan, budget split,
and every in-shard decision are pure functions of the
:class:`FleetConfig`, the merged :class:`FleetResult` — and the trace
and metrics files derived from it — are bit-identical at any
``--workers`` count.

Determinism contract (what "bit-identical" means here):

1. ``plan_fleet(config)`` fixes specs, shard assignment (round-robin by
   source index), and per-shard budgets (proportional split, remainder
   to the lowest-indexed shards) before any work starts.
2. A shard task is a pure function of ``(config, shard)``: it builds
   its own engines, runs its own scheduler over its own simulated
   clock, and returns plain data.
3. The parent merges shard outputs in shard order — results, metrics
   registries, trace span lines — never in completion order.

Checkpoint/resume rides the warehouse schedulers' growing-budget
continuity: stopping a shard after R rounds, snapshotting, and resuming
toward the full shard budget lands in exactly the state an
uninterrupted run reaches, so a killed fleet resumes to an identical
final allocation.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CrawlError
from repro.fleet.scheduler import (
    FLEET_SCHEDULERS,
    FleetClock,
    make_fleet_scheduler,
)
from repro.fleet.sources import SourceSpec, build_fleet, plan_fleet
from repro.metrics.registry import MetricsRegistry
from repro.parallel import WorkerSpec, parallel_map
from repro.runtime.checkpoint import CheckpointError, FleetCheckpoint
from repro.trace.sink import write_trace


@dataclass(frozen=True)
class FleetConfig:
    """Everything that determines a fleet run's outcome.

    Two runs with equal configs produce byte-equal reports at any
    worker count; every field therefore feeds the checkpoint's
    config-echo consistency check.
    """

    n_sources: int = 50
    budget: int = 200
    scheduler: str = "greedy"
    seed: int = 0
    scale: float = 1.0
    page_size: int = 10
    #: Hard per-step round bound (PageCapAbort page cap + no retries);
    #: makes the shared budget a guarantee, not a target.
    max_step_rounds: int = 4
    #: Virtual seconds (= rounds) of per-source cooldown; 0 disables
    #: politeness.
    cooldown_rounds: float = 2.0
    #: Steps a source may take per cooldown window.
    burst: int = 1
    #: Starvation bound for the ``fair`` scheduler: every schedulable
    #: source is stepped at least once per this many budget units.
    #: ``None`` derives a satisfiable default per shard (sources ×
    #: max_step_rounds).
    fairness_every: Optional[int] = None
    #: Sliding-window length for the marginal-rate estimate.  Short on
    #: purpose: a drained source must stop looking productive within a
    #: couple of steps or greedy allocation keeps feeding it.
    window_size: int = 2
    #: Exploration-bonus scale (records-per-page units).  A small
    #: shared constant, NOT per-source page size: a never-stepped
    #: source already carries full-page optimism in its empty-window
    #: rate, and a per-k bonus would keep drained big-page sources
    #: outranking fresh small-page ones.
    exploration: float = 2.0
    #: Partition count — part of the plan, NOT the worker count.
    shards: int = 8

    def __post_init__(self) -> None:
        if self.scheduler not in FLEET_SCHEDULERS:
            raise CrawlError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {FLEET_SCHEDULERS}"
            )
        if self.budget < 1:
            raise CrawlError(f"budget must be >= 1, got {self.budget}")
        if self.shards < 1:
            raise CrawlError(f"shards must be >= 1, got {self.shards}")
        if self.max_step_rounds < 1:
            raise CrawlError(
                f"max_step_rounds must be >= 1, got {self.max_step_rounds}"
            )


@dataclass
class FleetPlan:
    """The deterministic layout a config expands into."""

    specs: Tuple[SourceSpec, ...]
    shard_specs: List[Tuple[SourceSpec, ...]]
    shard_budgets: List[int]


def plan_shards(config: FleetConfig) -> FleetPlan:
    """Expand a config into specs, shard assignment, and budget split.

    Sources go to shards round-robin by index (so heavy-tail sizes
    spread evenly); each shard's budget share is proportional to its
    source count, floors summed and the remainder granted one round at
    a time to the lowest-indexed shards — the split is exact
    (``sum == budget``) and worker-independent.
    """
    specs = plan_fleet(
        config.n_sources,
        seed=config.seed,
        scale=config.scale,
        page_size=config.page_size,
    )
    n_shards = min(config.shards, len(specs))
    shard_specs: List[List[SourceSpec]] = [[] for _ in range(n_shards)]
    for index, spec in enumerate(specs):
        shard_specs[index % n_shards].append(spec)
    budgets = [
        config.budget * len(shard) // len(specs) for shard in shard_specs
    ]
    for index in range(config.budget - sum(budgets)):
        budgets[index % n_shards] += 1
    return FleetPlan(
        specs=specs,
        shard_specs=[tuple(shard) for shard in shard_specs],
        shard_budgets=budgets,
    )


def _shard_fairness(config: FleetConfig, n_shard_sources: int) -> Optional[int]:
    if config.scheduler != "fair":
        return None
    if config.fairness_every is not None:
        return config.fairness_every
    return max(n_shard_sources * config.max_step_rounds, 1)


def _run_shard(payload, shard_index: int) -> dict:
    """One shard, start to stop — the ``parallel_map`` task function."""
    config, plan, targets, states, capture_state = payload
    shard = plan.shard_specs[shard_index]
    budget = plan.shard_budgets[shard_index]
    target = targets[shard_index]
    engines, seeds = build_fleet(
        shard, max_step_rounds=config.max_step_rounds
    )
    metrics = MetricsRegistry()
    trace_lines: List[str] = []
    scheduler = make_fleet_scheduler(
        config.scheduler,
        engines,
        seeds,
        fairness_every=_shard_fairness(config, len(shard)),
        cooldown_rounds=config.cooldown_rounds,
        burst=config.burst,
        clock=FleetClock(),
        metrics=metrics,
        trace=trace_lines,
        max_step_rounds=config.max_step_rounds,
        window_size=config.window_size,
        exploration=config.exploration,
        prepare=states is None,
    )
    if states is not None:
        scheduler.load_state(states[shard_index])
    result = scheduler.run(target) if target > 0 else None
    sources = {}
    if result is not None:
        for name in sorted(result.results):
            crawl = result.results[name]
            sources[name] = {
                "records": crawl.records_harvested,
                "rounds": crawl.communication_rounds,
                "queries": crawl.queries_issued,
                "coverage": crawl.coverage,
                "stopped_by": crawl.stopped_by,
            }
    else:
        # A zero-round target (tiny stop_after_rounds, or more shards
        # than budget): the shard exists in the report, just untouched.
        for spec in shard:
            sources[spec.name] = {
                "records": 0,
                "rounds": 0,
                "queries": 0,
                "coverage": 0.0,
                "stopped_by": "budget",
            }
    out = {
        "shard": shard_index,
        "budget": budget,
        "target": target,
        "rounds_used": scheduler.rounds_spent,
        "overshoot": result.overshoot if result is not None else 0,
        "sources": sources,
        "truth": sum(
            len(engine.server.table) for engine in engines.values()
        ),
        "clock": scheduler.clock.value,
        "cooldown_waits": scheduler.clock.waits,
        "metrics": metrics.state_dict(),
        "trace": trace_lines,
    }
    if capture_state:
        out["state"] = scheduler.state_dict()
    return out


@dataclass
class FleetResult:
    """Merged outcome of a fleet run (shard order, fully deterministic)."""

    config: FleetConfig
    sources: Dict[str, dict]
    rounds_used: int
    budget: int
    overshoot: int
    total_records: int
    total_truth: int
    shard_budgets: List[int]
    shard_rounds: List[int]
    cooldown_waits: int
    completed: bool
    metrics: MetricsRegistry = field(repr=False, default_factory=MetricsRegistry)

    @property
    def coverage(self) -> float:
        if self.total_truth == 0:
            return 0.0
        return self.total_records / self.total_truth

    def render(self, top: int = 10) -> str:
        """Deterministic plain-text report (no wall-clock anywhere)."""
        lines = [
            f"fleet: {self.config.n_sources} sources, "
            f"scheduler={self.config.scheduler}, "
            f"budget={self.budget} rounds",
            f"rounds used: {self.rounds_used}  overshoot: {self.overshoot}  "
            f"{'complete' if self.completed else 'partial (resumable)'}",
            f"records harvested: {self.total_records} of {self.total_truth} "
            f"({self.coverage:.1%} fleet coverage)",
            f"cooldown waits: {self.cooldown_waits}",
            f"shard budgets: {self.shard_budgets}",
            f"shard rounds:  {self.shard_rounds}",
        ]
        stepped = sum(1 for s in self.sources.values() if s["rounds"] > 0)
        lines.append(
            f"sources stepped: {stepped}/{len(self.sources)}"
        )
        ranked = sorted(
            self.sources.items(),
            key=lambda item: (-item[1]["records"], item[0]),
        )[:top]
        if ranked:
            lines.append(f"top {len(ranked)} sources by records:")
            for name, info in ranked:
                lines.append(
                    f"  {name:24s} {info['records']:6d} records "
                    f"{info['rounds']:5d} rounds {info['coverage']:6.1%} "
                    f"{info['stopped_by']}"
                )
        return "\n".join(lines)


def run_fleet(
    config: FleetConfig,
    workers: WorkerSpec = 1,
    stop_after_rounds: Optional[int] = None,
    checkpoint_path=None,
    resume_from=None,
    trace_path=None,
    metrics: Optional[MetricsRegistry] = None,
) -> FleetResult:
    """Run (or continue) a fleet allocation.

    ``stop_after_rounds`` truncates the run at roughly that many global
    rounds (split proportionally across shards, deterministically) —
    with ``checkpoint_path`` set, the partial state is saved and a
    later call with ``resume_from`` continues to the full budget.
    """
    plan = plan_shards(config)
    n_shards = len(plan.shard_specs)
    states = None
    if resume_from is not None:
        checkpoint = FleetCheckpoint.load(resume_from)
        if checkpoint.config != asdict(config):
            raise CheckpointError(
                "fleet checkpoint was planned under a different config; "
                f"saved {checkpoint.config}, resuming with {asdict(config)}"
            )
        if checkpoint.shard_budgets != plan.shard_budgets:
            raise CheckpointError("fleet checkpoint shard split mismatch")
        states = checkpoint.shard_states
    if stop_after_rounds is None:
        targets = list(plan.shard_budgets)
    else:
        if stop_after_rounds < 0:
            raise CrawlError(
                f"stop_after_rounds must be >= 0, got {stop_after_rounds}"
            )
        fraction = min(stop_after_rounds / config.budget, 1.0)
        targets = [
            min(budget, math.floor(budget * fraction))
            for budget in plan.shard_budgets
        ]
    capture_state = checkpoint_path is not None
    payload = (config, plan, targets, states, capture_state)
    outs = parallel_map(_run_shard, range(n_shards), payload, workers)

    sources: Dict[str, dict] = {}
    merged = metrics if metrics is not None else MetricsRegistry()
    for out in outs:  # fixed shard order
        sources.update(out["sources"])
        merged.merge(out["metrics"])
    sources = {name: sources[name] for name in sorted(sources)}
    total_records = sum(info["records"] for info in sources.values())
    total_truth = sum(out["truth"] for out in outs)
    rounds_used = sum(out["rounds_used"] for out in outs)
    completed = targets == plan.shard_budgets
    if total_truth:
        merged.gauge(
            "fleet_coverage",
            "fleet-wide fraction of truth records harvested",
            labels=("scheduler",),
        ).set(total_records / total_truth, scheduler=config.scheduler)
    if rounds_used:
        merged.gauge(
            "fleet_harvest_rate",
            "fleet-wide records per communication round",
            labels=("scheduler",),
        ).set(total_records / rounds_used, scheduler=config.scheduler)

    if trace_path is not None:
        write_trace(
            trace_path,
            [
                (f"fleet-shard-{out['shard']:02d}", out["shard"], out["trace"])
                for out in outs
            ],
        )
    if checkpoint_path is not None:
        FleetCheckpoint(
            config=asdict(config),
            shard_states=[out["state"] for out in outs],
            shard_budgets=list(plan.shard_budgets),
            rounds_done=rounds_used,
        ).save(checkpoint_path)

    return FleetResult(
        config=config,
        sources=sources,
        rounds_used=rounds_used,
        budget=config.budget,
        overshoot=sum(out["overshoot"] for out in outs),
        total_records=total_records,
        total_truth=total_truth,
        shard_budgets=list(plan.shard_budgets),
        shard_rounds=[out["rounds_used"] for out in outs],
        cooldown_waits=sum(out["cooldown_waits"] for out in outs),
        completed=completed,
        metrics=merged,
    )


def compare_fleet(
    config: FleetConfig,
    schedulers: Sequence[str] = FLEET_SCHEDULERS,
    workers: WorkerSpec = 1,
) -> Dict[str, FleetResult]:
    """Run the same fleet plan under several allocation policies."""
    return {
        name: run_fleet(replace(config, scheduler=name), workers=workers)
        for name in schedulers
    }


def fleet_bench_payload(
    results: Dict[str, FleetResult], scale: float
) -> dict:
    """Shape a greedy/rr/fair comparison for the bench regression gate.

    The gated metric is ``speedup`` — a policy's records-at-budget over
    the round-robin baseline's, a machine-independent ratio exactly
    like the hot-path benchmark's.  Round-robin itself carries no
    ``speedup`` key (the gate skips it), only diagnostics.
    """
    baseline = results.get("rr")
    payload = {
        "benchmark": "fleet",
        "scale": scale,
        "sources": next(iter(results.values())).config.n_sources,
        "budget": next(iter(results.values())).config.budget,
        "policies": {},
    }
    for name in sorted(results):
        result = results[name]
        entry = {
            "records": result.total_records,
            "coverage": round(result.coverage, 6),
            "rounds_used": result.rounds_used,
            "overshoot": result.overshoot,
            "cooldown_waits": result.cooldown_waits,
        }
        if (
            baseline is not None
            and name != "rr"
            and baseline.total_records > 0
        ):
            entry["speedup"] = round(
                result.total_records / baseline.total_records, 4
            )
        payload["policies"][f"fleet-{name}"] = entry
    return payload
