"""Polite fleet scheduling: warehouse allocation + per-source cooldowns.

The warehouse schedulers (:mod:`repro.warehouse.scheduler`) decide
*which* source deserves the next query; real sources also constrain
*when* they may be asked.  The fleet schedulers graft the server lane's
:class:`~repro.server.limits.RateLimiter` onto the warehouse loop over
**deterministic simulated time**: one communication round is one
virtual second, a shared :class:`FleetClock` advances by each step's
round charge, and when every schedulable source is cooling down the
clock jumps straight to the earliest admission instant (no rounds are
spent waiting — budget counts queries, not patience).  Because the
clock is pure arithmetic over round charges, a fleet run is exactly
reproducible: same specs + same budget ⇒ same decision sequence, on
any machine, at any worker count.

Per decision the scheduler:

1. asks the limiter to :meth:`~RateLimiter.peek` each candidate
   (side-effect free — only the chosen source spends quota);
2. lets the warehouse policy (greedy marginal-gain or round-robin,
   optionally under the ``fairness_every`` starvation guarantee)
   pick among the admissible ones;
3. :meth:`~RateLimiter.check`\\ s the winner, steps it, advances the
   clock by the rounds charged, and records the decision as a
   ``schedule`` span plus per-source metrics.

Three policy names map onto two classes: ``greedy`` is
:class:`PoliteGreedyFleet`, ``rr`` is :class:`PoliteRoundRobinFleet`,
and ``fair`` is the greedy class with a starvation guarantee
(``fairness_every``) — greedy allocation that is still guaranteed to
visit every live source.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.core.errors import CrawlError
from repro.metrics.registry import MetricsRegistry
from repro.server.limits import RateLimiter
from repro.warehouse.scheduler import (
    GreedyScheduler,
    RoundRobinScheduler,
    ScheduledSource,
)

#: CLI/driver names for the fleet scheduling policies.
FLEET_SCHEDULERS = ("greedy", "rr", "fair")


class FleetClock:
    """Deterministic virtual time: 1 communication round == 1 second.

    Plain arithmetic, no wall clock anywhere — ``now`` is the number of
    virtual seconds the fleet has consumed (round charges plus cooldown
    waits), so every limiter decision derives from the crawl itself.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.value = float(start)
        self.waits = 0
        self.waited_seconds = 0.0

    def now(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise CrawlError(f"clock cannot run backwards ({seconds})")
        self.value += seconds

    def wait(self, seconds: float) -> None:
        self.advance(seconds)
        self.waits += 1
        self.waited_seconds += seconds

    def state_dict(self) -> dict:
        return {
            "value": self.value,
            "waits": self.waits,
            "waited_seconds": self.waited_seconds,
        }

    def load_state(self, state: dict) -> None:
        self.value = state["value"]
        self.waits = state["waits"]
        self.waited_seconds = state["waited_seconds"]


def _span_line(payload: dict) -> str:
    return json.dumps(payload, separators=(",", ":"))


class _PoliteMixin:
    """Politeness, metrics, and tracing layered over a warehouse scheduler.

    Keyword-only fleet arguments (all optional — with none of them this
    is exactly the underlying warehouse scheduler):

    ``cooldown_rounds``
        A source may be stepped at most ``burst`` times per this many
        virtual seconds (= rounds).  0 disables politeness.
    ``burst``
        Requests allowed per cooldown window (limiter
        ``max_requests``).
    ``clock``
        Shared :class:`FleetClock`; created fresh when omitted.
    ``metrics``
        A :class:`MetricsRegistry` to record per-source allocation
        counters and fleet gauges into.
    ``trace``
        A list that collects one ``schedule`` span line (repro-trace/1
        JSONL) per scheduling decision.
    """

    def __init__(
        self,
        engines,
        seeds,
        *,
        cooldown_rounds: float = 0.0,
        burst: int = 1,
        clock: Optional[FleetClock] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[List[str]] = None,
        **kwargs,
    ) -> None:
        if cooldown_rounds < 0:
            raise CrawlError(
                f"cooldown_rounds must be >= 0, got {cooldown_rounds}"
            )
        self.clock = clock if clock is not None else FleetClock()
        self.limiter: Optional[RateLimiter] = None
        if cooldown_rounds > 0:
            self.limiter = RateLimiter(
                max_requests=burst,
                window_seconds=float(cooldown_rounds),
                clock=self.clock.now,
            )
        self._trace = trace
        self._decisions = 0
        self._metrics = metrics
        if metrics is not None:
            self._steps_counter = metrics.counter(
                "fleet_steps_total",
                "engine steps allocated, by source",
                labels=("source",),
            )
            self._rounds_counter = metrics.counter(
                "fleet_rounds_total",
                "communication rounds charged, by source",
                labels=("source",),
            )
            self._records_counter = metrics.counter(
                "fleet_records_total",
                "new records harvested, by source",
                labels=("source",),
            )
            self._waits_counter = metrics.counter(
                "fleet_cooldown_waits_total",
                "times the fleet clock jumped to the next admission",
            )
        super().__init__(engines, seeds, **kwargs)

    # ------------------------------------------------------------------
    # Warehouse politeness hooks
    # ------------------------------------------------------------------
    def _admissible(self, source: ScheduledSource) -> bool:
        if self.limiter is None:
            return True
        return self.limiter.peek(source.name).allowed

    def _admit(self, source: ScheduledSource) -> None:
        if self.limiter is not None:
            decision = self.limiter.check(source.name)
            if not decision.allowed:  # peek() said yes moments ago
                raise CrawlError(
                    f"limiter refused {source.name} after an allowing peek "
                    f"(retry_after={decision.retry_after}); the fleet clock "
                    f"and limiter clock have diverged"
                )
        if self._trace is not None:
            self._trace.append(
                _span_line(
                    {
                        "id": f"d{self._decisions}",
                        "parent": None,
                        "name": "schedule",
                        "step": self._decisions,
                        "seq": self._decisions,
                        "attrs": {
                            "source": source.name,
                            "spent": self._spent,
                            "source_steps": source.steps,
                            "clock": self.clock.value,
                        },
                    }
                )
            )
        self._decisions += 1

    def _after_step(self, source: ScheduledSource, charge: int) -> None:
        self.clock.advance(float(charge))
        if self._metrics is not None:
            key = (source.name,)
            self._steps_counter.inc_key(key)
            self._rounds_counter.inc_key(key, charge)
            if source.window:
                # The step's harvest rate times its pages ~ records it
                # brought in; exact counts come from the final results.
                self._records_counter.inc_key(
                    key, source.window[-1] * charge
                )

    def _wait_for_admission(self, blocked: List[ScheduledSource]) -> bool:
        if self.limiter is None:
            return False
        delay = min(
            self.limiter.peek(source.name).retry_after for source in blocked
        )
        if delay > 0:
            self.clock.wait(delay)
            if self._metrics is not None:
                self._waits_counter.inc()
        return True

    # ------------------------------------------------------------------
    # Checkpoint state: clock + limiter windows ride along
    # ------------------------------------------------------------------
    def _extra_state(self) -> dict:
        state = super()._extra_state()
        state["clock"] = self.clock.state_dict()
        state["decisions"] = self._decisions
        if self.limiter is not None:
            state["limiter"] = self.limiter.runtime_state()
        return state

    def _load_extra(self, state: dict) -> None:
        super()._load_extra(state)
        if "clock" in state:
            self.clock.load_state(state["clock"])
        self._decisions = state.get("decisions", 0)
        if self.limiter is not None and "limiter" in state:
            self.limiter.load_runtime_state(state["limiter"])


class PoliteGreedyFleet(_PoliteMixin, GreedyScheduler):
    """Greedy marginal-harvest allocation under per-source cooldowns.

    With ``fairness_every=K`` this is the ``fair`` policy: greedy
    allocation with the guarantee that no schedulable source goes more
    than K budget units without a step.
    """


class PoliteRoundRobinFleet(_PoliteMixin, RoundRobinScheduler):
    """Fair-share baseline under the same politeness regime."""


def make_fleet_scheduler(
    name: str,
    engines,
    seeds,
    *,
    fairness_every: Optional[int] = None,
    **kwargs,
):
    """Build the named fleet scheduler (``greedy`` | ``rr`` | ``fair``)."""
    if name == "greedy":
        return PoliteGreedyFleet(engines, seeds, **kwargs)
    if name == "rr":
        return PoliteRoundRobinFleet(engines, seeds, **kwargs)
    if name == "fair":
        if fairness_every is None:
            raise CrawlError("the fair scheduler needs fairness_every")
        return PoliteGreedyFleet(
            engines, seeds, fairness_every=fairness_every, **kwargs
        )
    raise CrawlError(
        f"unknown fleet scheduler {name!r}; expected one of {FLEET_SCHEDULERS}"
    )
