"""Deterministic synthetic fleets of structured web sources.

The paper surveys 480 structured sources; a fleet experiment needs
hundreds-to-thousands of *heterogeneous* simulated ones.  A fleet here
is a tuple of :class:`SourceSpec`\\ s — pure data, cheap to pickle, and
a deterministic function of ``(n_sources, seed, scale)`` — from which
any process can rebuild the exact same engines.  That split (spec plans
in the parent, engines built inside whichever worker owns the shard) is
what lets the fleet driver fan sources out over processes and still be
bit-identical at any worker count: nothing engine-sized ever crosses a
process boundary.

Heterogeneity axes, all drawn from one seeded RNG in spec order:

- **domain** — the four controlled datasets (ebay/imdb/dblp/acm) cycle
  so every fleet slice mixes schemas and value distributions;
- **size** — heavy-tailed record counts via :func:`pareto_int`,
  mirroring the survey's mix of boutique stores and big aggregators;
- **page size** — half / base / double the configured ``k`` (the paper
  observes k from 10 to 100 across real sources), so sources differ in
  *records per communication round* even while fresh — the signal a
  marginal-rate allocator exploits and a fair-share baseline ignores;
- **policy** — each source is crawled by one of GL / GF / MMMI / DM,
  so the fleet scheduler allocates across engines with genuinely
  different marginal-harvest profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CrawlError
from repro.core.values import AttributeValue
from repro.crawler.abortion import PageCapAbort
from repro.crawler.engine import CrawlerEngine
from repro.datasets.registry import dataset_names, load_dataset
from repro.datasets.zipf import pareto_int
from repro.domain.table import build_domain_table
from repro.experiments.harness import sample_seed_values
from repro.policies.domain import DomainKnowledgeSelector
from repro.policies.greedy import GreedyFrequencySelector, GreedyLinkSelector
from repro.policies.mmmi import MinMaxMutualInformationSelector
from repro.server.webdb import SimulatedWebDatabase

#: Crawl policies a fleet source may run, in assignment-cycle order.
FLEET_POLICIES = ("gl", "gf", "mmmi", "dm")

#: Smallest source we generate: below this, frequency-2 seed values
#: get scarce and a source can be born unseedable.
MIN_SOURCE_RECORDS = 24


@dataclass(frozen=True)
class SourceSpec:
    """Everything needed to rebuild one fleet source, anywhere.

    ``seed`` drives the dataset generator, the engine RNG, and the
    seed-value draw, so a spec is a complete recipe: two processes
    holding the same spec build byte-equivalent sources.
    """

    name: str
    dataset: str
    records: int
    seed: int
    policy: str
    page_size: int = 10


def plan_fleet(
    n_sources: int,
    seed: int = 0,
    scale: float = 1.0,
    page_size: int = 10,
) -> Tuple[SourceSpec, ...]:
    """Lay out a deterministic heterogeneous fleet.

    ``scale`` multiplies source sizes (CI smoke runs at 0.25), never
    the count — a 500-source experiment stays 500 sources, each
    smaller.  Datasets and policies cycle (stratified, so small fleets
    are still mixed); sizes are heavy-tailed draws from one RNG seeded
    with ``seed``, consumed in spec order.
    """
    if n_sources < 1:
        raise CrawlError(f"n_sources must be >= 1, got {n_sources}")
    if scale <= 0:
        raise CrawlError(f"scale must be > 0, got {scale}")
    rng = random.Random(seed)
    datasets = dataset_names()
    mean_records = max(MIN_SOURCE_RECORDS + 1.0, 140.0 * scale)
    # k spans an order of magnitude across real sources (10..100 in the
    # paper's survey); the spread is what gives per-round productivity
    # its variance.
    page_sizes = (
        max(page_size // 2, 1),
        page_size,
        page_size * 2,
        page_size * 5,
    )
    specs: List[SourceSpec] = []
    for index in range(n_sources):
        dataset = datasets[index % len(datasets)]
        policy = FLEET_POLICIES[(index // len(datasets)) % len(FLEET_POLICIES)]
        records = pareto_int(rng, MIN_SOURCE_RECORDS, mean_records)
        k = page_sizes[rng.randrange(len(page_sizes))]
        specs.append(
            SourceSpec(
                name=f"s{index:04d}-{dataset}-{policy}",
                dataset=dataset,
                records=records,
                seed=seed * 1_000_003 + index,
                policy=policy,
                page_size=k,
            )
        )
    return tuple(specs)


def _make_selector(spec: SourceSpec):
    if spec.policy == "gl":
        return GreedyLinkSelector()
    if spec.policy == "gf":
        return GreedyFrequencySelector()
    if spec.policy == "mmmi":
        return MinMaxMutualInformationSelector()
    if spec.policy == "dm":
        # The domain sample is a sibling draw from the same generator
        # family — a different seed, roughly half the size — standing in
        # for the paper's "sample database from the same domain".
        sample = load_dataset(
            spec.dataset,
            max(spec.records // 2, MIN_SOURCE_RECORDS),
            spec.seed + 7919,
        )
        return DomainKnowledgeSelector(build_domain_table(sample))
    raise CrawlError(
        f"unknown fleet policy {spec.policy!r}; expected one of {FLEET_POLICIES}"
    )


def build_source(
    spec: SourceSpec, max_step_rounds: Optional[int] = None
) -> CrawlerEngine:
    """Instantiate a spec: generated table, simulated server, engine.

    With ``max_step_rounds`` set the engine carries a
    :class:`PageCapAbort` and no retries, so one engine step charges at
    most that many communication rounds — the hard per-step bound the
    fleet scheduler's budget guarantee is built on.
    """
    table = load_dataset(spec.dataset, spec.records, spec.seed)
    server = SimulatedWebDatabase(table, page_size=spec.page_size)
    abortion = (
        PageCapAbort(max_pages=max_step_rounds)
        if max_step_rounds is not None
        else None
    )
    return CrawlerEngine(
        server,
        _make_selector(spec),
        seed=spec.seed,
        abortion=abortion,
        max_retries=0,
    )


def source_seeds(
    spec: SourceSpec, engine: CrawlerEngine
) -> List[AttributeValue]:
    """Draw the source's seed value the way the paper's harness does.

    Prefers a frequency-≥2 value (a frequency-1 seed may be an island
    the relational crawler can never leave); tiny heavy-tail sources
    may not have one, in which case any queriable value will do.
    """
    table = engine.server.table
    rng = random.Random(spec.seed + 1)
    try:
        return sample_seed_values(table, 1, rng, min_frequency=2)
    except ValueError:
        return sample_seed_values(table, 1, random.Random(spec.seed + 1))


def build_fleet(
    specs: Sequence[SourceSpec], max_step_rounds: Optional[int] = None
) -> Tuple[Dict[str, CrawlerEngine], Dict[str, list]]:
    """Build engines + seed values for a slice of the fleet plan."""
    engines: Dict[str, CrawlerEngine] = {}
    seeds: Dict[str, list] = {}
    for spec in specs:
        engine = build_source(spec, max_step_rounds=max_step_rounds)
        engines[spec.name] = engine
        seeds[spec.name] = source_seeds(spec, engine)
    return engines, seeds
