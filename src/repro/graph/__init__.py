"""Attribute-value graph model, power-law analysis, dominating sets."""

from repro.graph.avg import (
    build_avg,
    build_avg_from_table,
    page_cost,
    record_clique,
)
from repro.graph.connectivity import (
    component_sizes,
    convergence_coverage,
    largest_component_fraction,
    reachable_records,
    reachable_values,
    record_connectivity,
)
from repro.graph.dominating import (
    dominating_set_lower_bound,
    exact_weighted_dominating_set,
    greedy_record_cover,
    greedy_weighted_dominating_set,
    is_dominating_set,
    total_weight,
)
from repro.graph.powerlaw import (
    PowerLawFit,
    ccdf,
    degree_histogram,
    degree_sequence,
    fit_power_law,
    fit_power_law_points,
    hub_fraction,
    loglog_points,
)

__all__ = [
    "PowerLawFit",
    "build_avg",
    "build_avg_from_table",
    "ccdf",
    "component_sizes",
    "convergence_coverage",
    "degree_histogram",
    "degree_sequence",
    "dominating_set_lower_bound",
    "exact_weighted_dominating_set",
    "fit_power_law",
    "fit_power_law_points",
    "greedy_record_cover",
    "greedy_weighted_dominating_set",
    "hub_fraction",
    "is_dominating_set",
    "largest_component_fraction",
    "loglog_points",
    "page_cost",
    "reachable_records",
    "reachable_values",
    "record_clique",
    "record_connectivity",
    "total_weight",
]
