"""Attribute-value graph (AVG) construction — Definition 2.1.

Given a universal table, the AVG has one vertex per distinct attribute
value and an undirected edge between two vertices iff they co-occur in
at least one record; the attribute values of each record therefore form
a clique.  The graph is materialized as a :class:`networkx.Graph` whose
nodes are :class:`~repro.core.values.AttributeValue` instances, so all
of networkx's algorithms apply directly.

Node attributes
---------------
``frequency``
    Number of records containing the value — drives the paper's cost
    model, since querying the value costs ``ceil(frequency / k)`` pages.
``weight``
    The Definition 2.4 weight function ``W: V → (0, 1]``, here the
    normalized page cost of querying the node.

Edge attributes
---------------
``records``
    Number of records in which the two endpoint values co-occur.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import networkx as nx

from repro.core.records import Record
from repro.core.table import RelationalTable
from repro.core.values import AttributeValue


def record_clique(record: Record) -> list[tuple[AttributeValue, AttributeValue]]:
    """All vertex pairs a single record connects (its clique's edges)."""
    pairs = record.attribute_values()
    return [
        (pairs[i], pairs[j])
        for i in range(len(pairs))
        for j in range(i + 1, len(pairs))
    ]


def build_avg(
    records: Iterable[Record],
    page_size: int = 10,
    attributes: Optional[Iterable[str]] = None,
) -> nx.Graph:
    """Build the attribute-value graph of an iterable of records.

    Parameters
    ----------
    records:
        The rows of the universal table (or any subset — the crawler
        uses this same function for the local graph ``G_local``).
    page_size:
        ``k`` of the cost model; used to derive node weights.
    attributes:
        If given, restrict the graph to values of these attributes —
        the paper's experiments build AVGs over the queriable schema.

    Returns
    -------
    networkx.Graph
        Nodes are :class:`AttributeValue`; see module docstring for the
        node/edge attributes attached.
    """
    keep = None if attributes is None else {a.strip().lower() for a in attributes}
    graph = nx.Graph()
    for record in records:
        clique = [
            pair
            for pair in record.attribute_values()
            if keep is None or pair.attribute in keep
        ]
        for pair in clique:
            if graph.has_node(pair):
                graph.nodes[pair]["frequency"] += 1
            else:
                graph.add_node(pair, frequency=1)
        for i in range(len(clique)):
            for j in range(i + 1, len(clique)):
                u, v = clique[i], clique[j]
                if graph.has_edge(u, v):
                    graph.edges[u, v]["records"] += 1
                else:
                    graph.add_edge(u, v, records=1)
    _attach_weights(graph, page_size)
    return graph


def build_avg_from_table(
    table: RelationalTable,
    page_size: int = 10,
    queriable_only: bool = False,
) -> nx.Graph:
    """Convenience wrapper building the AVG of a whole table."""
    attributes = table.schema.queriable if queriable_only else None
    return build_avg(table, page_size=page_size, attributes=attributes)


def _attach_weights(graph: nx.Graph, page_size: int) -> None:
    """Attach the Definition 2.4 weight ``W: V → (0, 1]`` to every node.

    The weight of a node is its page cost ``ceil(frequency / k)``
    normalized by the maximum page cost in the graph, so that weights
    fall in ``(0, 1]`` as the paper requires while preserving the cost
    ordering.
    """
    if not graph:
        return
    costs = {
        node: math.ceil(data["frequency"] / page_size)
        for node, data in graph.nodes(data=True)
    }
    max_cost = max(costs.values())
    for node, cost in costs.items():
        graph.nodes[node]["weight"] = cost / max_cost


def page_cost(graph: nx.Graph, node: AttributeValue, page_size: int = 10) -> int:
    """``cost(q, DB) = ceil(num(q, DB) / k)`` for the node's query."""
    return math.ceil(graph.nodes[node]["frequency"] / page_size)
