"""Connectivity analysis of attribute-value graphs.

Section 5 of the paper reports that the four controlled databases are
"well connected": starting from any record, 99% of the database is
reachable within finitely many queries.  Section 4 motivates domain
knowledge partly by "data islands" — disconnected components a purely
relational-link crawler can never leave.  This module quantifies both.

Reachability here follows the crawling semantics: querying a known
value retrieves every record containing it; each retrieved record
reveals all of its values.  Records reachable from a seed value are thus
exactly the records of the seed's connected component (when no result
limits truncate answers).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.core.records import Record
from repro.core.values import AttributeValue


def component_sizes(graph: nx.Graph) -> list[int]:
    """Sizes of connected components, descending (in vertices)."""
    return sorted((len(c) for c in nx.connected_components(graph)), reverse=True)


def largest_component_fraction(graph: nx.Graph) -> float:
    """Fraction of vertices inside the giant component."""
    if len(graph) == 0:
        return 0.0
    return max(len(c) for c in nx.connected_components(graph)) / len(graph)


def reachable_values(graph: nx.Graph, seeds: Iterable[AttributeValue]) -> set[AttributeValue]:
    """All AVG vertices reachable from any seed vertex.

    Seeds absent from the graph (a seed value the database does not
    contain) contribute nothing, mirroring a query with zero results.
    """
    reached: set[AttributeValue] = set()
    for seed in seeds:
        if seed in reached or not graph.has_node(seed):
            continue
        reached.update(nx.node_connected_component(graph, seed))
    return reached


def reachable_records(
    records: Sequence[Record], graph: nx.Graph, seeds: Iterable[AttributeValue]
) -> list[Record]:
    """Records obtainable by exhaustive crawling from the given seeds.

    A record is reachable iff any of its attribute values lies in a
    component touched by a seed — the "convergence coverage" that the
    paper says is predetermined by the seeds and the interface.
    """
    values = reachable_values(graph, seeds)
    return [
        record
        for record in records
        if any(pair in values for pair in record.attribute_values())
    ]


def convergence_coverage(
    records: Sequence[Record], graph: nx.Graph, seeds: Iterable[AttributeValue]
) -> float:
    """Fraction of records reachable from the seeds (the coverage ceiling)."""
    if not records:
        return 0.0
    return len(reachable_records(records, graph, seeds)) / len(records)


def record_connectivity(records: Sequence[Record], graph: nx.Graph) -> float:
    """The paper's "99% of records are connected" statistic.

    Fraction of records whose values lie in the AVG's giant component;
    from any such record every other such record is crawlable.
    """
    if not records or len(graph) == 0:
        return 0.0
    giant = max(nx.connected_components(graph), key=len)
    connected = sum(
        1
        for record in records
        if any(pair in giant for pair in record.attribute_values())
    )
    return connected / len(records)
