"""Weighted minimum dominating set algorithms — Definition 2.4.

The paper shows that an optimal query-selection plan is a Weighted
Minimum Dominating Set (WMDS) of the attribute-value graph: a vertex set
``V'`` such that every other vertex is adjacent to ``V'``, with minimum
total weight.  WMDS is NP-complete, so this module provides:

- :func:`greedy_weighted_dominating_set` — the classical ln(n)-factor
  greedy approximation (max newly-dominated-per-unit-weight), used as
  the offline "oracle" baseline in the benchmarks;
- :func:`exact_weighted_dominating_set` — branch-and-bound exact search
  for small graphs, used by tests to validate the greedy's output; and
- :func:`is_dominating_set` — the validity predicate used everywhere.

A second, crawling-specific notion lives alongside: a record-cover via
:func:`greedy_record_cover`, where choosing a vertex (issuing its query)
covers all *records* containing it.  That is the quantity the crawler
actually optimizes (database coverage per page), and greedy weighted
set-cover is its textbook approximation.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Optional

import networkx as nx

Node = Hashable
WeightFn = Callable[[Node], float]


def _weight_fn(graph: nx.Graph, weight: Optional[str]) -> WeightFn:
    if weight is None:
        return lambda _node: 1.0
    return lambda node: float(graph.nodes[node].get(weight, 1.0))


def is_dominating_set(graph: nx.Graph, nodes: Iterable[Node]) -> bool:
    """True iff every vertex is in ``nodes`` or adjacent to one of them."""
    chosen = set(nodes)
    if not chosen and len(graph) > 0:
        return False
    dominated = set(chosen)
    for node in chosen:
        dominated.update(graph.neighbors(node))
    return len(dominated) == len(graph)


def total_weight(graph: nx.Graph, nodes: Iterable[Node], weight: Optional[str] = "weight") -> float:
    """Sum of node weights; unweighted (cardinality) when ``weight`` is None."""
    fn = _weight_fn(graph, weight)
    return sum(fn(node) for node in nodes)


def greedy_weighted_dominating_set(
    graph: nx.Graph, weight: Optional[str] = "weight"
) -> set[Node]:
    """Greedy WMDS: repeatedly pick the vertex maximizing new-coverage/weight.

    This is the standard reduction of dominating set to weighted set
    cover (each vertex's set = its closed neighbourhood) solved by the
    greedy H(n)-approximation.  Runs in ``O((V + E) log V)`` using a
    lazy-deletion heap.
    """
    if len(graph) == 0:
        return set()
    fn = _weight_fn(graph, weight)
    undominated: set[Node] = set(graph.nodes)
    chosen: set[Node] = set()

    def gain(node: Node) -> int:
        if node in undominated:
            count = 1
        else:
            count = 0
        count += sum(1 for n in graph.neighbors(node) if n in undominated)
        return count

    # Lazy heap of (-gain/weight, node); stale entries are re-scored on pop.
    heap = [(-gain(node) / max(fn(node), 1e-12), id(node), node) for node in graph.nodes]
    heapq.heapify(heap)
    scores = {node: -entry for entry, _tie, node in heap}

    while undominated:
        neg_score, _tie, node = heapq.heappop(heap)
        current = gain(node) / max(fn(node), 1e-12)
        if current <= 0:
            continue
        if -neg_score > current + 1e-12:
            # Stale entry: re-push with the fresh score.
            heapq.heappush(heap, (-current, id(node), node))
            continue
        chosen.add(node)
        newly = {node} if node in undominated else set()
        newly.update(n for n in graph.neighbors(node) if n in undominated)
        undominated -= newly
    assert is_dominating_set(graph, chosen)
    return chosen


def exact_weighted_dominating_set(
    graph: nx.Graph, weight: Optional[str] = "weight", max_nodes: int = 24
) -> set[Node]:
    """Exact WMDS by branch and bound over vertex subsets.

    Only intended for validation on small graphs: ``len(graph)`` must
    not exceed ``max_nodes`` (default 24, i.e. ≤ 2^24 leaves before
    pruning).  Nodes are bit-indexed and closed neighbourhoods become
    bitmasks, so the inner loop is integer arithmetic.
    """
    n = len(graph)
    if n == 0:
        return set()
    if n > max_nodes:
        raise ValueError(f"exact search limited to {max_nodes} nodes, got {n}")
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    fn = _weight_fn(graph, weight)
    weights = [fn(node) for node in nodes]
    closed = []
    for node in nodes:
        mask = 1 << index[node]
        for neighbor in graph.neighbors(node):
            mask |= 1 << index[neighbor]
        closed.append(mask)
    full = (1 << n) - 1

    # Greedy warm start tightens the initial bound.
    greedy = greedy_weighted_dominating_set(graph, weight)
    best_weight = sum(weights[index[node]] for node in greedy)
    best_set: FrozenSet[int] = frozenset(index[node] for node in greedy)

    max_cover = max(bin(m).count("1") for m in closed)
    min_weight = min(weights) if weights else 0.0
    by_value = sorted(
        range(n), key=lambda i: -bin(closed[i]).count("1") / max(weights[i], 1e-12)
    )

    def search(dominated: int, chosen: FrozenSet[int], acc: float) -> None:
        nonlocal best_weight, best_set
        if dominated == full:
            if acc < best_weight:
                best_weight = acc
                best_set = chosen
            return
        remaining = full & ~dominated
        # Lower bound: covering max_cover new nodes per pick costs at least this.
        need = math.ceil(bin(remaining).count("1") / max_cover)
        if acc + need * min_weight >= best_weight:
            return
        # Pick an undominated pivot; any dominating set must contain some
        # vertex of the pivot's closed neighbourhood, so branching over
        # those coverers is a complete search.
        pivot = (remaining & -remaining).bit_length() - 1
        for i in by_value:
            if i in chosen or not closed[i] >> pivot & 1:
                continue
            search(dominated | closed[i], chosen | {i}, acc + weights[i])

    search(0, frozenset(), 0.0)
    result = {nodes[i] for i in best_set}
    assert is_dominating_set(graph, result)
    return result


def greedy_record_cover(
    value_to_records: Dict[Node, FrozenSet[int]],
    costs: Optional[Dict[Node, float]] = None,
    target_records: Optional[int] = None,
) -> list[Node]:
    """Greedy weighted set cover over *records* — the oracle query plan.

    Parameters
    ----------
    value_to_records:
        For each candidate query (AVG vertex), the set of record ids the
        query retrieves.
    costs:
        Page cost per query; defaults to 1 per query (pure cardinality).
    target_records:
        Stop once this many records are covered (e.g. 90% of ``|DB|``);
        by default covers everything coverable.

    Returns
    -------
    list
        Chosen queries in selection order, so prefixes are themselves
        greedy plans for smaller coverage targets.
    """
    remaining_target = (
        len(set().union(*value_to_records.values())) if value_to_records else 0
    )
    if target_records is not None:
        remaining_target = min(remaining_target, target_records)
    covered: set[int] = set()
    chosen: list[Node] = []
    cost_of = (lambda v: 1.0) if costs is None else (lambda v: max(costs.get(v, 1.0), 1e-12))
    heap = [
        (-len(records) / cost_of(value), i, value)
        for i, (value, records) in enumerate(value_to_records.items())
    ]
    heapq.heapify(heap)
    while len(covered) < remaining_target and heap:
        neg_score, tie, value = heapq.heappop(heap)
        new = value_to_records[value] - covered
        score = len(new) / cost_of(value)
        if score <= 0:
            continue
        if -neg_score > score + 1e-12:
            heapq.heappush(heap, (-score, tie, value))
            continue
        chosen.append(value)
        covered |= new
    return chosen


def dominating_set_lower_bound(graph: nx.Graph) -> int:
    """A cheap cardinality lower bound: ``ceil(n / (max_degree + 1))``.

    Every chosen vertex dominates at most ``max_degree + 1`` vertices,
    so no dominating set can be smaller.  Used in tests to sandwich the
    greedy solution.
    """
    n = len(graph)
    if n == 0:
        return 0
    max_degree = max(degree for _node, degree in graph.degree())
    return math.ceil(n / (max_degree + 1))
