"""Degree-distribution analysis for attribute-value graphs (Figure 2).

Section 3.2 of the paper observes that the AVG degree distributions of
DBLP, IMDB and the ACM Digital Library "closely resemble the power-law
distribution", which motivates the greedy link-based crawler.  This
module reproduces that case study: it computes degree histograms,
log-log frequency plots, and least-squares power-law fits, and exposes
the pieces needed to regenerate Figure 2's series.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``log10(frequency) = intercept + slope * log10(degree)``.

    ``slope`` is the (negative) power-law exponent estimate; ``r_squared``
    measures how straight the log-log scatter is — the paper's "very
    close to power-law" claim translates to a high R² and a negative
    slope.
    """

    slope: float
    intercept: float
    r_squared: float
    n_points: int

    @property
    def exponent(self) -> float:
        """The power-law exponent alpha in ``frequency ∝ degree^-alpha``."""
        return -self.slope


def degree_histogram(graph: nx.Graph) -> dict[int, int]:
    """Map ``degree → number of nodes with that degree`` (zeros included)."""
    return dict(Counter(degree for _node, degree in graph.degree()))


def degree_sequence(graph: nx.Graph) -> list[int]:
    """All node degrees, descending — handy for hub inspection."""
    return sorted((degree for _node, degree in graph.degree()), reverse=True)


def loglog_points(histogram: dict[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """The Figure 2 scatter: ``(log10 degree, log10 frequency)`` pairs.

    Degree-0 nodes cannot appear on a log axis and are dropped, matching
    the standard presentation.
    """
    degrees = np.array(sorted(d for d in histogram if d > 0), dtype=float)
    frequencies = np.array([histogram[int(d)] for d in degrees], dtype=float)
    return np.log10(degrees), np.log10(frequencies)


def fit_power_law(graph: nx.Graph) -> PowerLawFit:
    """Fit a power law to the graph's degree distribution.

    Uses ordinary least squares on the log-log histogram — the same
    visual-linearity argument the paper makes.  At least two distinct
    positive degrees are required.

    Raises
    ------
    ValueError
        If the graph has fewer than two distinct positive degrees, in
        which case no line can be fit.
    """
    histogram = degree_histogram(graph)
    x, y = loglog_points(histogram)
    return fit_power_law_points(x, y)


def fit_power_law_points(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    """Fit a line to pre-computed log-log points (see :func:`loglog_points`)."""
    if len(x) < 2:
        raise ValueError("need at least two distinct degrees to fit a power law")
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = intercept + slope * x
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(float(slope), float(intercept), r_squared, len(x))


def ccdf(degrees: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of a degree sequence.

    Returns ``(degree values ascending, P(D >= degree))``.  The CCDF is
    a smoother alternative to the raw histogram for verifying heavy
    tails, used by the ablation benchmarks.
    """
    values = np.array(sorted(set(degrees)), dtype=float)
    sorted_degrees = np.sort(np.array(degrees, dtype=float))
    n = len(sorted_degrees)
    probabilities = np.array(
        [(n - np.searchsorted(sorted_degrees, v, side="left")) / n for v in values]
    )
    return values, probabilities


def hub_fraction(graph: nx.Graph, top_fraction: float = 0.01) -> float:
    """Fraction of all edge endpoints covered by the top-degree nodes.

    Quantifies the paper's "a few attribute values are extremely
    popular" observation: the share of edge incidences owned by the top
    ``top_fraction`` of nodes by degree.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    degrees = degree_sequence(graph)
    if not degrees:
        return 0.0
    total = sum(degrees)
    if total == 0:
        return 0.0
    top_n = max(1, int(len(degrees) * top_fraction))
    return sum(degrees[:top_n]) / total
