"""Persistence: JSON (de)serialization for tables, domain tables, crawls.

A crawling project is long-running — harvests, domain tables, and
generated corpora need to outlive one process.  This module round-trips
the library's main artifacts through plain JSON (gzip-compressed when
the path ends in ``.gz``):

- :func:`save_table` / :func:`load_table` — a full
  :class:`~repro.core.table.RelationalTable` including its schema flags;
- :func:`save_domain_table` / :func:`load_domain_table` — a
  :class:`~repro.domain.table.DomainStatisticsTable` with posting lists;
- :func:`history_to_csv` — a crawl's coverage-versus-cost series for
  external plotting.
- :func:`save_checkpoint` / :func:`load_checkpoint` — a durable
  runtime's :class:`~repro.runtime.checkpoint.CrawlCheckpoint` payload
  (written atomically: a crash mid-write never corrupts the previous
  checkpoint).

All formats carry a ``format`` tag and version so stale files fail
loudly instead of deserializing into garbage.
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import Union

from repro.core.errors import ReproError
from repro.core.records import Record
from repro.core.schema import Attribute, Schema
from repro.core.table import RelationalTable
from repro.core.values import AttributeValue
from repro.crawler.metrics import CrawlHistory
from repro.domain.table import DomainEntry, DomainStatisticsTable

PathLike = Union[str, Path]

_TABLE_FORMAT = "repro.table/1"
_DOMAIN_FORMAT = "repro.domain-table/1"
CHECKPOINT_FORMAT = "repro.checkpoint/1"


class PersistenceError(ReproError):
    """A file is not a valid artifact of the expected kind/version."""


def _write_text(path: PathLike, text: str) -> None:
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="utf-8")


def _read_text(path: PathLike) -> str:
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return handle.read()
    return path.read_text(encoding="utf-8")


def _check_format(payload: dict, expected: str, path: PathLike) -> None:
    found = payload.get("format")
    if found != expected:
        raise PersistenceError(
            f"{path}: expected format {expected!r}, found {found!r}"
        )


# ----------------------------------------------------------------------
# Relational tables
# ----------------------------------------------------------------------
def table_to_dict(table: RelationalTable) -> dict:
    """Plain-JSON-serializable dump of a table (schema + records)."""
    return {
        "format": _TABLE_FORMAT,
        "name": table.name,
        "schema": [
            {
                "name": attribute.name,
                "queriable": attribute.queriable,
                "displayed": attribute.displayed,
                "multivalued": attribute.multivalued,
            }
            for attribute in table.schema
        ],
        "records": [
            {
                "id": record.record_id,
                "fields": {k: list(v) for k, v in record.fields.items()},
            }
            for record in sorted(table, key=lambda r: r.record_id)
        ],
    }


def table_from_dict(payload: dict, path: PathLike = "<dict>") -> RelationalTable:
    _check_format(payload, _TABLE_FORMAT, path)
    schema = Schema(
        tuple(
            Attribute(
                entry["name"],
                entry.get("queriable", True),
                entry.get("displayed", True),
                entry.get("multivalued", False),
            )
            for entry in payload["schema"]
        )
    )
    table = RelationalTable(schema, name=payload.get("name", "db"))
    for entry in payload["records"]:
        fields = {k: tuple(v) for k, v in entry["fields"].items()}
        table.insert(Record(int(entry["id"]), fields))
    return table


def save_table(table: RelationalTable, path: PathLike) -> None:
    _write_text(path, json.dumps(table_to_dict(table)))


def load_table(path: PathLike) -> RelationalTable:
    try:
        payload = json.loads(_read_text(path))
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(f"{path}: cannot read table ({error})") from error
    return table_from_dict(payload, path)


# ----------------------------------------------------------------------
# Domain statistics tables
# ----------------------------------------------------------------------
def domain_table_to_dict(table: DomainStatisticsTable) -> dict:
    return {
        "format": _DOMAIN_FORMAT,
        "size": table.size,
        "entries": [
            {
                "attribute": value.attribute,
                "value": value.value,
                "count": table.count(value),
                "postings": list(table.postings(value)),
            }
            for value in table.values()
        ],
    }


def domain_table_from_dict(
    payload: dict, path: PathLike = "<dict>"
) -> DomainStatisticsTable:
    _check_format(payload, _DOMAIN_FORMAT, path)
    entries = {}
    for item in payload["entries"]:
        value = AttributeValue(item["attribute"], item["value"])
        entries[value] = DomainEntry(
            value=value,
            count=int(item["count"]),
            postings=tuple(int(p) for p in item["postings"]),
        )
    return DomainStatisticsTable(entries, size=int(payload["size"]))


def save_domain_table(table: DomainStatisticsTable, path: PathLike) -> None:
    _write_text(path, json.dumps(domain_table_to_dict(table)))


def load_domain_table(path: PathLike) -> DomainStatisticsTable:
    try:
        payload = json.loads(_read_text(path))
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(
            f"{path}: cannot read domain table ({error})"
        ) from error
    return domain_table_from_dict(payload, path)


# ----------------------------------------------------------------------
# Crawl checkpoints (see repro.runtime)
# ----------------------------------------------------------------------
def save_checkpoint(payload: dict, path: PathLike) -> None:
    """Atomically persist a checkpoint payload.

    The payload is written to a sibling temp file and moved into place
    with :func:`os.replace`, so readers only ever see either the old
    complete checkpoint or the new complete one.  The payload must
    carry ``format == CHECKPOINT_FORMAT`` (the runtime stamps it).
    """
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise PersistenceError(
            f"checkpoint payload must carry format {CHECKPOINT_FORMAT!r}"
        )
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, separators=(",", ":")), encoding="utf-8")
    os.replace(tmp, path)


def load_checkpoint(path: PathLike) -> dict:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(
            f"{path}: cannot read checkpoint ({error})"
        ) from error
    _check_format(payload, CHECKPOINT_FORMAT, path)
    return payload


# ----------------------------------------------------------------------
# Crawl histories
# ----------------------------------------------------------------------
def history_to_csv(history: CrawlHistory, path: PathLike) -> None:
    """Write a crawl history as ``rounds,records`` CSV (with header)."""
    lines = ["rounds,records"]
    lines.extend(f"{point.rounds},{point.records}" for point in history.points)
    _write_text(path, "\n".join(lines) + "\n")


def history_from_csv(path: PathLike) -> CrawlHistory:
    text = _read_text(path)
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "rounds,records":
        raise PersistenceError(f"{path}: not a crawl-history CSV")
    history = CrawlHistory()
    for line in lines[1:]:
        rounds, records = line.split(",")
        history.append(int(rounds), int(records))
    return history
