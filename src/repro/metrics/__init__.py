"""Live crawl telemetry: a metrics registry fed by the event bus.

The paper's argument is quantitative — harvest rate ``HR(q)``,
coverage-versus-cost curves, the >85%-coverage "low marginal benefit"
regime — yet those numbers classically appear only *after* a crawl
finishes.  This package makes them live:

- :mod:`repro.metrics.registry` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families with labels, owned by a
  :class:`MetricsRegistry` that snapshots (for checkpoints), restores,
  and merges (for the parallel runner) deterministically;
- :mod:`repro.metrics.telemetry` — :class:`TelemetrySink`, the bus
  subscriber that translates :mod:`repro.runtime.events` into
  telemetry: queries, pages, new-vs-duplicate records, retries and
  charged backoff rounds, rounds saved by abortion, live coverage,
  rolling harvest rate, cache hit ratio, per-step wall time;
- :mod:`repro.metrics.exporters` — Prometheus text format, an
  append-only JSONL snapshot stream (plus its schema validator), and
  the end-of-run summary table;
- :mod:`repro.metrics.progress` — :class:`ProgressReporter`, a
  heartbeat line every N steps with optional JSONL snapshotting.

The sinks attach to the same :class:`~repro.runtime.events.EventBus`
every crawl already carries, so instrumentation is opt-in and a crawl
with no sinks pays one attribute check per event.  The
:class:`~repro.runtime.crawler.RuntimeCrawler` embeds registry
snapshots in checkpoints so resumed crawls report continuous totals,
and :func:`repro.parallel.run_crawl_grid` merges per-worker registries
in fixed task order.
"""

from repro.metrics.exporters import (
    JSONL_SCHEMA,
    JsonlMetricsWriter,
    prometheus_text,
    registry_samples,
    render_metrics_summary,
    validate_metrics_jsonl,
)
from repro.metrics.progress import ProgressReporter
from repro.metrics.quantiles import nearest_rank, percentiles
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricsRegistry,
)
from repro.metrics.telemetry import TelemetrySink

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JSONL_SCHEMA",
    "JsonlMetricsWriter",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "ProgressReporter",
    "TelemetrySink",
    "nearest_rank",
    "percentiles",
    "prometheus_text",
    "registry_samples",
    "render_metrics_summary",
    "validate_metrics_jsonl",
]
