"""Metric exporters: Prometheus text, JSONL snapshots, summary table.

Three consumers, three formats:

- :func:`prometheus_text` — the Prometheus exposition format
  (``# HELP`` / ``# TYPE`` plus one sample line per series, histograms
  expanded into cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``),
  ready to serve from a ``/metrics`` endpoint or write next to a run;
- :class:`JsonlMetricsWriter` — an append-only stream of registry
  snapshots, one JSON object per line, the shape a dashboard tails
  during a long crawl (the heartbeat reporter writes one line per
  beat).  Every line carries ``schema``, ``step``, and a flat
  ``samples`` list so consumers need no registry code to parse it;
- :func:`render_metrics_summary` — the end-of-run plain-text table the
  CLI prints.

Sample values are emitted deterministically: metrics in registration
order, series sorted by label values.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import List, Optional, Union

from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry

#: Version tag stamped on every JSONL line (consumers gate on it).
JSONL_SCHEMA = "repro-metrics/1"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash first (it introduces the other escapes), then double
    quote and newline — otherwise a policy name like ``a"b`` or a
    query value containing ``\\n`` corrupts the scrape line.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_text(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus exposition format."""
    lines: List[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for values, value in metric.series():
                lines.append(
                    f"{metric.name}"
                    f"{_label_text(metric.label_names, values)}"
                    f" {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for values, series in metric.series():
                labels = dict(zip(metric.label_names, values))
                for bound, cumulative in metric.cumulative_buckets(**labels):
                    bucket_labels = _label_text(
                        metric.label_names + ("le",),
                        values + (_format_value(bound),),
                    )
                    lines.append(
                        f"{metric.name}_bucket{bucket_labels} {cumulative}"
                    )
                base = _label_text(metric.label_names, values)
                lines.append(
                    f"{metric.name}_sum{base} {_format_value(series.sum)}"
                )
                lines.append(f"{metric.name}_count{base} {series.total}")
    return "\n".join(lines) + "\n"


def registry_samples(registry: MetricsRegistry) -> List[dict]:
    """Flatten the registry into JSON-safe sample dicts.

    Counters/gauges produce ``{name, kind, labels, value}``; histograms
    produce one sample with ``buckets`` (cumulative ``[le, count]``
    pairs), ``sum``, and ``count`` instead of ``value``.
    """
    samples: List[dict] = []
    for metric in registry:
        if isinstance(metric, (Counter, Gauge)):
            for values, value in metric.series():
                samples.append(
                    {
                        "name": metric.name,
                        "kind": metric.kind,
                        "labels": dict(zip(metric.label_names, values)),
                        "value": value,
                    }
                )
        elif isinstance(metric, Histogram):
            for values, series in metric.series():
                labels = dict(zip(metric.label_names, values))
                samples.append(
                    {
                        "name": metric.name,
                        "kind": metric.kind,
                        "labels": labels,
                        "buckets": [
                            ["+Inf" if bound == math.inf else bound, count]
                            for bound, count in metric.cumulative_buckets(
                                **labels
                            )
                        ],
                        "sum": series.sum,
                        "count": series.total,
                    }
                )
    return samples


class JsonlMetricsWriter:
    """Append registry snapshots to a JSONL file, one line per snapshot."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.snapshots_written = 0

    def write_snapshot(
        self,
        registry: MetricsRegistry,
        step: Optional[int] = None,
        label: Optional[str] = None,
    ) -> None:
        line = {
            "schema": JSONL_SCHEMA,
            "step": step,
            "label": label,
            "samples": registry_samples(registry),
        }
        self._handle.write(json.dumps(line, separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()
        self.snapshots_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlMetricsWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def validate_metrics_jsonl(path: Union[str, Path]) -> int:
    """Check a metrics JSONL file against the exporter schema.

    Returns the number of snapshot lines; raises ``ValueError`` with a
    line-numbered message on the first malformed line.  Used by the CI
    smoke test and by consumers defending against partial writes.
    """
    count = 0
    with open(path, encoding="utf-8") as handle:
        for number, text in enumerate(handle, start=1):
            text = text.strip()
            if not text:
                continue
            try:
                line = json.loads(text)
            except json.JSONDecodeError as error:
                raise ValueError(f"line {number}: not JSON ({error})") from error
            if line.get("schema") != JSONL_SCHEMA:
                raise ValueError(
                    f"line {number}: schema {line.get('schema')!r} != "
                    f"{JSONL_SCHEMA!r}"
                )
            samples = line.get("samples")
            if not isinstance(samples, list):
                raise ValueError(f"line {number}: samples must be a list")
            for sample in samples:
                if not isinstance(sample, dict):
                    raise ValueError(f"line {number}: sample must be an object")
                missing = {"name", "kind", "labels"} - set(sample)
                if missing:
                    raise ValueError(
                        f"line {number}: sample missing {sorted(missing)}"
                    )
                if sample["kind"] == "histogram":
                    if "buckets" not in sample or "count" not in sample:
                        raise ValueError(
                            f"line {number}: histogram sample needs "
                            f"buckets+count"
                        )
                elif "value" not in sample:
                    raise ValueError(
                        f"line {number}: {sample['kind']} sample needs value"
                    )
            count += 1
    return count


def render_metrics_summary(registry: MetricsRegistry) -> str:
    """End-of-run plain-text roll-up of every non-empty metric."""
    from repro.experiments.report import render_table

    rows: List[list] = []
    for metric in registry:
        if isinstance(metric, (Counter, Gauge)):
            for values, value in metric.series():
                rows.append(
                    [
                        metric.name,
                        metric.kind,
                        _label_text(metric.label_names, values) or "-",
                        round(value, 4),
                    ]
                )
        elif isinstance(metric, Histogram):
            for values, series in metric.series():
                mean = series.sum / series.total if series.total else 0.0
                rows.append(
                    [
                        metric.name,
                        metric.kind,
                        _label_text(metric.label_names, values) or "-",
                        f"n={series.total} mean={mean:.4g}",
                    ]
                )
    if not rows:
        return "no metrics recorded"
    return render_table(
        ["metric", "kind", "labels", "value"], rows, title="Crawl telemetry"
    )
