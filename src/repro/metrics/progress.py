"""Heartbeat progress reporting for long crawls.

A production crawl runs for millions of rounds; the operator's question
is always the same — *is it still converging, and at what cost?*
:class:`ProgressReporter` answers it with one line every ``every``
completed steps, straight off the event bus::

    [greedy-link] step 400 | records 3,120 (62.4%) | rounds 5,017 | \
new/page 0.62 (rolling 0.31) | aborted 12 | retries 3 | 14.2s

Coverage appears when the true source size is known (controlled
experiments report it; a production crawl would substitute an
estimate).  The rolling harvest rate comes from the attached
:class:`~repro.metrics.telemetry.TelemetrySink` when one is shared —
the reporter never computes crawl state of its own beyond simple
tallies.

When a :class:`~repro.metrics.exporters.JsonlMetricsWriter` is
attached, every heartbeat also appends a registry snapshot line, which
is what turns the JSONL export into a *live* stream rather than a
post-mortem dump.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional, TextIO

from repro.metrics.exporters import JsonlMetricsWriter
from repro.metrics.quantiles import percentiles
from repro.metrics.telemetry import TelemetrySink
from repro.runtime.events import CrawlEvent, CrawlStopped, EventSink, RecordsHarvested


class ProgressReporter(EventSink):
    """Emit a heartbeat line every ``every`` completed crawl steps.

    Parameters
    ----------
    every:
        Steps between heartbeats (``0`` disables periodic lines; the
        final ``CrawlStopped`` line is still written).
    stream:
        Where heartbeat lines go (``None`` silences text output —
        useful when only the JSONL stream is wanted).
    telemetry:
        Optional shared telemetry sink; enriches lines with rolling
        harvest rate and abort/retry counters, and is the registry
        snapshotted to ``writer``.
    truth_size:
        True source size for live coverage percentages.
    writer:
        Optional JSONL writer; a registry snapshot is appended per
        heartbeat and at crawl stop (requires ``telemetry``).
    """

    def __init__(
        self,
        every: int = 100,
        stream: Optional[TextIO] = None,
        telemetry: Optional[TelemetrySink] = None,
        truth_size: Optional[int] = None,
        writer: Optional[JsonlMetricsWriter] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        self.every = every
        self.stream = stream
        self.telemetry = telemetry
        self.truth_size = truth_size
        self.writer = writer
        self._clock = clock
        self._started_at = clock()
        #: Wall seconds accumulated by prior runs of a resumed crawl.
        #: Seeded lazily from the registry's ``crawl_elapsed_seconds``
        #: gauge (restored from the checkpoint *after* this sink is
        #: attached), so a resumed crawl reports cumulative elapsed
        #: time instead of restarting from zero.
        self._elapsed_offset: Optional[float] = None
        self.beats = 0
        #: Wall seconds between consecutive completed steps, for the
        #: heartbeat's step-latency percentiles.  Bounded: an
        #: unbounded list would grow for the crawl's whole life, and a
        #: rolling window is the more honest signal anyway ("how slow
        #: are steps *lately*", not since launch).  Shares the
        #: nearest-rank estimator with the loadtest report
        #: (:mod:`repro.metrics.quantiles`).
        self._step_times: deque = deque(maxlen=1024)
        self._last_step_at: Optional[float] = None
        self._last_step: Optional[int] = None
        self._last_policy: Optional[str] = None
        self._last_snapshot_step: Optional[int] = None
        self._final_written = False

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Cumulative crawl wall seconds, including pre-resume runs."""
        if self._elapsed_offset is None:
            self._elapsed_offset = 0.0
            if self.telemetry is not None:
                gauge = getattr(self.telemetry, "elapsed_gauge", None)
                if gauge is not None:
                    self._elapsed_offset = gauge.value()
        elapsed = self._elapsed_offset + self._clock() - self._started_at
        if self.telemetry is not None:
            gauge = getattr(self.telemetry, "elapsed_gauge", None)
            if gauge is not None:
                gauge.set(round(elapsed, 3))
        return elapsed

    def handle(self, event: CrawlEvent) -> None:
        if isinstance(event, RecordsHarvested):
            now = self._clock()
            if self._last_step_at is not None:
                self._step_times.append(now - self._last_step_at)
            self._last_step_at = now
            self._last_step = event.step
            self._last_policy = event.policy
            if self.telemetry is not None:
                # Publish per step (not per beat): a suspension
                # checkpoint snapshots the registry before the final
                # CrawlStopped, and must carry current elapsed time.
                self.elapsed()
            if self.every and event.step % self.every == 0:
                self._beat(event)
        elif isinstance(event, CrawlStopped):
            self._final(event)

    def close(self) -> None:
        """Flush the closing snapshot if the crawl ended without one.

        A crawl that stops between heartbeats (last step not a multiple
        of ``every``) and never delivers ``CrawlStopped`` to this sink —
        crash, plain ``engine.step()`` driving, early detach — would
        otherwise leave the JSONL stream ending at the last heartbeat.
        Safe to call twice; a no-op when the final snapshot was written.
        """
        if self._final_written:
            return
        self._final_written = True
        self.elapsed()  # publish cumulative elapsed for the checkpoint
        if (
            self.writer is not None
            and self.telemetry is not None
            and self._last_step is not None
            and self._last_step != self._last_snapshot_step
        ):
            self.writer.write_snapshot(
                self.telemetry.registry,
                step=self._last_step,
                label=self._last_policy or "?",
            )

    def _beat(self, event: RecordsHarvested) -> None:
        self.beats += 1
        policy = event.policy or "?"
        if self.stream is not None:
            parts = [
                f"[{policy}] step {event.step:,}",
                self._records_text(event.records_total),
                f"rounds {event.rounds:,}",
            ]
            parts.extend(self._telemetry_text(policy))
            if self._step_times:
                pcts = percentiles(self._step_times, (0.50, 0.95))
                parts.append(
                    f"step p50 {pcts[0.50] * 1e3:.1f}ms "
                    f"p95 {pcts[0.95] * 1e3:.1f}ms"
                )
            parts.append(f"{self.elapsed():.1f}s")
            self.stream.write(" | ".join(parts) + "\n")
        if self.writer is not None and self.telemetry is not None:
            self._last_snapshot_step = event.step
            self.writer.write_snapshot(
                self.telemetry.registry, step=event.step, label=policy
            )

    def _final(self, event: CrawlStopped) -> None:
        self._final_written = True
        policy = event.policy or "?"
        elapsed = self.elapsed()
        if self.stream is not None:
            self.stream.write(
                f"[{policy}] stopped by {event.stopped_by}: "
                f"{self._records_text(event.records)}, "
                f"{event.rounds:,} rounds, {event.queries:,} queries, "
                f"{elapsed:.1f}s\n"
            )
        if self.writer is not None and self.telemetry is not None:
            self.writer.write_snapshot(
                self.telemetry.registry, step=None, label=policy
            )

    # ------------------------------------------------------------------
    def _records_text(self, records: int) -> str:
        if self.truth_size:
            return f"records {records:,} ({records / self.truth_size:.1%})"
        return f"records {records:,}"

    def _telemetry_text(self, policy: str) -> list:
        if self.telemetry is None:
            return []
        sink = self.telemetry
        parts = [
            f"new/page {sink.harvest_rate.value(policy=policy):.2f} "
            f"(rolling {sink.harvest_rate_rolling.value(policy=policy):.2f})"
        ]
        aborted = sink.queries_aborted.value(policy=policy)
        if aborted:
            parts.append(f"aborted {aborted:.0f}")
        retries = sink.retries.value(policy=policy)
        if retries:
            parts.append(f"retries {retries:.0f}")
        return parts
