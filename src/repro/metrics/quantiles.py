"""Nearest-rank quantiles — the one percentile definition in the repo.

Both consumers of percentiles (the load-test harness's latency report
and :class:`~repro.metrics.progress.ProgressReporter`'s step-latency
heartbeat) used to carry private copies of the same three lines; they
now share this module so the two can never drift.

The estimator is the classic *nearest-rank* one: ``p_q`` is the
``ceil(q·n)``-th order statistic (1-based), clamped into the sample.
It is exact on the observed sample (no interpolation), monotone in
``q``, and returns an actually-observed value — the right behavior for
latency reporting, where an interpolated "latency" nobody experienced
is a lie.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

__all__ = ["nearest_rank", "percentiles"]


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """The nearest-rank ``q``-quantile of an *ascending-sorted* sample.

    Returns ``0.0`` for an empty sample (reports print zeros rather
    than crash when nothing was measured).
    """
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def percentiles(
    samples: Iterable[float],
    qs: Tuple[float, ...] = (0.50, 0.95, 0.99),
) -> Dict[float, float]:
    """Sort once, read several quantiles: ``{q: value}``."""
    ordered = sorted(samples)
    return {q: nearest_rank(ordered, q) for q in qs}
