"""The metric primitives: counters, gauges, histograms, and a registry.

Prometheus-shaped but dependency-free: a metric has a name, a help
string, a fixed tuple of label names, and one time series per observed
label-value combination.  Three kinds exist:

- :class:`Counter` — a monotone total (``inc`` only);
- :class:`Gauge` — a point-in-time value (``set``);
- :class:`Histogram` — cumulative-bucket observations with a running
  sum and count (Prometheus ``le`` semantics: each bucket counts
  observations at or below its bound, plus an implicit ``+Inf``).

A :class:`MetricsRegistry` owns the metrics, hands out get-or-create
handles, and supports three operations the crawl runtime builds on:

- ``state_dict()`` / ``load_state()`` — JSON-safe snapshots, stored
  inside crawl checkpoints so a resumed crawl reports continuous
  totals;
- ``merge()`` — fold another registry (or snapshot) in: counters and
  histograms add, gauges last-write-win.  The parallel experiment
  runner merges per-worker registries in fixed task order, so the
  merged registry is identical no matter which worker finished first;
- deterministic iteration — metrics in registration order, series
  sorted by label values, so exports are byte-stable for a given
  crawl.

Everything is synchronous and unlocked on purpose: each crawl (and
each pool worker) owns its registry, and cross-process aggregation
happens through ``merge`` after the fact.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ReproError

#: A concrete label assignment, ordered like the metric's label names.
LabelValues = Tuple[str, ...]

#: Default histogram bounds — wide enough for pages-per-query and for
#: sub-second step latencies alike (powers-of-ish-two, open tail).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
)


class MetricError(ReproError):
    """A metric was declared or used inconsistently."""


class Metric:
    """Base: one named family of labelled series."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    # Deterministic iteration: series sorted by label values.
    def _sorted_keys(self, values: Dict[LabelValues, object]) -> List[LabelValues]:
        return sorted(values)


class Counter(Metric):
    """A monotone total, optionally split by labels."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        self.inc_key(self._key(labels), amount)

    def inc_key(self, key: LabelValues, amount: float = 1.0) -> None:
        """Hot-path increment: ``key`` must already match ``label_names``
        position for position (no validation)."""
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def value_key(self, key: LabelValues) -> float:
        return self._values.get(key, 0.0)

    @property
    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def series(self) -> List[Tuple[LabelValues, float]]:
        return [(key, self._values[key]) for key in self._sorted_keys(self._values)]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"values": [[list(k), v] for k, v in self.series()]}

    def load_state(self, state: dict) -> None:
        self._values = {tuple(k): v for k, v in state["values"]}

    def merge_state(self, state: dict) -> None:
        for key, value in state["values"]:
            key = tuple(key)
            self._values[key] = self._values.get(key, 0.0) + value


class Gauge(Metric):
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = float(value)

    def set_key(self, key: LabelValues, value: float) -> None:
        """Hot-path set: ``key`` must already match ``label_names``
        position for position (no validation)."""
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> List[Tuple[LabelValues, float]]:
        return [(key, self._values[key]) for key in self._sorted_keys(self._values)]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"values": [[list(k), v] for k, v in self.series()]}

    def load_state(self, state: dict) -> None:
        self._values = {tuple(k): v for k, v in state["values"]}

    def merge_state(self, state: dict) -> None:
        for key, value in state["values"]:
            self._values[tuple(key)] = value


class _HistogramSeries:
    """One label combination's cumulative buckets + sum + count."""

    __slots__ = ("counts", "total", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative) counts
        self.total = 0
        self.sum = 0.0


class Histogram(Metric):
    """Observation buckets with Prometheus ``le`` (at-or-below) bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        self.observe_key(self._key(labels), value)

    def observe_key(self, key: LabelValues, value: float) -> None:
        """Hot-path observe: ``key`` must already match ``label_names``
        position for position (no validation)."""
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
        series.counts[bisect_left(self.buckets, value)] += 1
        series.total += 1
        series.sum += value

    def count(self, **labels: str) -> int:
        series = self._series.get(self._key(labels))
        return series.total if series else 0

    def sum(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        return series.sum if series else 0.0

    def mean(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        if series is None or series.total == 0:
            return 0.0
        return series.sum / series.total

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the containing bucket, Prometheus
        ``histogram_quantile`` style.  Observations in the open +Inf
        bucket clamp to the highest finite bound (there is no upper
        edge to interpolate towards); an empty series returns 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(self._key(labels))
        if series is None or series.total == 0:
            return 0.0
        rank = q * series.total
        running = 0
        for index, count in enumerate(series.counts):
            if count == 0:
                continue
            if running + count >= rank:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                fraction = (rank - running) / count
                return lower + (upper - lower) * fraction
            running += count
        return self.buckets[-1]

    def cumulative_buckets(
        self, **labels: str
    ) -> List[Tuple[float, int]]:
        """``[(le_bound, cumulative_count), ...]`` ending with +Inf."""
        series = self._series.get(self._key(labels))
        counts = series.counts if series else [0] * (len(self.buckets) + 1)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def series(self) -> List[Tuple[LabelValues, _HistogramSeries]]:
        return [(key, self._series[key]) for key in self._sorted_keys(self._series)]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "series": [
                [list(key), series.counts, series.total, series.sum]
                for key, series in self.series()
            ],
        }

    def load_state(self, state: dict) -> None:
        if tuple(state["buckets"]) != self.buckets:
            raise MetricError(
                f"histogram {self.name} bucket mismatch on load"
            )
        self._series = {}
        for key, counts, total, total_sum in state["series"]:
            series = _HistogramSeries(len(self.buckets) + 1)
            series.counts = list(counts)
            series.total = total
            series.sum = total_sum
            self._series[tuple(key)] = series

    def merge_state(self, state: dict) -> None:
        if tuple(state["buckets"]) != self.buckets:
            raise MetricError(
                f"histogram {self.name} bucket mismatch on merge"
            )
        for key, counts, total, total_sum in state["series"]:
            key = tuple(key)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            for index, count in enumerate(counts):
                series.counts[index] += count
            series.total += total
            series.sum += total_sum


class MetricsRegistry:
    """Get-or-create ownership of metrics, in registration order."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}  # insertion-ordered

    # ------------------------------------------------------------------
    # Declaration (idempotent: same name returns the same handle)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            self._check(existing, Histogram, name, labels)
            if tuple(float(b) for b in buckets) != existing.buckets:  # type: ignore[union-attr]
                raise MetricError(
                    f"histogram {name} re-declared with different buckets"
                )
            return existing  # type: ignore[return-value]
        metric = Histogram(name, help, labels, buckets)
        self._metrics[name] = metric
        return metric

    def _declare(self, cls, name: str, help: str, labels: Sequence[str]):
        existing = self._metrics.get(name)
        if existing is not None:
            self._check(existing, cls, name, labels)
            return existing
        metric = cls(name, help, labels)
        self._metrics[name] = metric
        return metric

    @staticmethod
    def _check(existing: Metric, cls, name: str, labels: Sequence[str]) -> None:
        if type(existing) is not cls:
            raise MetricError(
                f"{name} already registered as a {existing.kind}"
            )
        if existing.label_names != tuple(labels):
            raise MetricError(
                f"{name} re-declared with labels {tuple(labels)}, "
                f"was {existing.label_names}"
            )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of every metric (checkpoint payload)."""
        return {
            "metrics": [
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "labels": list(metric.label_names),
                    "state": metric.state_dict(),
                }
                for metric in self
            ]
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot, declaring any missing metrics."""
        for payload in state["metrics"]:
            metric = self._restore_handle(payload)
            metric.load_state(payload["state"])

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its snapshot) into this one.

        Counters and histograms add; gauges take the incoming value.
        Callers that need determinism merge in a fixed order (the
        parallel runner merges per-worker registries in task order).
        """
        state = other.state_dict() if isinstance(other, MetricsRegistry) else other
        for payload in state["metrics"]:
            metric = self._restore_handle(payload)
            metric.merge_state(payload["state"])

    def _restore_handle(self, payload: dict) -> Metric:
        name = payload["name"]
        kind = payload["kind"]
        labels = tuple(payload["labels"])
        if kind == "counter":
            return self.counter(name, payload.get("help", ""), labels)
        if kind == "gauge":
            return self.gauge(name, payload.get("help", ""), labels)
        if kind == "histogram":
            return self.histogram(
                name,
                payload.get("help", ""),
                labels,
                payload["state"]["buckets"],
            )
        raise MetricError(f"unknown metric kind {kind!r} for {name}")
