"""The bus-to-registry bridge: crawl events in, telemetry out.

:class:`TelemetrySink` is an :class:`~repro.runtime.events.EventSink`
that subscribes to the crawl's event bus and maintains a
:class:`~repro.metrics.registry.MetricsRegistry` — the live view of
everything the paper measures after the fact:

- **cost** — queries issued/completed/rejected/failed, pages fetched
  (communication rounds paid), retry attempts and charged backoff
  rounds, rounds saved by query abortion;
- **yield** — new records vs duplicates, cumulative harvest rate
  ``HR`` (new records per page), a rolling harvest rate over the last
  ``rolling_window`` queries (the live signal for the paper's
  "low marginal benefit" regime), and live coverage when the true
  source size is known (controlled experiments report it);
- **latency** — wall-clock seconds per crawl step and a pages-per-query
  histogram.

Metric updates are observational: the sink never touches crawl state
or RNG streams, so an instrumented crawl remains bit-identical to a
bare one.  Wall-clock metrics are inherently machine-dependent; all
event-derived counters are deterministic for a given crawl, which is
what makes per-worker registries mergeable into the same totals the
sequential run would report.

The server's result-ordering cache is not on the bus (cache activity
is server-side, not wire traffic), so :meth:`TelemetrySink.sample_server`
pulls those gauges — cache hits/misses/hit ratio and the round counter
— from a server's communication log; the runtime calls it at
checkpoints, heartbeats, and crawl stop.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.metrics.registry import MetricsRegistry
from repro.runtime.events import (
    CheckpointWritten,
    CrawlEvent,
    CrawlStopped,
    EventSink,
    ExperimentSuiteCompleted,
    ExperimentTaskCompleted,
    PageFetched,
    QueryAborted,
    QueryFailed,
    QueryIssued,
    QueryRejected,
    RecordsHarvested,
    RetryAttempted,
)

#: Buckets for pages-per-query (page counts, not seconds).
PAGE_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0)

#: Buckets for per-step wall time in seconds.
STEP_SECONDS_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


def _policy_label(event: CrawlEvent) -> str:
    return event.policy or "?"


class TelemetrySink(EventSink):
    """Feed a metrics registry from the crawl event bus.

    Parameters
    ----------
    registry:
        The registry to populate (a fresh one by default).  Sharing one
        registry across sinks is fine — metric handles are get-or-create.
    truth_size:
        True source size, when known (controlled experiments); enables
        the ``crawl_coverage`` gauge.
    rolling_window:
        Number of trailing completed queries the rolling harvest rate
        averages over.
    track_wall_time:
        Record per-step wall-clock seconds (on by default; disable for
        byte-stable registry snapshots across machines).
    clock:
        Injectable monotonic clock, for tests.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        truth_size: Optional[int] = None,
        rolling_window: int = 50,
        track_wall_time: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if rolling_window < 1:
            raise ValueError(f"rolling_window must be >= 1, got {rolling_window}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.truth_size = truth_size
        self.rolling_window = rolling_window
        self.track_wall_time = track_wall_time
        self._clock = clock
        self._last_step_at: Optional[float] = None
        #: (new_records, pages) of the trailing completed queries, with
        #: running totals so each step avoids re-summing the window.
        self._window: Deque[Tuple[int, int]] = deque(maxlen=rolling_window)
        self._window_new = 0
        self._window_pages = 0

        declare = self.registry
        self.queries_issued = declare.counter(
            "crawl_queries_issued_total",
            "Queries put on the wire (first page about to be paid)",
            labels=("policy",),
        )
        self.queries_completed = declare.counter(
            "crawl_queries_completed_total",
            "Query-harvest-decompose steps completed",
            labels=("policy",),
        )
        self.queries_rejected = declare.counter(
            "crawl_queries_rejected_total",
            "Queries the interface refused (no round charged)",
            labels=("policy",),
        )
        self.queries_aborted = declare.counter(
            "crawl_queries_aborted_total",
            "Queries cut short by the abortion policy",
            labels=("policy",),
        )
        self.queries_failed = declare.counter(
            "crawl_queries_failed_total",
            "Queries that exhausted their retry budget",
            labels=("policy",),
        )
        self.pages_fetched = declare.counter(
            "crawl_pages_fetched_total",
            "Result pages fetched (communication rounds paid for data)",
            labels=("policy",),
        )
        self.records_new = declare.counter(
            "crawl_records_new_total",
            "Records harvested into DB_local for the first time",
            labels=("policy",),
        )
        self.records_duplicate = declare.counter(
            "crawl_records_duplicate_total",
            "Returned records already present in DB_local",
            labels=("policy",),
        )
        self.retries = declare.counter(
            "crawl_retries_total",
            "Transient failures absorbed by the retry loop",
            labels=("policy",),
        )
        self.backoff_rounds = declare.counter(
            "crawl_backoff_rounds_total",
            "Communication rounds charged while backing off",
            labels=("policy",),
        )
        self.rounds_saved = declare.counter(
            "crawl_rounds_saved_total",
            "Accessible pages the abortion policy declined to pay",
            labels=("policy",),
        )
        self.checkpoints = declare.counter(
            "crawl_checkpoints_total",
            "Durable checkpoints written",
            labels=("policy", "snapshot"),
        )
        self.records_gauge = declare.gauge(
            "crawl_records", "Distinct records in DB_local"
        )
        self.rounds_gauge = declare.gauge(
            "crawl_rounds", "Communication rounds consumed"
        )
        self.steps_gauge = declare.gauge(
            "crawl_steps", "Completed crawl steps"
        )
        self.coverage = declare.gauge(
            "crawl_coverage", "Live fraction of the true source harvested"
        )
        self.harvest_rate = declare.gauge(
            "crawl_harvest_rate",
            "Cumulative new records per page fetched",
            labels=("policy",),
        )
        self.harvest_rate_rolling = declare.gauge(
            "crawl_harvest_rate_rolling",
            "New records per page over the trailing query window",
            labels=("policy",),
        )
        self.elapsed_gauge = declare.gauge(
            "crawl_elapsed_seconds",
            "Cumulative crawl wall-clock seconds (carries across resume)",
        )
        self.cache_hits = declare.gauge(
            "crawl_order_cache_hits", "Server result-ordering LRU cache hits"
        )
        self.cache_misses = declare.gauge(
            "crawl_order_cache_misses", "Server result-ordering LRU cache misses"
        )
        self.cache_hit_ratio = declare.gauge(
            "crawl_order_cache_hit_ratio",
            "Server result-ordering LRU hit fraction",
        )
        self.pages_per_query = declare.histogram(
            "crawl_pages_per_query",
            "Pages paid per completed query",
            labels=("policy",),
            buckets=PAGE_BUCKETS,
        )
        self.step_seconds = declare.histogram(
            "crawl_step_seconds",
            "Wall-clock seconds per completed crawl step",
            labels=("policy",),
            buckets=STEP_SECONDS_BUCKETS,
        )
        self.stops = declare.counter(
            "crawl_stopped_total",
            "Crawl loop exits, by stopping criterion",
            labels=("policy", "stopped_by"),
        )
        self.frontier_rescored = declare.counter(
            "frontier_rescored_total",
            "Frontier entries rescored by incremental dirty-set flushes",
            labels=("policy",),
        )
        self.frontier_dirty = declare.counter(
            "frontier_dirty_total",
            "Frontier entries marked dirty by query decompositions",
            labels=("policy",),
        )
        self.frontier_pending = declare.gauge(
            "frontier_pending", "Candidate values awaiting issuance"
        )
        self.grid_shm_bytes = declare.gauge(
            "grid_shm_bytes",
            "Bytes of shared-memory table payloads backing experiment grids",
        )
        self.task_seconds = declare.counter(
            "experiment_task_seconds_total",
            "Summed per-task crawl seconds of experiment grids",
            labels=("label",),
        )
        self.tasks_completed = declare.counter(
            "experiment_tasks_total",
            "Experiment grid tasks completed",
            labels=("label",),
        )
        self.suite_wall_seconds = declare.counter(
            "experiment_suite_wall_seconds_total",
            "Wall-clock seconds of completed experiment suites",
        )

    # ------------------------------------------------------------------
    # The hot path uses the registry's ``*_key`` fast paths: a crawl
    # emits several events per step, and the label tuple is always the
    # same single-policy key, so validation is done once here instead of
    # per increment.
    def handle(self, event: CrawlEvent) -> None:
        policy = _policy_label(event)
        key = (policy,)
        if isinstance(event, PageFetched):
            self.pages_fetched.inc_key(key)
            self.records_new.inc_key(key, event.new_records)
            self.records_duplicate.inc_key(
                key, max(event.records - event.new_records, 0)
            )
        elif isinstance(event, RecordsHarvested):
            self._on_step(event, key)
        elif isinstance(event, QueryIssued):
            self.queries_issued.inc_key(key)
        elif isinstance(event, QueryRejected):
            self.queries_rejected.inc_key(key)
        elif isinstance(event, QueryAborted):
            self.queries_aborted.inc_key(key)
            self.rounds_saved.inc_key(key, event.pages_saved)
        elif isinstance(event, QueryFailed):
            self.queries_failed.inc_key(key)
        elif isinstance(event, RetryAttempted):
            self.retries.inc_key(key)
            self.backoff_rounds.inc_key(key, event.backoff_rounds)
        elif isinstance(event, CheckpointWritten):
            self.checkpoints.inc(
                policy=policy, snapshot="full" if event.snapshot else "marker"
            )
        elif isinstance(event, CrawlStopped):
            self.stops.inc(policy=policy, stopped_by=event.stopped_by)
            self.records_gauge.set(event.records)
            self.rounds_gauge.set(event.rounds)
        elif isinstance(event, ExperimentTaskCompleted):
            self.tasks_completed.inc(label=event.label or "?")
            self.task_seconds.inc(event.seconds, label=event.label or "?")
        elif isinstance(event, ExperimentSuiteCompleted):
            self.suite_wall_seconds.inc(event.wall_seconds)

    def _on_step(self, event: RecordsHarvested, key: Tuple[str, ...]) -> None:
        self.queries_completed.inc_key(key)
        self.steps_gauge.set_key((), event.step)
        self.records_gauge.set_key((), event.records_total)
        self.rounds_gauge.set_key((), event.rounds)
        if self.truth_size:
            self.coverage.set_key((), event.records_total / self.truth_size)
        self.pages_per_query.observe_key(key, event.pages_fetched)
        window = self._window
        if len(window) == window.maxlen:
            evicted_new, evicted_pages = window[0]
            self._window_new -= evicted_new
            self._window_pages -= evicted_pages
        window.append((event.new_records, event.pages_fetched))
        self._window_new += event.new_records
        self._window_pages += event.pages_fetched
        pages = self.pages_fetched.value_key(key)
        if pages:
            self.harvest_rate.set_key(
                key, self.records_new.value_key(key) / pages
            )
        if self._window_pages:
            self.harvest_rate_rolling.set_key(
                key, self._window_new / self._window_pages
            )
        if self.track_wall_time:
            now = self._clock()
            if self._last_step_at is not None:
                self.step_seconds.observe_key(key, now - self._last_step_at)
            self._last_step_at = now

    # ------------------------------------------------------------------
    def sample_server(self, server) -> None:
        """Pull server-side gauges (cache economics, round counter).

        ``server`` is anything exposing a ``log`` with ``cache_hits`` /
        ``cache_misses`` and a ``rounds`` property —
        :class:`~repro.server.webdb.SimulatedWebDatabase` or a wrapper.
        """
        log = getattr(server, "log", None)
        if log is None:
            return
        hits = getattr(log, "cache_hits", 0)
        misses = getattr(log, "cache_misses", 0)
        self.cache_hits.set(hits)
        self.cache_misses.set(misses)
        if hits + misses:
            self.cache_hit_ratio.set(hits / (hits + misses))
        self.rounds_gauge.set(server.rounds)

    def sample_selector(self, selector, policy: Optional[str] = None) -> None:
        """Pull selector-side frontier counters (incremental rescoring).

        ``selector`` is anything exposing
        :meth:`~repro.policies.base.QuerySelector.frontier_stats`; the
        call is a no-op for selectors without an incremental frontier.
        The stats are lifetime totals for one selector, and a selector
        serves exactly one crawl, so folding them in once at crawl end
        (next to :meth:`sample_server`) keeps the counters cumulative
        and mergeable across grid workers.
        """
        stats_fn = getattr(selector, "frontier_stats", None)
        stats = stats_fn() if callable(stats_fn) else None
        if not stats:
            return
        key = (policy or getattr(selector, "name", None) or "?",)
        self.frontier_rescored.inc_key(key, stats.get("rescored_total", 0))
        self.frontier_dirty.inc_key(key, stats.get("dirty_total", 0))
        self.frontier_pending.set_key((), stats.get("pending", 0))
