"""The network lane: serve simulated sources over HTTP and crawl them.

The paper's live experiment crawls a real web service (Amazon's XML
API) over the wire; this package gives the reproduction the same real
network boundary.  Three layers:

- :mod:`repro.net.server` — a stdlib-only asyncio HTTP front end that
  mounts :class:`~repro.server.webdb.SimulatedWebDatabase` instances at
  ``/sources/<name>/query``, serving the existing XML envelope plus a
  JSON content type, with paging, per-client rate limits,
  ``Retry-After`` politeness headers, and a Prometheus ``/metrics``
  endpoint (a threaded :mod:`http.server` fallback shares the exact
  same request handler);
- :mod:`repro.net.client` — :class:`RemoteWebDatabase`, the crawler's
  HTTP client: it implements the same surface the crawler engine uses
  on the in-process source (``interface``/``page_size``/``submit``/
  ``rounds``), with connection reuse, bounded-concurrency page
  pipelining (page *n+1* is fetched while page *n* is being
  extracted), retry/backoff honoring ``Retry-After``, and per-request
  latency recorded into :mod:`repro.metrics` histograms — so
  :class:`~repro.runtime.crawler.RuntimeCrawler`, the event bus, trace
  spans, and checkpoints all work unchanged over the network;
- :mod:`repro.net.loadtest` — an async load-test harness driving
  hundreds-to-thousands of concurrent crawl sessions against one
  service process, reporting throughput and p50/p95/p99 latency;
- :mod:`repro.net.cluster` — :class:`SourceCluster`, the multi-core
  lane: N ``SO_REUSEPORT`` worker processes (or a threaded multi-loop
  fallback) serving one port from shared-memory tables, with a control
  plane that merges per-worker accounting deterministically;
- :mod:`repro.net.cache` — the rendered-page LRU behind the service's
  ``ETag``/``If-None-Match`` revalidation.

The in-process path remains the deterministic fast lane; an end-to-end
test pins that a greedy-link crawl over HTTP discovers the
byte-identical record set and communication-round count.
"""

from repro.net.cache import PageRenderCache
from repro.net.client import RemoteSourceError, RemoteWebDatabase
from repro.net.cluster import ClusterSnapshot, SourceCluster
from repro.net.loadtest import LoadTestReport, run_loadtest, write_bench
from repro.net.protocol import (
    SourceDescriptor,
    decode_query_params,
    encode_query_params,
    parse_page_json,
    render_page_json,
)
from repro.net.server import AsyncSourceServer, ServerThread, SourceService

__all__ = [
    "AsyncSourceServer",
    "ClusterSnapshot",
    "LoadTestReport",
    "PageRenderCache",
    "RemoteSourceError",
    "RemoteWebDatabase",
    "ServerThread",
    "SourceCluster",
    "SourceDescriptor",
    "SourceService",
    "decode_query_params",
    "encode_query_params",
    "parse_page_json",
    "render_page_json",
    "run_loadtest",
    "write_bench",
]
