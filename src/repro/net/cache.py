"""Rendered-page cache for the HTTP front end.

A result page is a pure function of ``(source, query, page_number,
format)``: the simulated source is immutable, the limit policy's
ordering is deterministic, and both wire envelopes (XML and JSON) are
deterministic serializations.  The service therefore caches the
*rendered byte envelope* — not the page object — so a repeated request
costs a dict lookup plus one round-charge instead of match + order +
project + serialize.

Semantics the cache must preserve (and tests pin):

- **Byte identity.**  A cache hit returns exactly the bytes a fresh
  render would produce; XML and JSON envelopes are compared
  byte-for-byte against uncached renders across the paper datasets.
- **Round accounting.**  A hit never touches the source's submit path,
  so the caller re-charges the communication round itself with the
  entry's recorded result count (the entry remembers how many records
  the page carried — the same count ``submit`` would have logged).
  Out-of-range pages are cached too (they are equally pure), and their
  hits charge a zero-record round, exactly like the
  ``PaginationError`` path.
- **Validators.**  Every 200 entry carries a strong ``ETag`` (content
  hash of the body), enabling ``If-None-Match`` → 304 revalidation in
  :class:`~repro.net.server.SourceService` and
  :class:`~repro.net.client.RemoteWebDatabase`.

The cache is a bounded LRU guarded by its own lock (never a source
lock), with hit/miss/eviction counters in :mod:`repro.metrics`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.metrics import MetricsRegistry

#: Default bound on cached rendered pages (entries, not bytes).
DEFAULT_PAGE_CACHE_SIZE = 4096


def make_etag(body: bytes) -> str:
    """A strong entity tag for a rendered envelope (content hash)."""
    return f'"{hashlib.md5(body).hexdigest()}"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """RFC 9110 ``If-None-Match`` evaluation against one strong tag.

    Supports ``*``, comma-separated candidate lists, and weak
    (``W/``-prefixed) candidates — weak comparison is fine for 304s.
    """
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


@dataclass(frozen=True)
class CachedPage:
    """One rendered response: status line to body, ready for the wire."""

    status: int
    content_type: str
    body: bytes
    etag: str
    #: Records the page carried (what ``submit`` logged); 0 for cached
    #: out-of-range errors, whose round also charged zero records.
    records: int

    @classmethod
    def build(
        cls, status: int, content_type: str, body: bytes, records: int
    ) -> "CachedPage":
        return cls(status, content_type, body, make_etag(body), records)


class PageRenderCache:
    """Bounded LRU of :class:`CachedPage` entries.

    Thread-safe under its own lock so the threaded transport fallback
    and the cluster's multi-loop lane can share one instance; the lock
    is held only for the dict operation, never while rendering.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_PAGE_CACHE_SIZE,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, CachedPage]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if registry is not None:
            self._lookups = registry.counter(
                "net_server_page_cache_total",
                "Rendered-page cache lookups, by result.",
                labels=("result",),
            )
            self._entries_gauge = registry.gauge(
                "net_server_page_cache_entries",
                "Rendered pages currently cached.",
            )
        else:
            self._lookups = None
            self._entries_gauge = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[CachedPage]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if self._lookups is not None:
            self._lookups.inc_key(("hit",) if entry is not None else ("miss",))
        return entry

    def put(self, key: Hashable, entry: CachedPage) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            size = len(self._entries)
        if self._entries_gauge is not None:
            self._entries_gauge.set_key((), size)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        if self._entries_gauge is not None:
            self._entries_gauge.set_key((), 0)

    def stats(self) -> Tuple[int, int, int, int]:
        """``(hits, misses, evictions, entries)`` right now."""
        with self._lock:
            return self.hits, self.misses, self.evictions, len(self._entries)
