"""The crawler's HTTP client: a ``WebDatabase`` over the wire.

:class:`RemoteWebDatabase` exposes the exact surface the crawler engine
reads off :class:`~repro.server.webdb.SimulatedWebDatabase` —
``interface``, ``page_size``, ``submit()``, ``rounds``, ``log``,
``truth_size()`` — so :class:`~repro.crawler.engine.CrawlerEngine`,
:class:`~repro.runtime.crawler.RuntimeCrawler`, the event bus, trace
spans, and checkpoints all work unchanged when the source lives on the
other side of a socket.

Design points:

- **Connection reuse.**  A small pool of keep-alive HTTP/1.1
  connections, owned by a private event loop on a background thread;
  the crawler's synchronous ``submit()`` bridges in with
  ``run_coroutine_threadsafe``.
- **Page pipelining.**  Result extraction and page fetching overlap:
  when page *n* of a query is delivered, the fetches of pages
  *n+1 … n+depth* are started immediately, so by the time the prober
  has extracted page *n* the next page is usually already on the way
  (or arrived).  Speculative pages the crawl never consumes (the query
  was aborted, or a stop criterion fired) are counted as
  ``prefetch_wasted`` and — deliberately — **not** charged to the
  client's communication log: the log mirrors the paper's cost model
  of pages *consumed*, which keeps a remote crawl's round count
  byte-identical to the in-process lane.  The server's own counter
  does include speculative fetches; the delta is the price of
  pipelining and is observable at ``/metrics``.
- **Revalidation.**  Every 200 result page carries a strong ``ETag``;
  the client remembers the last ``etag_cache_size`` (target → etag,
  body) pairs and revalidates repeats with ``If-None-Match``.  A 304
  answer reuses the cached body byte-for-byte — and still costs a
  communication round, exactly like a full response (the round is
  charged on *consumption* in ``submit()``, which cannot tell a 304
  from a 200 and must not).
- **Politeness.**  429/503 responses are honored by sleeping out the
  server's ``Retry-After`` (the JSON body's float, falling back to the
  integer header) before retrying; network failures back off
  exponentially.  Retries exhausted raise
  :class:`~repro.server.flaky.PermanentServerFailure`, which the
  prober already turns into a failed-query outcome.
- **Telemetry.**  Per-request latency lands in a
  :mod:`repro.metrics` histogram; the per-round wall time of each
  *consumed* page is recorded on the communication log
  (``record_wall_times``), giving the end-of-run summary per-query
  latency attribution.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlencode, urlsplit

from repro.core.errors import PaginationError, ReproError, UnsupportedQueryError
from repro.core.query import AnyQuery
from repro.core.values import AttributeValue
from repro.metrics import MetricsRegistry
from repro.net.protocol import (
    FORMATS,
    SourceDescriptor,
    parse_error,
    parse_page_json,
    encode_query_params,
)
from repro.net.server import LATENCY_BUCKETS
from repro.server.flaky import PermanentServerFailure, TransientServerError
from repro.server.network import CommunicationLog
from repro.server.pagination import ResultPage
from repro.server.service import parse_page


class RemoteSourceError(ReproError):
    """The service answered with something the client cannot use."""


class _Connection:
    """One keep-alive HTTP connection (reader/writer pair)."""

    __slots__ = ("reader", "writer", "requests")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.requests = 0


class _Pool:
    """A bounded pool of keep-alive connections to one host."""

    def __init__(self, host: str, port: int, limit: int) -> None:
        self.host = host
        self.port = port
        self._free: List[_Connection] = []
        self._semaphore = asyncio.Semaphore(limit)
        self.opened = 0

    async def acquire(self) -> _Connection:
        await self._semaphore.acquire()
        if self._free:
            return self._free.pop()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.opened += 1
        return _Connection(reader, writer)

    def release(self, connection: _Connection, reusable: bool) -> None:
        if reusable:
            self._free.append(connection)
        else:
            try:
                connection.writer.close()
            except RuntimeError:
                # A prefetch abandoned at shutdown may be collected
                # after the client loop closed; the socket dies with
                # the loop, there is nothing left to close.
                pass
        self._semaphore.release()

    async def close(self) -> None:
        for connection in self._free:
            connection.writer.close()
            try:
                await connection.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._free.clear()


class RemoteWebDatabase:
    """A web database reached over HTTP (see module docstring).

    Parameters
    ----------
    base_url:
        Service root, e.g. ``http://127.0.0.1:8080``.
    source:
        Mounted source name; defaults to the only mounted source (an
        error names the candidates when there are several).
    format:
        Wire format for result pages: ``"json"`` (default; cheapest to
        parse) or ``"xml"`` (the paper-faithful Amazon-style envelope).
    pipeline_depth:
        How many pages beyond the one being extracted may be in flight
        per query (0 disables pipelining).  The connection pool holds
        ``pipeline_depth + 1`` connections.
    max_retries:
        Transient-failure budget per page request (429/503, connection
        errors); exhausted raises
        :class:`~repro.server.flaky.PermanentServerFailure`.
    registry:
        Optional :class:`~repro.metrics.MetricsRegistry` receiving
        request-latency histograms and transport counters.
    client_id:
        Value of the ``X-Client-Id`` header, which the service's rate
        limiter keys on; defaults to a per-instance token.
    etag_cache_size:
        How many (target → ETag, body) pairs to remember for
        ``If-None-Match`` revalidation (0 disables conditional
        requests).
    trace_context:
        Optional :class:`~repro.obs.context.CrawlTraceContext` attached
        to the crawl's event bus.  When present, every page fetch
        carries an ``X-Repro-Trace`` header naming the client span the
        request belongs to (plus the attempt number), so the server can
        open child spans that ``repro trace stitch`` later joins back
        under the fetch.  The header is observability-only: responses
        are byte-identical with and without it.
    """

    _instances = 0

    def __init__(
        self,
        base_url: str,
        source: Optional[str] = None,
        *,
        format: str = "json",
        pipeline_depth: int = 2,
        max_retries: int = 4,
        timeout: float = 30.0,
        retry_after_cap: float = 30.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        registry: Optional[MetricsRegistry] = None,
        client_id: Optional[str] = None,
        etag_cache_size: int = 256,
        trace_context=None,
    ) -> None:
        if format not in FORMATS:
            raise ValueError(f"format must be one of {FORMATS}, got {format!r}")
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"base_url must be http://host[:port], got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.format = format
        self.pipeline_depth = max(0, pipeline_depth)
        self.max_retries = max_retries
        self.timeout = timeout
        self.retry_after_cap = retry_after_cap
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        RemoteWebDatabase._instances += 1
        self.client_id = client_id or f"repro-client-{RemoteWebDatabase._instances}"
        #: Read only on the crawler thread (at fetch-scheduling time),
        #: which is the same thread that feeds the event bus — so the
        #: context's span bookkeeping needs no lock.
        self._trace_context = trace_context
        self._trace_id = getattr(trace_context, "trace_id", None)
        self.log = CommunicationLog(
            keep_requests=False, record_wall_times=True
        )
        self.registry = registry
        if registry is not None:
            self._latency = registry.histogram(
                "net_client_request_seconds",
                "Client-observed HTTP exchange latency.",
                labels=("route",),
                buckets=LATENCY_BUCKETS,
            )
            self._responses = registry.counter(
                "net_client_responses_total",
                "HTTP responses received, by status.",
                labels=("status",),
            )
            self._retries = registry.counter(
                "net_client_retries_total",
                "Retried requests, by reason.",
                labels=("reason",),
            )
            self._prefetch = registry.counter(
                "net_client_prefetch_total",
                "Pipelined page prefetches, by fate.",
                labels=("fate",),
            )
            self._revalidated = registry.counter(
                "net_client_etag_total",
                "Conditional page requests, by outcome.",
                labels=("outcome",),
            )
        else:
            self._latency = self._responses = None
            self._retries = self._prefetch = None
            self._revalidated = None
        #: target → (etag, body); touched only on the client loop
        #: thread, so no lock is needed.
        self.etag_cache_size = max(0, etag_cache_size)
        self._etags: "OrderedDict[str, Tuple[str, bytes]]" = OrderedDict()
        # Private event loop on a daemon thread; all sockets live there.
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-net-client", daemon=True
        )
        self._thread.start()
        self._pool = self._call(
            self._make_pool(split.hostname, split.port or 80)
        )
        #: (query, page_number) → concurrent.futures.Future for pages
        #: speculatively requested but not yet consumed.
        self._prefetched: Dict[Tuple[AnyQuery, int], object] = {}
        self._closed = False
        self._truth_size: Optional[int] = None
        # Fetch the descriptor eagerly: submit() needs the interface
        # for local validation and the engine reads page_size at
        # construction time.
        descriptor = self._fetch_descriptor(source)
        self.descriptor = descriptor
        self.name = descriptor.name
        self.interface = descriptor.build_interface()
        self.page_size = descriptor.page_size
        self.report_total = descriptor.report_total

    # ------------------------------------------------------------------
    # Loop plumbing
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _make_pool(self, host: str, port: int) -> _Pool:
        return _Pool(host, port, self.pipeline_depth + 1)

    def _call(self, coroutine, timeout: Optional[float] = None):
        """Run a coroutine on the client loop and wait for its result."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=timeout)

    # ------------------------------------------------------------------
    # HTTP core (runs on the client loop)
    # ------------------------------------------------------------------
    async def _exchange(
        self,
        target: str,
        extra_headers: Sequence[Tuple[str, str]] = (),
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response on a pooled connection."""
        connection = await self._pool.acquire()
        fresh = connection.requests == 0
        try:
            lines = [
                f"GET {target} HTTP/1.1",
                f"Host: {self._pool.host}:{self._pool.port}",
                f"X-Client-Id: {self.client_id}",
                "Connection: keep-alive",
            ]
            for name, value in extra_headers:
                lines.append(f"{name}: {value}")
            request = "\r\n".join(lines) + "\r\n\r\n"
            connection.writer.write(request.encode("latin-1"))
            await connection.writer.drain()
            status_line = await connection.reader.readline()
            if not status_line:
                raise ConnectionResetError("server closed the connection")
            parts = status_line.decode("latin-1").split(None, 2)
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await connection.reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            body = (
                await connection.reader.readexactly(length) if length else b""
            )
            connection.requests += 1
            reusable = headers.get("connection", "keep-alive").lower() != "close"
            self._pool.release(connection, reusable)
            return status, headers, body
        except BaseException:
            self._pool.release(connection, reusable=False)
            if fresh:
                raise
            # A dead reused connection is the normal keep-alive race;
            # surface it as retryable.
            raise ConnectionResetError("stale pooled connection") from None

    async def _fetch(
        self,
        target: str,
        route: str,
        extra_headers: Sequence[Tuple[str, str]] = (),
        trace_parent: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """``_exchange`` with retry/backoff and Retry-After politeness."""
        attempts = self.max_retries + 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            headers_out = list(extra_headers)
            if trace_parent is not None:
                # Rebuilt per attempt: the attempt number keeps retried
                # requests distinct server-side (roots …/srv, …/srv1).
                headers_out.append(
                    (
                        "X-Repro-Trace",
                        f"{self._trace_id};{trace_parent};{attempt}",
                    )
                )
            started = time.perf_counter()
            try:
                status, headers, body = await asyncio.wait_for(
                    self._exchange(target, headers_out),
                    timeout=self.timeout,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError, asyncio.IncompleteReadError) as error:
                last_error = error
                if self._retries is not None:
                    self._retries.inc_key(("network",))
                if attempt + 1 < attempts:
                    delay = min(
                        self.backoff_base * (2.0 ** attempt), self.backoff_cap
                    )
                    await asyncio.sleep(delay)
                continue
            if self._latency is not None:
                self._latency.observe_key(
                    (route,), time.perf_counter() - started
                )
                self._responses.inc_key((str(status),))
            if status in (429, 503):
                last_error = TransientServerError(
                    f"{status} from service for {target}"
                )
                if self._retries is not None:
                    self._retries.inc_key(("rate-limited",))
                if attempt + 1 < attempts:
                    await asyncio.sleep(self._retry_after(headers, body))
                continue
            return status, headers, body
        raise PermanentServerFailure(
            f"{attempts} attempts failed for {target}"
        ) from last_error

    def _retry_after(self, headers: Dict[str, str], body: bytes) -> float:
        """The politeness delay: the body's float, else the header."""
        delay: Optional[float] = None
        try:
            import json as _json

            payload = _json.loads(body.decode("utf-8"))
            if isinstance(payload, dict) and "retryAfter" in payload:
                delay = float(payload["retryAfter"])
        except (ValueError, UnicodeDecodeError):
            delay = None
        if delay is None:
            try:
                delay = float(headers.get("retry-after", "1"))
            except ValueError:
                delay = 1.0
        return max(0.0, min(delay, self.retry_after_cap))

    # ------------------------------------------------------------------
    # Descriptor / truth routes
    # ------------------------------------------------------------------
    def _get_json(self, path: str, route: str) -> dict:
        import json as _json

        status, _headers, body = self._call(self._fetch(path, route))
        if status != 200:
            code, message = parse_error(body)
            raise RemoteSourceError(f"GET {path} → {status} {code}: {message}")
        try:
            return _json.loads(body.decode("utf-8"))
        except ValueError as error:
            raise RemoteSourceError(
                f"GET {path}: invalid JSON body ({error})"
            ) from error

    def _fetch_descriptor(self, source: Optional[str]) -> SourceDescriptor:
        if source is None:
            listing = self._get_json("/sources", "sources")
            names = [item["name"] for item in listing.get("sources", [])]
            if len(names) != 1:
                raise RemoteSourceError(
                    f"service mounts {len(names)} sources {names}; "
                    f"pass source=<name>"
                )
            source = names[0]
        payload = self._get_json(f"/sources/{source}/meta", "meta")
        return SourceDescriptor.from_json(payload)

    def truth_size(self) -> int:
        """True record count, fetched once from the truth route."""
        if self._truth_size is None:
            payload = self._get_json(
                f"/sources/{self.name}/truth/size", "truth"
            )
            self._truth_size = int(payload["size"])
        return self._truth_size

    def truth_coverage(self, record_ids) -> float:
        """Fraction of the true database covered by ``record_ids``.

        Every id the crawler holds came from the server, so membership
        is implied; this is ``len(ids) / truth_size`` without another
        round trip.
        """
        size = self.truth_size()
        if size == 0:
            return 0.0
        return len(set(record_ids)) / size

    def truth_seeds(
        self, count: int = 1, seed: int = 0, min_frequency: int = 1
    ) -> List[AttributeValue]:
        """Seed values drawn server-side, mirroring the in-process CLI."""
        payload = self._get_json(
            f"/sources/{self.name}/truth/seeds?"
            + urlencode(
                {"n": count, "seed": seed, "min_frequency": min_frequency}
            ),
            "truth",
        )
        return [AttributeValue(a, v) for a, v in payload["values"]]

    def truth_sample(
        self, count: int, seed: int = 0
    ) -> List[AttributeValue]:
        """A shuffled sample of queriable values (load-test driver)."""
        payload = self._get_json(
            f"/sources/{self.name}/truth/sample?"
            + urlencode({"n": count, "seed": seed}),
            "truth",
        )
        return [AttributeValue(a, v) for a, v in payload["values"]]

    # ------------------------------------------------------------------
    # The crawler-facing API
    # ------------------------------------------------------------------
    def submit(self, query: AnyQuery, page_number: int = 1) -> ResultPage:
        """Answer one page request over the wire; one consumed round.

        Raises exactly what the in-process source raises —
        :class:`UnsupportedQueryError` without costing a round (checked
        locally against the reconstructed interface before anything is
        sent), :class:`PaginationError` with the round charged, and
        :class:`PermanentServerFailure` when retries are exhausted.
        """
        if self._closed:
            raise RemoteSourceError("client is closed")
        self.interface.validate(query)
        started = time.perf_counter()
        key = (query, page_number)
        future = self._prefetched.pop(key, None)
        if future is not None:
            if self._prefetch is not None:
                self._prefetch.inc_key(("hit",))
        else:
            self._discard_prefetches()
            future = self._schedule_fetch(query, page_number)
        try:
            page = future.result(timeout=self.timeout * (self.max_retries + 2))
        except PaginationError:
            # The in-process lane charges the round before raising (the
            # crawler had to ask to find out); mirror it exactly.
            self.log.record(
                query,
                page_number,
                0,
                wall_time=time.perf_counter() - started,
            )
            raise
        wall = time.perf_counter() - started
        self.log.record(query, page_number, len(page.records), wall_time=wall)
        if self.pipeline_depth > 0 and page.has_next:
            self._prefetch_ahead(query, page_number, page.num_pages)
        return page

    def submit_xml(self, query: AnyQuery, page_number: int = 1) -> str:
        """Like :meth:`submit` but returning the XML wire document."""
        from repro.server.service import render_page

        return render_page(self.submit(query, page_number))

    @property
    def rounds(self) -> int:
        """Communication rounds *consumed* by this client."""
        return self.log.rounds

    # ------------------------------------------------------------------
    # Pipelining internals
    # ------------------------------------------------------------------
    def _schedule_fetch(self, query: AnyQuery, page_number: int):
        # Runs on the crawler thread, before the coroutine is shipped
        # to the client loop: the trace context's "current query" is
        # only coherent here (QueryIssued fires on this thread, before
        # submit()), so the span id is resolved now and captured.
        trace_parent = None
        if self._trace_context is not None:
            trace_parent = self._trace_context.fetch_parent(page_number)
        return asyncio.run_coroutine_threadsafe(
            self._fetch_page(query, page_number, trace_parent), self._loop
        )

    def _fetch_page(
        self,
        query: AnyQuery,
        page_number: int,
        trace_parent: Optional[str] = None,
    ):
        params = encode_query_params(query) + [
            ("page", str(page_number)),
            ("format", self.format),
        ]
        target = f"/sources/{self.name}/query?{urlencode(params)}"

        async def fetch() -> ResultPage:
            cached = self._etags.get(target) if self.etag_cache_size else None
            conditional = (
                [("If-None-Match", cached[0])] if cached is not None else []
            )
            status, headers, body = await self._fetch(
                target, "query", conditional, trace_parent=trace_parent
            )
            if status == 304 and cached is not None:
                # Revalidated: the cached body is byte-identical to
                # what a 200 would have carried.  submit() charges the
                # round on consumption either way.
                self._etags.move_to_end(target)
                if self._revalidated is not None:
                    self._revalidated.inc_key(("reused",))
                body = cached[1]
                status = 200
            elif status == 200 and self.etag_cache_size:
                etag = headers.get("etag")
                if etag:
                    self._etags[target] = (etag, body)
                    self._etags.move_to_end(target)
                    while len(self._etags) > self.etag_cache_size:
                        self._etags.popitem(last=False)
                    if self._revalidated is not None:
                        self._revalidated.inc_key(("stored",))
            if status == 200:
                text = body.decode("utf-8")
                if self.format == "xml":
                    return parse_page(text)
                return parse_page_json(text)
            code, message = parse_error(body)
            if code == "unsupported-query":
                raise UnsupportedQueryError(message)
            if code == "page-out-of-range":
                raise PaginationError(message)
            raise RemoteSourceError(
                f"GET {target} → {status} {code}: {message}"
            )

        return fetch()

    def _prefetch_ahead(
        self, query: AnyQuery, page_number: int, num_pages: int
    ) -> None:
        last = min(page_number + self.pipeline_depth, num_pages)
        for upcoming in range(page_number + 1, last + 1):
            key = (query, upcoming)
            if key not in self._prefetched:
                if self._prefetch is not None:
                    self._prefetch.inc_key(("issued",))
                self._prefetched[key] = self._schedule_fetch(query, upcoming)

    def _discard_prefetches(self) -> None:
        """Drop speculative pages the crawl will never consume."""
        for future in self._prefetched.values():
            if self._prefetch is not None:
                self._prefetch.inc_key(("wasted",))
            # Swallow late failures so discarded futures never warn.
            future.add_done_callback(lambda f: f.exception())
        self._prefetched.clear()

    # ------------------------------------------------------------------
    # Durable-runtime state (mirrors SimulatedWebDatabase)
    # ------------------------------------------------------------------
    def runtime_state(self) -> dict:
        """Only the consumed-round counter is crawl-dependent state."""
        return {"rounds": self.log.rounds}

    def load_runtime_state(self, state: dict) -> None:
        self.log.rounds = state["rounds"]

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Discard in-flight work, close sockets, stop the loop thread."""
        if self._closed:
            return
        self._closed = True
        self._discard_prefetches()
        try:
            self._call(self._pool.close(), timeout=5.0)
        except Exception:  # noqa: BLE001 - closing must not raise
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    def __enter__(self) -> "RemoteWebDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._closed and self._thread.is_alive():
                self._loop.call_soon_threadsafe(self._loop.stop)
        except Exception:  # noqa: BLE001
            pass
