"""Multi-core serving: N workers sharing one port and one set of tables.

The single-process :class:`~repro.net.server.AsyncSourceServer` runs
one event loop on one core; :class:`SourceCluster` scales the same
service across cores without changing what the wire says:

- **Process lane** (default where ``SO_REUSEPORT`` exists): each worker
  process runs its own event loop and service, binds its *own* socket
  to the shared ``(host, port)`` with ``SO_REUSEPORT``, and the kernel
  load-balances accepted connections across workers.  Source tables
  are not copied per worker: the parent publishes each table once
  through :func:`repro.core.shmtable.share_table` and every worker
  attaches the read-only :class:`~repro.core.shmtable.FrozenTableView`
  (falling back to a pickled copy where shared memory is unavailable).
- **Thread lane** (fallback, or ``mode="thread"``): one process, N
  event loops on N threads sharing a single
  :class:`~repro.net.server.SourceService` (its per-source locks make
  that safe); a tiny acceptor thread takes connections off one
  listening socket and deals them round-robin to the loops via
  :meth:`AsyncSourceServer.adopt`.

Either way the control plane is the same: :meth:`SourceCluster.snapshot`
collects per-worker state **in fixed worker order** and
:class:`ClusterSnapshot` merges it deterministically — counters and
histograms add, per-source round totals sum, rate-limiter windows
concatenate sorted — so :meth:`ClusterSnapshot.accounting` is
byte-identical for the same workload at any worker count (it reports
only placement-invariant facts: rounds per source, requests by route
and status, limiter totals — never per-worker cache hit counts or
latency buckets, which depend on which worker a connection landed on).

Politeness caveat: in the process lane each worker enforces the rate
limit independently (limiter state is process-local), so a clustered
deployment's effective quota is up to ``workers ×`` the configured
one.  See :class:`~repro.server.limits.RateLimiterSpec`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import pickle
import signal
import socket
import threading
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core import shmtable
from repro.core.shmtable import SharedTableHandle
from repro.metrics import MetricsRegistry
from repro.net.server import AsyncSourceServer, SourceService
from repro.obs.server_trace import (
    ServerSpanTracer,
    group_public,
    merge_groups,
    write_server_trace,
)
from repro.server.limits import (
    RateLimiter,
    RateLimiterSpec,
    merge_runtime_states,
)
from repro.server.webdb import SimulatedWebDatabase

#: How long start()/stop()/snapshot() wait on one worker before giving up.
CONTROL_TIMEOUT = 30.0

#: How long a worker's debug plane waits for the parent's merged
#: payload before degrading to its local view.
DEBUG_TIMEOUT = 10.0


def reuseport_supported() -> bool:
    """Whether this platform can share a listening port across sockets."""
    return hasattr(socket, "SO_REUSEPORT")


def _reuseport_socket(host: str, port: int) -> socket.socket:
    """A bound, listening TCP socket with ``SO_REUSEPORT`` set."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
        sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


# ----------------------------------------------------------------------
# What crosses the process boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceRecipe:
    """Everything a worker needs to rebuild one mounted source.

    The table travels as a :class:`SharedTableHandle` (attach-once,
    zero-copy) when shared memory is available, else as a pickle; the
    rest of :class:`~repro.server.webdb.SimulatedWebDatabase` is cheap
    immutable configuration rebuilt per worker.  Per-worker rebuild is
    what makes the lane correct: the communication log and order cache
    are mutable and must not be shared across processes.
    """

    name: str
    page_size: int
    limit_policy: object
    report_total: bool
    handle: Optional[SharedTableHandle] = None
    table_payload: Optional[bytes] = None

    @classmethod
    def from_source(
        cls, name: str, source, use_shared_memory: bool = True
    ) -> "SourceRecipe":
        handle = None
        payload = None
        if use_shared_memory and shmtable.supported():
            try:
                handle = shmtable.share_table(source.table)
            except Exception:  # noqa: BLE001 - pickle fallback below
                handle = None
        if handle is None:
            payload = pickle.dumps(source.table)
        return cls(
            name=name,
            page_size=source.page_size,
            limit_policy=source.limit_policy,
            report_total=source.report_total,
            handle=handle,
            table_payload=payload,
        )

    def build(self) -> SimulatedWebDatabase:
        if self.handle is not None:
            table = self.handle.table()
        else:
            table = pickle.loads(self.table_payload)
        return SimulatedWebDatabase(
            table,
            page_size=self.page_size,
            limit_policy=self.limit_policy,
            report_total=self.report_total,
        )


@dataclass(frozen=True)
class ClusterConfig:
    """Picklable worker configuration (one shared by all workers)."""

    host: str
    port: int
    expose_truth: bool = True
    page_cache_size: int = 4096
    idle_timeout: float = 30.0
    limiter_spec: Optional[RateLimiterSpec] = None
    trace_spans: bool = False
    trace_timings: bool = True
    workers: int = 1


def _service_snapshot(service: SourceService, requests_served: int) -> dict:
    """One worker's accounting state, JSON/pickle-safe."""
    rounds: Dict[str, int] = {}
    for name in sorted(service.sources):
        with service._locks[name]:
            rounds[name] = service.sources[name].rounds
    limiter = service.rate_limiter
    cache = service.page_cache
    spans = {"tracing": service.tracer is not None}
    if service.tracer is not None:
        spans.update(service.tracer.stats())
    return {
        "registry": service.registry.state_dict(),
        "rounds": rounds,
        "limiter": limiter.runtime_state() if limiter is not None else None,
        "cache": cache.stats() if cache is not None else None,
        "requests_served": requests_served,
        "uptime_s": round(time.time() - service.started_at, 3),
        "spans": spans,
    }


# ----------------------------------------------------------------------
# Worker process entry point (module-level: spawn-compatible)
# ----------------------------------------------------------------------
def _worker_main(
    config: ClusterConfig,
    recipes: List[SourceRecipe],
    conn,
    placeholder_fd: Optional[int] = None,
    uplink=None,
) -> None:
    # Under the fork start method the worker inherits the parent's
    # port-resolving placeholder socket.  That inherited copy is a
    # member of the SO_REUSEPORT group with nobody accepting on it —
    # the kernel would hash a share of incoming connections onto it
    # and they would hang forever.  Close it first thing.
    if placeholder_fd is not None:
        try:
            os.close(placeholder_fd)
        except OSError:  # pragma: no cover - already closed
            pass
    # The parent coordinates shutdown through the control pipe; a
    # terminal Ctrl-C hits the whole process group, so workers must not
    # die to SIGINT mid-handshake.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    sources = {recipe.name: recipe.build() for recipe in recipes}
    limiter = (
        config.limiter_spec.build() if config.limiter_spec is not None else None
    )
    service = SourceService(
        sources,
        rate_limiter=limiter,
        registry=MetricsRegistry(),
        expose_truth=config.expose_truth,
        page_cache_size=config.page_cache_size,
    )
    tracer = (
        ServerSpanTracer(include_timings=config.trace_timings)
        if config.trace_spans
        else None
    )
    service.tracer = tracer
    service.cluster_info = {"mode": "process", "workers": config.workers}
    if uplink is not None:
        # The debug plane: /metrics and /debug/* ask the parent for the
        # *merged* cluster view through this second pipe.  One request
        # at a time per worker; the parent's broker thread answers.
        # Blocking the worker's event loop for the round trip is fine —
        # the worker's own control thread stays free, so the parent can
        # still snapshot this worker while it waits (no deadlock), and
        # a dead/slow parent degrades to the local view after
        # DEBUG_TIMEOUT (pipe closure returns immediately).
        uplink_lock = threading.Lock()

        def debug_provider(kind: str, arg):
            with uplink_lock:
                try:
                    uplink.send(("merged?", kind, arg))
                    if uplink.poll(DEBUG_TIMEOUT):
                        reply_kind, payload = uplink.recv()
                        if reply_kind == kind:
                            return payload
                except (EOFError, OSError, BrokenPipeError):
                    pass
                return None

        service.debug_provider = debug_provider
    server = AsyncSourceServer(
        service,
        host=config.host,
        port=config.port,
        idle_timeout=config.idle_timeout,
    )
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        sock = _reuseport_socket(config.host, config.port)
        loop.run_until_complete(server.start(sock=sock))
    except BaseException as error:  # noqa: BLE001 - surfaced to the parent
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        loop.close()
        return

    def control() -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = ("stop",)
            if message[0] == "snapshot":
                conn.send(
                    (
                        "snapshot",
                        _service_snapshot(service, server.requests_served),
                    )
                )
            elif message[0] == "spans":
                limit = message[1] if len(message) > 1 else 50
                conn.send(
                    (
                        "spans",
                        {
                            "stats": (
                                tracer.stats()
                                if tracer is not None
                                else {"groups": 0, "dropped": 0}
                            ),
                            "tail": (
                                tracer.tail(limit)
                                if tracer is not None
                                else []
                            ),
                        },
                    )
                )
            elif message[0] == "stop":
                loop.call_soon_threadsafe(loop.stop)
                return

    controller = threading.Thread(
        target=control, name="repro-net-worker-control", daemon=True
    )
    controller.start()
    conn.send(("ready", server.port))
    try:
        loop.run_forever()
    finally:
        loop.run_until_complete(server.close())
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()
    try:
        final = _service_snapshot(service, server.requests_served)
        if tracer is not None:
            # Span groups ship home with the final snapshot; the parent
            # merges every worker's groups placement-invariantly.
            final["trace_groups"] = tracer.payload()
        conn.send(("stopped", final))
        conn.close()
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass


# ----------------------------------------------------------------------
# Merged accounting
# ----------------------------------------------------------------------
class ClusterSnapshot:
    """Per-worker accounting payloads, merged in fixed worker order."""

    def __init__(self, payloads: List[dict]) -> None:
        self.payloads = list(payloads)

    def merged_registry(self) -> MetricsRegistry:
        """Fold every worker registry (worker order → deterministic)."""
        merged = MetricsRegistry()
        for payload in self.payloads:
            merged.merge(payload["registry"])
        return merged

    @property
    def rounds(self) -> Dict[str, int]:
        """Communication rounds charged, summed per source."""
        totals: Dict[str, int] = {}
        for payload in self.payloads:
            for name, count in payload["rounds"].items():
                totals[name] = totals.get(name, 0) + count
        return dict(sorted(totals.items()))

    @property
    def requests_served(self) -> int:
        return sum(payload["requests_served"] for payload in self.payloads)

    @property
    def cache_stats(self) -> Optional[Tuple[int, int, int, int]]:
        """Summed ``(hits, misses, evictions, entries)`` across workers.

        Informational only — *not* part of :meth:`accounting`, because
        the split of one workload into hits and misses depends on which
        worker each connection landed on.
        """
        stats = [p["cache"] for p in self.payloads if p["cache"] is not None]
        if not stats:
            return None
        return tuple(sum(column) for column in zip(*stats))  # type: ignore[return-value]

    def limiter_state(self) -> Optional[dict]:
        """Merged rate-limiter runtime state (see ``merge_runtime_states``)."""
        states = [
            payload["limiter"]
            for payload in self.payloads
            if payload["limiter"] is not None
        ]
        if not states:
            return None
        return merge_runtime_states(states)

    def merged_status(self, mode: str, workers: int) -> dict:
        """The merged ``/debug/status`` payload (cluster-wide totals)."""
        payload = {
            "ok": True,
            "mode": mode,
            "workers": workers,
            "uptime_s": max(
                (p.get("uptime_s", 0.0) for p in self.payloads),
                default=0.0,
            ),
            "requests_handled": self.requests_served,
            "rounds": {
                "total": sum(self.rounds.values()),
                "per_source": self.rounds,
            },
        }
        cache = self.cache_stats
        if cache is not None:
            payload["cache"] = dict(
                zip(("hits", "misses", "evictions", "entries"), cache)
            )
        limiter = self.limiter_state()
        if limiter is not None:
            payload["limiter"] = {
                "denials": limiter["denials"],
                "bans_issued": limiter["bans_issued"],
            }
        spans = [p.get("spans") for p in self.payloads]
        spans = [s for s in spans if s]
        payload["spans"] = {
            "tracing": any(s.get("tracing") for s in spans),
            "groups": sum(s.get("groups", 0) for s in spans),
            "dropped": sum(s.get("dropped", 0) for s in spans),
        }
        return payload

    def accounting(self) -> dict:
        """The placement-invariant aggregate report.

        Contains only facts that depend on the workload, never on how
        connections were balanced across workers: the same crawl
        against 1 or 4 workers produces the identical dict (tests pin
        this).  Cache hit/miss splits and latency buckets are excluded
        by design.
        """
        registry = self.merged_registry()
        requests: Dict[str, float] = {}
        counter = registry.get("net_server_requests_total")
        if counter is not None:
            for key, value in counter.series():
                requests["|".join(key)] = value
        limited: Dict[str, float] = {}
        rate_counter = registry.get("net_server_rate_limited_total")
        if rate_counter is not None:
            for key, value in rate_counter.series():
                limited["|".join(key)] = value
        limiter = self.limiter_state()
        return {
            "rounds": self.rounds,
            "requests": dict(sorted(requests.items())),
            "rate_limited": dict(sorted(limited.items())),
            "denials": limiter["denials"] if limiter else 0,
            "bans_issued": limiter["bans_issued"] if limiter else 0,
        }


# ----------------------------------------------------------------------
# The cluster
# ----------------------------------------------------------------------
class SourceCluster:
    """Serve ``sources`` on one port from N workers (see module docs).

    Parameters
    ----------
    sources:
        ``name -> SimulatedWebDatabase``, exactly as for
        :class:`~repro.net.server.SourceService`.  In the process lane
        each worker rebuilds its own instances from
        :class:`SourceRecipe` (tables shared via shm); the caller's
        instances are left untouched.
    workers:
        Event loops to run.  1 is legal (useful for like-for-like
        comparisons against the single-process lane).
    mode:
        ``"auto"`` (processes where ``SO_REUSEPORT`` exists, threads
        otherwise), ``"process"``, or ``"thread"``.
    rate_limiter:
        A spec (not a live limiter — limiters do not cross processes);
        each worker builds its own.
    use_shared_memory:
        Set ``False`` to force the pickled-table fallback (tests).
    trace_spans:
        Record server-side request spans (see
        :mod:`repro.obs.server_trace`) on every worker; at ``stop()``
        the groups are merged placement-invariantly into
        :attr:`trace_groups` (and written to ``trace_path`` if set).
    trace_timings:
        Attach wall/CPU durations to recorded spans.  Turn off for
        canonical, byte-comparable traces.
    trace_path:
        Where to write the merged server-side span JSONL at ``stop()``.
    """

    def __init__(
        self,
        sources: Mapping[str, SimulatedWebDatabase],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        mode: str = "auto",
        rate_limiter: Optional[RateLimiterSpec] = None,
        expose_truth: bool = True,
        page_cache_size: int = 4096,
        idle_timeout: float = 30.0,
        use_shared_memory: bool = True,
        trace_spans: bool = False,
        trace_timings: bool = True,
        trace_path=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in ("auto", "process", "thread"):
            raise ValueError(f"unknown cluster mode {mode!r}")
        if mode == "process" and not reuseport_supported():
            raise RuntimeError(
                "mode='process' needs SO_REUSEPORT, unavailable here"
            )
        if isinstance(rate_limiter, RateLimiter):  # be forgiving
            rate_limiter = RateLimiterSpec.from_limiter(rate_limiter)
        self.sources = dict(sources)
        self.host = host
        self.port = port
        self.workers = workers
        self.mode = (
            mode
            if mode != "auto"
            else ("process" if reuseport_supported() else "thread")
        )
        self.limiter_spec = rate_limiter
        self.expose_truth = expose_truth
        self.page_cache_size = page_cache_size
        self.idle_timeout = idle_timeout
        self.use_shared_memory = use_shared_memory
        self.trace_spans = trace_spans
        self.trace_timings = trace_timings
        self.trace_path = trace_path
        #: Merged, placement-invariantly sorted span groups, populated
        #: at ``stop()`` when ``trace_spans`` is on.
        self.trace_groups: List[dict] = []
        self._started = False
        self._stopped = False
        # Process lane state
        self._recipes: List[SourceRecipe] = []
        self._processes: List[multiprocessing.Process] = []
        self._pipes: List = []
        self._uplinks: List = []
        #: Serializes control-pipe transactions: the public snapshot(),
        #: the broker's merged-payload queries, and shutdown all
        #: request/reply on the same pipes.
        self._control_lock = threading.Lock()
        self._broker: Optional[threading.Thread] = None
        self._broker_stop = threading.Event()
        self.final_snapshot: Optional[ClusterSnapshot] = None
        # Thread lane state
        self._service: Optional[SourceService] = None
        self._listen_sock: Optional[socket.socket] = None
        self._loops: List[asyncio.AbstractEventLoop] = []
        self._servers: List[AsyncSourceServer] = []
        self._threads: List[threading.Thread] = []
        self._acceptor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        if self.mode == "process":
            self._start_processes()
        else:
            self._start_threads()
        return self.url

    def stop(self) -> Optional[ClusterSnapshot]:
        """Shut everything down; returns the final merged snapshot."""
        if not self._started or self._stopped:
            return self.final_snapshot
        self._stopped = True
        if self.mode == "process":
            self._stop_processes()
        else:
            self._stop_threads()
        return self.final_snapshot

    def snapshot(self) -> ClusterSnapshot:
        """Collect live per-worker accounting, in worker order."""
        if not self._started or self._stopped:
            raise RuntimeError("cluster is not running")
        if self.mode == "process":
            with self._control_lock:
                payloads = []
                for conn in self._pipes:
                    conn.send(("snapshot",))
                for index, conn in enumerate(self._pipes):
                    kind, payload = self._recv(conn, index)
                    if kind != "snapshot":
                        raise RuntimeError(
                            f"worker {index} answered {kind!r} to snapshot"
                        )
                    payloads.append(payload)
            return ClusterSnapshot(payloads)
        assert self._service is not None
        served = sum(server.requests_served for server in self._servers)
        return ClusterSnapshot([_service_snapshot(self._service, served)])

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Process lane
    # ------------------------------------------------------------------
    def _start_processes(self) -> None:
        # Resolve port 0 up front with a placeholder REUSEPORT socket
        # so every worker binds the same concrete port; the placeholder
        # stays open (parking the port) until all workers are ready.
        placeholder = _reuseport_socket(self.host, self.port)
        self.host, self.port = placeholder.getsockname()[:2]
        try:
            self._recipes = [
                SourceRecipe.from_source(
                    name, source, use_shared_memory=self.use_shared_memory
                )
                for name, source in sorted(self.sources.items())
            ]
            config = ClusterConfig(
                host=self.host,
                port=self.port,
                expose_truth=self.expose_truth,
                page_cache_size=self.page_cache_size,
                idle_timeout=self.idle_timeout,
                limiter_spec=self.limiter_spec,
                trace_spans=self.trace_spans,
                trace_timings=self.trace_timings,
                workers=self.workers,
            )
            context = multiprocessing.get_context()
            # fork inherits the placeholder's FD into every worker;
            # spawn does not (fresh interpreter, CLOEXEC semantics).
            placeholder_fd = (
                placeholder.fileno()
                if context.get_start_method() == "fork"
                else None
            )
            for index in range(self.workers):
                parent_conn, child_conn = context.Pipe()
                parent_uplink, child_uplink = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        config,
                        self._recipes,
                        child_conn,
                        placeholder_fd,
                        child_uplink,
                    ),
                    name=f"repro-net-worker-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                child_uplink.close()
                self._processes.append(process)
                self._pipes.append(parent_conn)
                self._uplinks.append(parent_uplink)
            for index, conn in enumerate(self._pipes):
                kind, payload = self._recv(conn, index)
                if kind != "ready":
                    self._kill_processes()
                    raise RuntimeError(f"worker {index} failed: {payload}")
        except BaseException:
            placeholder.close()
            self._unlink_tables()
            raise
        placeholder.close()
        self._broker_stop.clear()
        self._broker = threading.Thread(
            target=self._broker_loop, name="repro-net-broker", daemon=True
        )
        self._broker.start()

    def _recv(self, conn, index: int):
        if not conn.poll(CONTROL_TIMEOUT):
            self._kill_processes()
            raise RuntimeError(f"worker {index} did not answer in time")
        try:
            return conn.recv()
        except EOFError:
            self._kill_processes()
            raise RuntimeError(f"worker {index} died") from None

    # ------------------------------------------------------------------
    # The debug broker: answers workers' merged-payload queries
    # ------------------------------------------------------------------
    def _broker_loop(self) -> None:
        while not self._broker_stop.is_set():
            try:
                ready = _connection_wait(self._uplinks, timeout=0.2)
            except OSError:  # pipes closing under us: shutting down
                return
            for conn in ready:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    continue
                if not message or message[0] != "merged?":
                    continue
                kind, arg = message[1], message[2]
                try:
                    payload = self._merged_payload(kind, arg)
                except Exception:  # noqa: BLE001 - degrade, never die
                    payload = None
                try:
                    conn.send((kind, payload))
                except (BrokenPipeError, OSError):
                    pass

    def _control_payloads(self, message: tuple, expect: str) -> List[dict]:
        """One locked request/reply round over every control pipe."""
        with self._control_lock:
            payloads = []
            for conn in self._pipes:
                conn.send(message)
            for index, conn in enumerate(self._pipes):
                if not conn.poll(CONTROL_TIMEOUT):
                    raise RuntimeError(
                        f"worker {index} did not answer {expect}"
                    )
                kind, payload = conn.recv()
                if kind != expect:
                    raise RuntimeError(
                        f"worker {index} answered {kind!r} to {expect}"
                    )
                payloads.append(payload)
            return payloads

    def _merged_payload(self, kind: str, arg):
        """The cluster-wide payload behind one worker's debug request."""
        if kind == "metrics":
            snapshot = ClusterSnapshot(
                self._control_payloads(("snapshot",), "snapshot")
            )
            registry = snapshot.merged_registry()
            # Gauges merge last-write-wins, which is wrong for the
            # per-source round totals; overwrite them with the true
            # cross-worker sums.
            gauge = registry.get("net_server_rounds_total")
            if gauge is not None:
                for name, value in snapshot.rounds.items():
                    gauge.set_key((name,), value)
            return registry.state_dict()
        if kind == "status":
            snapshot = ClusterSnapshot(
                self._control_payloads(("snapshot",), "snapshot")
            )
            return snapshot.merged_status(self.mode, self.workers)
        if kind == "spans":
            limit = arg if isinstance(arg, int) else 50
            replies = self._control_payloads(("spans", limit), "spans")
            merged = merge_groups([reply["tail"] for reply in replies])
            return {
                "tracing": self.trace_spans,
                "count": sum(r["stats"]["groups"] for r in replies),
                "dropped": sum(r["stats"]["dropped"] for r in replies),
                "recent": [
                    group_public(group) for group in merged[-limit:]
                ],
            }
        return None

    def _finish_trace(self, groups: List[dict]) -> None:
        self.trace_groups = merge_groups([groups])
        if self.trace_path is not None:
            write_server_trace(
                self.trace_path,
                self.trace_groups,
                include_timings=self.trace_timings,
            )

    def _stop_processes(self) -> None:
        # Stop the broker before touching the pipes: its wait() loop
        # and the shutdown handshake must not interleave.
        self._broker_stop.set()
        if self._broker is not None:
            self._broker.join(timeout=5.0)
            self._broker = None
        for conn in self._uplinks:
            try:
                conn.close()
            except OSError:
                pass
        self._uplinks = []
        payloads = []
        trace_groups: List[dict] = []
        with self._control_lock:
            for index, conn in enumerate(self._pipes):
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    continue
            for index, conn in enumerate(self._pipes):
                try:
                    if conn.poll(CONTROL_TIMEOUT):
                        kind, payload = conn.recv()
                        if kind == "stopped":
                            trace_groups.extend(
                                payload.pop("trace_groups", None) or []
                            )
                            payloads.append(payload)
                except (EOFError, OSError):
                    pass
                conn.close()
        for process in self._processes:
            process.join(timeout=CONTROL_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        self._unlink_tables()
        if self.trace_spans:
            self._finish_trace(trace_groups)
        if payloads:
            self.final_snapshot = ClusterSnapshot(payloads)

    def _kill_processes(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def _unlink_tables(self) -> None:
        for recipe in self._recipes:
            if recipe.handle is not None:
                try:
                    recipe.handle.unlink()
                except Exception:  # noqa: BLE001 - already gone
                    pass

    # ------------------------------------------------------------------
    # Thread lane
    # ------------------------------------------------------------------
    def _start_threads(self) -> None:
        limiter = (
            self.limiter_spec.build() if self.limiter_spec is not None else None
        )
        self._service = SourceService(
            self.sources,
            rate_limiter=limiter,
            registry=MetricsRegistry(),
            expose_truth=self.expose_truth,
            page_cache_size=self.page_cache_size,
        )
        if self.trace_spans:
            # One shared service → its tracer already sees every
            # request; "merged" and "local" views coincide, so no
            # debug provider is needed in this lane.
            self._service.tracer = ServerSpanTracer(
                include_timings=self.trace_timings
            )
        self._service.cluster_info = {
            "mode": "thread",
            "workers": self.workers,
        }
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(128)
        self.host, self.port = sock.getsockname()[:2]
        self._listen_sock = sock
        ready = threading.Barrier(self.workers + 1)
        for index in range(self.workers):
            loop = asyncio.new_event_loop()
            server = AsyncSourceServer(
                self._service,
                host=self.host,
                port=self.port,
                idle_timeout=self.idle_timeout,
            )
            thread = threading.Thread(
                target=self._run_loop,
                args=(loop, ready),
                name=f"repro-net-loop-{index}",
                daemon=True,
            )
            thread.start()
            self._loops.append(loop)
            self._servers.append(server)
            self._threads.append(thread)
        ready.wait(timeout=CONTROL_TIMEOUT)
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-net-acceptor", daemon=True
        )
        self._acceptor.start()

    @staticmethod
    def _run_loop(loop: asyncio.AbstractEventLoop, ready) -> None:
        asyncio.set_event_loop(loop)
        loop.call_soon(ready.wait)
        loop.run_forever()

    def _accept_loop(self) -> None:
        index = 0
        assert self._listen_sock is not None
        self._listen_sock.setblocking(True)
        while True:
            try:
                client_sock, _addr = self._listen_sock.accept()
            except OSError:  # listening socket closed: shutting down
                return
            client_sock.setblocking(False)
            loop = self._loops[index % self.workers]
            server = self._servers[index % self.workers]
            index += 1
            asyncio.run_coroutine_threadsafe(server.adopt(client_sock), loop)

    def _stop_threads(self) -> None:
        assert self._service is not None
        served = sum(server.requests_served for server in self._servers)
        if self._listen_sock is not None:
            self._listen_sock.close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=CONTROL_TIMEOUT)
        for server, loop in zip(self._servers, self._loops):
            try:
                asyncio.run_coroutine_threadsafe(server.close(), loop).result(
                    timeout=CONTROL_TIMEOUT
                )
            except Exception:  # noqa: BLE001 - close must not raise
                pass
            loop.call_soon_threadsafe(loop.stop)
        for thread in self._threads:
            thread.join(timeout=CONTROL_TIMEOUT)
        for loop in self._loops:
            loop.close()
        served = max(
            served, sum(server.requests_served for server in self._servers)
        )
        if self.trace_spans and self._service.tracer is not None:
            self._finish_trace(self._service.tracer.payload())
        self.final_snapshot = ClusterSnapshot(
            [_service_snapshot(self._service, served)]
        )
