"""Load-test harness for the HTTP front end.

Drives hundreds-to-thousands of concurrent crawl sessions against one
running service process and reports throughput plus latency
percentiles.  Each session owns one keep-alive connection and a
distinct ``X-Client-Id``, issues a stream of single-predicate queries
drawn from the service's own value pool (``/truth/sample``), and pages
through every result page — the same access pattern a fleet of
independent crawlers would produce.

Two legs run back-to-back in one process, mirroring the hot-path
benchmark's methodology:

1. a **serial** calibration leg — one session, measuring the
   single-client request rate this machine/service pair can sustain;
2. the **concurrent** leg — ``sessions`` simultaneous sessions.

Every session performs one untimed warmup request (``GET /healthz``)
before its timed queries, in both legs: connection setup (TCP
handshake, first-allocation costs on both sides) used to ride on the
first *timed* request of each session and pollute p95/p99 at high
session counts.  The concurrent leg's clock starts only after every
session's warmup has completed.  ``BENCH_net.json`` records
``warmup: true`` so numbers from before this change are not compared
like-for-like.

The ratio of concurrent to serial throughput (``concurrency_speedup``)
is the machine-independent signal committed to ``BENCH_net.json``:
absolute request rates shift with hardware, but a genuine concurrency
regression (lock contention in the service, head-of-line blocking in
the event loop) shrinks the ratio everywhere.  The file matches the
shape ``scripts/check_bench_regression.py`` gates.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlencode, urlsplit

from repro.core.errors import ReproError
from repro.metrics import MetricsRegistry
from repro.metrics.quantiles import nearest_rank

#: Histogram buckets for load-test latency (seconds).
_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class LoadTestError(ReproError):
    """The harness could not run (bad URL, no sources, no values)."""


@dataclass
class LoadTestReport:
    """Everything one load-test run measured."""

    url: str
    source: str
    sessions: int
    queries_per_session: int
    requests: int = 0
    records: int = 0
    errors: int = 0
    rate_limited: int = 0
    wall_seconds: float = 0.0
    requests_per_sec: float = 0.0
    serial_requests_per_sec: float = 0.0
    concurrency_speedup: float = 0.0
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_max: float = 0.0
    #: Whether sessions ran an untimed warmup request before timing
    #: (provenance: pre-warmup numbers are not comparable).
    warmup: bool = True
    #: Raw per-request latencies (seconds); dropped from the JSON report.
    samples: List[float] = field(default_factory=list, repr=False)

    def finalize(self) -> None:
        """Fill the derived fields from the raw samples."""
        if self.wall_seconds > 0:
            self.requests_per_sec = round(self.requests / self.wall_seconds, 1)
        if self.serial_requests_per_sec > 0 and self.requests_per_sec > 0:
            self.concurrency_speedup = round(
                self.requests_per_sec / self.serial_requests_per_sec, 3
            )
        if self.samples:
            ordered = sorted(self.samples)
            self.latency_mean = round(sum(ordered) / len(ordered), 6)
            self.latency_p50 = round(_percentile(ordered, 0.50), 6)
            self.latency_p95 = round(_percentile(ordered, 0.95), 6)
            self.latency_p99 = round(_percentile(ordered, 0.99), 6)
            self.latency_max = round(ordered[-1], 6)

    def to_json(self) -> dict:
        payload = asdict(self)
        payload.pop("samples")
        return payload

    def summary(self) -> str:
        """Human-oriented multi-line summary for the CLI."""
        lines = [
            f"loadtest {self.url} source={self.source}",
            (
                f"  sessions={self.sessions} "
                f"queries/session={self.queries_per_session} "
                f"requests={self.requests} records={self.records}"
            ),
            (
                f"  wall={self.wall_seconds:.2f}s "
                f"throughput={self.requests_per_sec:.1f} req/s "
                f"(serial {self.serial_requests_per_sec:.1f} req/s, "
                f"speedup {self.concurrency_speedup:.2f}x)"
            ),
            (
                f"  latency mean={self.latency_mean * 1e3:.2f}ms "
                f"p50={self.latency_p50 * 1e3:.2f}ms "
                f"p95={self.latency_p95 * 1e3:.2f}ms "
                f"p99={self.latency_p99 * 1e3:.2f}ms "
                f"max={self.latency_max * 1e3:.2f}ms"
            ),
            f"  errors={self.errors} rate_limited={self.rate_limited}",
        ]
        return "\n".join(lines)


# Nearest-rank percentile, shared with ProgressReporter's heartbeat
# (repro.metrics.quantiles) so the two definitions can never drift.
# The local name survives as an alias: tests and downstream callers
# import it from here.
_percentile = nearest_rank


# ----------------------------------------------------------------------
# Minimal async HTTP/1.1 session (one keep-alive connection)
# ----------------------------------------------------------------------
class _Session:
    """One load-generating client: one connection, one client id."""

    def __init__(self, host: str, port: int, client_id: str) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def get(self, target: str) -> Tuple[int, Dict[str, str], bytes]:
        if self.writer is None:
            await self._connect()
        assert self.reader is not None and self.writer is not None
        try:
            self.writer.write(
                (
                    f"GET {target} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    f"X-Client-Id: {self.client_id}\r\n"
                    f"Connection: keep-alive\r\n\r\n"
                ).encode("latin-1")
            )
            await self.writer.drain()
            status_line = await self.reader.readline()
            if not status_line:
                raise ConnectionResetError("connection closed")
            status = int(status_line.split(None, 2)[1])
            headers: Dict[str, str] = {}
            while True:
                line = await self.reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            body = await self.reader.readexactly(length) if length else b""
            if headers.get("connection", "").lower() == "close":
                self.close()
            return status, headers, body
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self.close()
            raise

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = self.writer = None


async def _get_json(session: _Session, target: str) -> dict:
    status, _headers, body = await session.get(target)
    if status != 200:
        raise LoadTestError(f"GET {target} → {status}: {body[:200]!r}")
    return json.loads(body.decode("utf-8"))


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
async def _warmup_session(session: _Session, timeout: float) -> None:
    """One untimed request to absorb connection-setup latency.

    Failures are ignored: the timed loop has its own error accounting,
    and a session whose warmup died simply reconnects there.
    """
    try:
        await asyncio.wait_for(session.get("/healthz"), timeout=timeout)
    except (
        ConnectionError,
        OSError,
        asyncio.TimeoutError,
        TimeoutError,
        asyncio.IncompleteReadError,
    ):
        session.close()


async def _run_session(
    session: _Session,
    source: str,
    values: Sequence[Tuple[str, str]],
    queries: Sequence[int],
    report: LoadTestReport,
    samples: List[float],
    timeout: float,
    registry: Optional[MetricsRegistry],
) -> None:
    """One session: issue each assigned query, page through all pages."""
    histogram = (
        registry.histogram(
            "net_loadtest_request_seconds",
            "Load-test request latency.",
            buckets=_BUCKETS,
        )
        if registry is not None
        else None
    )
    try:
        for value_index in queries:
            attribute, value = values[value_index % len(values)]
            page, pages = 1, 1
            while page <= pages:
                target = (
                    f"/sources/{source}/query?"
                    + urlencode(
                        [
                            ("a", attribute),
                            ("v", value),
                            ("page", str(page)),
                            ("format", "json"),
                        ]
                    )
                )
                started = time.perf_counter()
                try:
                    status, headers, body = await asyncio.wait_for(
                        session.get(target), timeout=timeout
                    )
                except (
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    TimeoutError,
                    asyncio.IncompleteReadError,
                ):
                    report.errors += 1
                    break
                elapsed = time.perf_counter() - started
                if status == 429:
                    report.rate_limited += 1
                    try:
                        delay = float(headers.get("retry-after", "1"))
                    except ValueError:
                        delay = 1.0
                    await asyncio.sleep(min(delay, timeout))
                    continue
                samples.append(elapsed)
                if histogram is not None:
                    histogram.observe(elapsed)
                report.requests += 1
                if status != 200:
                    report.errors += 1
                    break
                payload = json.loads(body.decode("utf-8"))
                report.records += len(payload.get("records", ()))
                pages = int(payload.get("pages", 1))
                page += 1
    finally:
        session.close()


async def _run(
    url: str,
    source: Optional[str],
    sessions: int,
    queries_per_session: int,
    value_pool: int,
    seed: int,
    timeout: float,
    registry: Optional[MetricsRegistry],
) -> LoadTestReport:
    split = urlsplit(url)
    if split.scheme != "http" or not split.hostname:
        raise LoadTestError(f"url must be http://host[:port], got {url!r}")
    host, port = split.hostname, split.port or 80
    driver = _Session(host, port, "loadtest-driver")
    try:
        if source is None:
            listing = await _get_json(driver, "/sources")
            names = [item["name"] for item in listing.get("sources", [])]
            if not names:
                raise LoadTestError(f"service at {url} mounts no sources")
            source = names[0]
        sample = await _get_json(
            driver,
            f"/sources/{source}/truth/sample?"
            + urlencode({"n": value_pool, "seed": seed}),
        )
        values: List[Tuple[str, str]] = [
            (a, v) for a, v in sample.get("values", [])
        ]
        if not values:
            raise LoadTestError(
                f"source {source!r} yielded no probe values "
                f"(is the service running with expose_truth=True?)"
            )
    finally:
        driver.close()

    report = LoadTestReport(
        url=url,
        source=source,
        sessions=sessions,
        queries_per_session=queries_per_session,
    )

    # Leg 1: serial calibration — one session, a small query budget.
    # Warm the connection first so the timed rate is steady-state.
    serial_samples: List[float] = []
    serial_report = LoadTestReport(
        url=url, source=source, sessions=1, queries_per_session=0
    )
    serial_queries = list(range(min(len(values), max(4, value_pool // 8))))
    serial_session = _Session(host, port, "loadtest-serial")
    await _warmup_session(serial_session, timeout)
    serial_start = time.perf_counter()
    await _run_session(
        serial_session,
        source,
        values,
        serial_queries,
        serial_report,
        serial_samples,
        timeout,
        None,
    )
    serial_wall = time.perf_counter() - serial_start
    serial_session.close()
    if serial_wall > 0 and serial_report.requests:
        report.serial_requests_per_sec = round(
            serial_report.requests / serial_wall, 1
        )

    # Leg 2: the concurrent fleet.  All sessions connect and warm up
    # before the clock starts; the timed window covers queries only.
    samples: List[float] = []
    fleet = [
        _Session(host, port, f"session-{index}") for index in range(sessions)
    ]
    await asyncio.gather(
        *(_warmup_session(session, timeout) for session in fleet)
    )
    tasks = []
    started = time.perf_counter()
    for index, session in enumerate(fleet):
        assigned = [
            index * queries_per_session + j
            for j in range(queries_per_session)
        ]
        tasks.append(
            _run_session(
                session,
                source,
                values,
                assigned,
                report,
                samples,
                timeout,
                registry,
            )
        )
    await asyncio.gather(*tasks)
    report.wall_seconds = round(time.perf_counter() - started, 3)
    for session in fleet:
        session.close()
    report.samples = samples
    report.finalize()
    if registry is not None:
        quantiles = registry.gauge(
            "net_loadtest_latency_seconds",
            "Load-test latency percentiles.",
            labels=("quantile",),
        )
        quantiles.set_key(("0.5",), report.latency_p50)
        quantiles.set_key(("0.95",), report.latency_p95)
        quantiles.set_key(("0.99",), report.latency_p99)
    return report


def run_loadtest(
    url: str,
    source: Optional[str] = None,
    *,
    sessions: int = 500,
    queries_per_session: int = 2,
    value_pool: int = 64,
    seed: int = 0,
    timeout: float = 30.0,
    registry: Optional[MetricsRegistry] = None,
) -> LoadTestReport:
    """Run the full load test (serial leg + concurrent leg) and report.

    Parameters mirror the ``repro loadtest`` CLI verb: ``sessions``
    concurrent clients, each issuing ``queries_per_session`` queries
    drawn from a ``value_pool``-value probe sample, paging through all
    result pages.  All sessions run on one event loop inside this call
    — no threads, no subprocesses.
    """
    if sessions < 1:
        raise LoadTestError("sessions must be >= 1")
    if queries_per_session < 1:
        raise LoadTestError("queries_per_session must be >= 1")
    return asyncio.run(
        _run(
            url,
            source,
            sessions,
            queries_per_session,
            value_pool,
            seed,
            timeout,
            registry,
        )
    )


def write_bench(
    report: LoadTestReport,
    path,
    *,
    scale: float = 1.0,
    provenance: Optional[dict] = None,
) -> dict:
    """Write ``BENCH_net.json`` in the regression-gate shape.

    ``scripts/check_bench_regression.py`` reads ``scale`` and
    ``policies.<name>.speedup``; the gated ratio here is
    ``concurrency_speedup`` (concurrent over serial throughput), which
    is machine-independent the same way the hot-path speedup is.
    ``provenance`` records run conditions the gate ignores but a reader
    needs to compare numbers honestly (server worker count, cache
    settings, …); the per-session warmup flag is always recorded.
    """
    payload = {
        "benchmark": "net_loadtest",
        "scale": scale,
        "sessions": report.sessions,
        "queries_per_session": report.queries_per_session,
        "warmup": report.warmup,
        "provenance": dict(provenance or {}),
        "policies": {
            "loadtest": {
                "speedup": report.concurrency_speedup,
                "requests": report.requests,
                "records": report.records,
                "errors": report.errors,
                "rate_limited": report.rate_limited,
                "wall_seconds": report.wall_seconds,
                "requests_per_sec": report.requests_per_sec,
                "serial_requests_per_sec": report.serial_requests_per_sec,
                "latency_mean": report.latency_mean,
                "latency_p50": report.latency_p50,
                "latency_p95": report.latency_p95,
                "latency_p99": report.latency_p99,
                "latency_max": report.latency_max,
            }
        },
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return payload
