"""Wire protocol shared by the HTTP front end and the crawler client.

One request = one result page, matching the paper's communication-round
cost model: the URL names the source and carries the query, the
response carries one :class:`~repro.server.pagination.ResultPage` in
either the existing XML envelope (:mod:`repro.server.service`) or the
JSON rendering defined here.  Queries travel as repeated ``a``/``v``
query-string pairs so attribute names and values survive any characters
URL encoding can carry — no home-grown ``attr:value`` splitting.

Routes
------

==============================================  =======================
``GET /``                                       service index (JSON)
``GET /healthz``                                liveness probe
``GET /metrics``                                Prometheus text format
``GET /sources``                                mounted source list
``GET /sources/<name>/meta``                    :class:`SourceDescriptor`
``GET /sources/<name>/query?...&page=N``        one result page
``GET /sources/<name>/truth/size``              ground truth (harness)
``GET /sources/<name>/truth/seeds?n=&seed=``    seed-value sampling
``GET /sources/<name>/truth/sample?n=&seed=``   probe-value sampling
==============================================  =======================

Query encoding: ``?kw=value`` for keyword queries, ``?a=attr&v=value``
for one equality predicate, repeated ``a``/``v`` pairs (zipped in
order) for conjunctions.  ``format=json|xml`` selects the content
type; ``page=N`` the 1-based page.

The ``truth/*`` routes exist for experiment harnesses and the load-test
driver only — they are the network mirror of the ``truth_`` prefix on
:class:`~repro.server.webdb.SimulatedWebDatabase`, and a service can be
started with ``expose_truth=False`` to seal them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlencode

from repro.core.errors import ReproError
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.values import AttributeValue
from repro.runtime.serialize import (
    decode_query,
    decode_record,
    encode_query,
    encode_record,
)
from repro.server.interface import QueryInterface
from repro.server.pagination import ResultPage

#: Content types the query endpoint can serve.
FORMATS = ("json", "xml")

#: JSON envelope schema tag, carried on every JSON page.
JSON_SCHEMA = "repro-page/1"


class ProtocolError(ReproError):
    """A malformed request or response on the network lane."""


# ----------------------------------------------------------------------
# Queries <-> URL query strings
# ----------------------------------------------------------------------
def encode_query_params(query: AnyQuery) -> List[Tuple[str, str]]:
    """Render a query as URL query-string pairs (order significant)."""
    if isinstance(query, ConjunctiveQuery):
        pairs: List[Tuple[str, str]] = []
        for predicate in query.predicates:
            pairs.append(("a", predicate.attribute))
            pairs.append(("v", predicate.value))
        return pairs
    if query.is_keyword:
        return [("kw", query.value)]
    return [("a", query.attribute or ""), ("v", query.value)]


def query_url(
    base: str, query: AnyQuery, page_number: int = 1, format: str = "json"
) -> str:
    """Build the query-endpoint URL for one page request."""
    params = encode_query_params(query) + [
        ("page", str(page_number)),
        ("format", format),
    ]
    return f"{base}?{urlencode(params)}"


def decode_query_params(params: Mapping[str, Sequence[str]]) -> AnyQuery:
    """Reconstruct the query from parsed query-string parameters.

    ``params`` is the :func:`urllib.parse.parse_qs` shape (name → list
    of values, in document order).
    """
    keywords = params.get("kw", ())
    attributes = list(params.get("a", ()))
    values = list(params.get("v", ()))
    if keywords:
        if attributes or values or len(keywords) != 1:
            raise ProtocolError("kw cannot be combined with a/v pairs")
        return Query.keyword(keywords[0])
    if not attributes or len(attributes) != len(values):
        raise ProtocolError(
            f"query needs matching a/v pairs, got {len(attributes)} "
            f"attribute(s) and {len(values)} value(s)"
        )
    if len(attributes) == 1:
        return Query(value=values[0], attribute=attributes[0])
    return ConjunctiveQuery.of(
        *(AttributeValue(a, v) for a, v in zip(attributes, values))
    )


# ----------------------------------------------------------------------
# Result pages <-> JSON
# ----------------------------------------------------------------------
def page_to_json(page: ResultPage) -> dict:
    """The JSON rendering of one result page (schema ``repro-page/1``)."""
    return {
        "schema": JSON_SCHEMA,
        "query": encode_query(page.query),
        "page": page.page_number,
        "pages": page.num_pages,
        "total": page.total_matches,
        "accessible": page.accessible_matches,
        "pageSize": page.page_size,
        "records": [encode_record(record) for record in page.records],
    }


def render_page_json(page: ResultPage) -> str:
    """Serialize a result page to a deterministic JSON document.

    Key order is insertion order, NOT sorted: a record's field order is
    part of the in-process contract (extraction sees values in field
    order, and selector tie-breaks follow first-seen order), so the
    wire must preserve it for the two lanes to stay identical.
    """
    return json.dumps(page_to_json(page), separators=(",", ":"))


def page_from_json(payload: dict) -> ResultPage:
    if payload.get("schema") != JSON_SCHEMA:
        raise ProtocolError(
            f"unexpected page schema {payload.get('schema')!r}"
        )
    return ResultPage(
        query=decode_query(payload["query"]),
        page_number=int(payload["page"]),
        records=tuple(decode_record(r) for r in payload["records"]),
        total_matches=(
            int(payload["total"]) if payload.get("total") is not None else None
        ),
        accessible_matches=int(payload["accessible"]),
        num_pages=int(payload["pages"]),
        page_size=int(payload.get("pageSize", 0)),
    )


def parse_page_json(document: str) -> ResultPage:
    """Parse a JSON document produced by :func:`render_page_json`."""
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not a JSON page: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("not a JSON page: top level must be an object")
    return page_from_json(payload)


# ----------------------------------------------------------------------
# Source descriptors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceDescriptor:
    """Everything a remote crawler must know to target one source.

    The descriptor mirrors the constructor surface the crawler engine
    reads off :class:`~repro.server.webdb.SimulatedWebDatabase`: the
    query interface (so queries can be validated before they are sent)
    and the page size (so abortion policies can convert remaining
    records into remaining rounds).  Ground truth is deliberately
    absent — it travels on the separate ``truth/*`` routes.
    """

    name: str
    page_size: int
    report_total: bool
    queriable_attributes: Tuple[str, ...]
    supports_keyword: bool
    min_predicates: int
    max_predicates: Optional[int]
    interface_name: str

    @classmethod
    def for_source(cls, name: str, source) -> "SourceDescriptor":
        interface = source.interface
        return cls(
            name=name,
            page_size=source.page_size,
            report_total=source.report_total,
            queriable_attributes=tuple(sorted(interface.queriable_attributes)),
            supports_keyword=interface.supports_keyword,
            min_predicates=interface.min_predicates,
            max_predicates=interface.max_predicates,
            interface_name=interface.name,
        )

    def build_interface(self) -> QueryInterface:
        """Reconstruct the interface exactly as the server enforces it."""
        return QueryInterface(
            queriable_attributes=frozenset(self.queriable_attributes),
            supports_keyword=self.supports_keyword,
            name=self.interface_name,
            min_predicates=self.min_predicates,
            max_predicates=self.max_predicates,
        )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "pageSize": self.page_size,
            "reportTotal": self.report_total,
            "interface": {
                "queriable": list(self.queriable_attributes),
                "keyword": self.supports_keyword,
                "minPredicates": self.min_predicates,
                "maxPredicates": self.max_predicates,
                "name": self.interface_name,
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SourceDescriptor":
        try:
            interface = payload["interface"]
            return cls(
                name=payload["name"],
                page_size=int(payload["pageSize"]),
                report_total=bool(payload["reportTotal"]),
                queriable_attributes=tuple(interface["queriable"]),
                supports_keyword=bool(interface["keyword"]),
                min_predicates=int(interface["minPredicates"]),
                max_predicates=(
                    int(interface["maxPredicates"])
                    if interface["maxPredicates"] is not None
                    else None
                ),
                interface_name=interface.get("name", "interface"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"not a source descriptor: {payload!r}"
            ) from error


# ----------------------------------------------------------------------
# Error envelopes
# ----------------------------------------------------------------------
#: Machine-readable error codes the service emits.
ERROR_CODES = (
    "bad-request",
    "not-found",
    "unsupported-query",
    "page-out-of-range",
    "rate-limited",
    "method-not-allowed",
    "internal",
)


def error_json(code: str, message: str, **extra) -> str:
    """One JSON error body: ``{"error": code, "message": ..., ...}``."""
    body: Dict[str, object] = {"error": code, "message": message}
    body.update(extra)
    return json.dumps(body, sort_keys=True)


def parse_error(document: bytes) -> Tuple[str, str]:
    """Best-effort extraction of (code, message) from an error body."""
    try:
        payload = json.loads(document.decode("utf-8"))
        return str(payload.get("error", "internal")), str(
            payload.get("message", "")
        )
    except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
        return "internal", document.decode("utf-8", "replace")[:200]
