"""The asyncio HTTP front end serving simulated sources.

Layering:

- :class:`SourceService` is the transport-free core: one method turns
  ``(method, target, headers, client)`` into a status/headers/body
  triple, charging communication rounds on the mounted
  :class:`~repro.server.webdb.SimulatedWebDatabase` instances, applying
  the per-client :class:`~repro.server.limits.RateLimiter`, and feeding
  a :class:`~repro.metrics.MetricsRegistry`.  Locking is sharded per
  source (requests to different sources never contend), and rendered
  result pages are cached (:mod:`repro.net.cache`) so a repeated page
  request shrinks to a dict lookup plus a round-charge under the
  source's lock; 200 responses carry strong ``ETag`` validators and
  ``If-None-Match`` revalidation answers 304 — still charging the
  communication round exactly like a full response;
- :class:`AsyncSourceServer` speaks HTTP/1.1 over
  :func:`asyncio.start_server` (stdlib only): keep-alive connections,
  per-connection read timeouts, graceful shutdown that closes every
  open socket and cancels every handler task.  It can also listen on a
  caller-provided socket (the ``SO_REUSEPORT`` cluster lane,
  :mod:`repro.net.cluster`) or adopt already-accepted connections (the
  cluster's threaded fallback);
- :class:`ThreadedSourceServer` is the :mod:`http.server` fallback for
  environments where an event loop is unavailable (or already owned by
  someone else) — it shares the exact same :class:`SourceService`
  handler, whose per-source locks make the threaded path safe;
- :class:`ServerThread` runs an :class:`AsyncSourceServer` on a
  background thread, which is how tests and the load-test harness get
  a live service inside one process.

Politeness: when the rate limiter denies a request the response is
``429 Too Many Requests`` with a ``Retry-After`` header equal to the
limiter's actual reset time (rounded up to whole seconds, minimum 1,
as the HTTP header is integer-valued) — and the exact float is carried
in the JSON body as ``retryAfter`` for clients that can honor it more
precisely.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.errors import PaginationError, UnsupportedQueryError
from repro.metrics import MetricsRegistry, prometheus_text
from repro.net.cache import (
    DEFAULT_PAGE_CACHE_SIZE,
    CachedPage,
    PageRenderCache,
    etag_matches,
)
from repro.net.protocol import (
    FORMATS,
    ProtocolError,
    SourceDescriptor,
    decode_query_params,
    error_json,
    render_page_json,
)
from repro.server.limits import RateLimiter
from repro.server.service import render_page

#: Histogram bounds tuned for localhost-to-LAN request latencies.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

_STATUS_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class Response:
    """One HTTP response, transport-agnostic."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: List[Tuple[str, str]] = field(default_factory=list)

    @classmethod
    def json(cls, payload, status: int = 200) -> "Response":
        return cls(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    @classmethod
    def error(
        cls, status: int, code: str, message: str, **extra
    ) -> "Response":
        return cls(status, error_json(code, message, **extra).encode("utf-8"))


class SourceService:
    """Routes requests onto mounted simulated sources.

    Parameters
    ----------
    sources:
        ``name -> SimulatedWebDatabase``; names appear in URLs, so keep
        them URL-friendly (the CLI uses dataset names).
    rate_limiter:
        Per-client request quota applied to the ``query`` route only
        (politeness governs queries, not metadata probes).  ``None``
        admits everything.
    registry:
        Telemetry registry behind ``/metrics``; a private one is
        created when omitted.
    expose_truth:
        Serve the ``truth/*`` ground-truth routes (experiment harnesses
        and the load-test driver need them; a hardened deployment
        seals them).
    page_cache_size:
        Bound (entries) of the rendered-page LRU
        (:class:`~repro.net.cache.PageRenderCache`).  0 disables
        caching; ``ETag``/``If-None-Match`` handling stays on either
        way.
    """

    def __init__(
        self,
        sources: Mapping[str, object],
        rate_limiter: Optional[RateLimiter] = None,
        registry: Optional[MetricsRegistry] = None,
        expose_truth: bool = True,
        page_cache_size: int = DEFAULT_PAGE_CACHE_SIZE,
    ) -> None:
        if not sources:
            raise ValueError("at least one source must be mounted")
        self.sources = dict(sources)
        self.rate_limiter = rate_limiter
        self.registry = registry if registry is not None else MetricsRegistry()
        self.expose_truth = expose_truth
        # Locking is sharded per source: SimulatedWebDatabase's order
        # cache and communication log are not thread-safe, and the
        # threaded fallback (plus the cluster's multi-loop lane) may
        # hit them from many threads at once — but requests to
        # *different* sources share no mutable state, so they never
        # contend.  The asyncio server is single-threaded, where these
        # locks are uncontended.
        self._locks: Dict[str, threading.RLock] = {
            name: threading.RLock() for name in self.sources
        }
        self.page_cache = (
            PageRenderCache(page_cache_size, registry=self.registry)
            if page_cache_size
            else None
        )
        self._requests = self.registry.counter(
            "net_server_requests_total",
            "HTTP requests served, by route and status.",
            labels=("route", "status"),
        )
        self._latency = self.registry.histogram(
            "net_server_request_seconds",
            "Service-side request handling latency.",
            labels=("route",),
            buckets=LATENCY_BUCKETS,
        )
        self._rate_limited = self.registry.counter(
            "net_server_rate_limited_total",
            "Query requests denied by the rate limiter.",
            labels=("banned",),
        )
        self._rounds = self.registry.gauge(
            "net_server_rounds_total",
            "Communication rounds charged per mounted source.",
            labels=("source",),
        )
        self.started_at = time.time()
        #: Optional :class:`~repro.obs.server_trace.ServerSpanTracer`;
        #: when set, traced query requests are recorded as span groups.
        self.tracer = None
        #: Optional ``callable(kind, arg) -> payload | None`` supplying
        #: *merged* observability payloads on a cluster (kinds:
        #: ``"metrics"``, ``"status"``, ``"spans"``).  ``None`` return
        #: degrades to this worker's local view — the debug plane must
        #: answer even when the control plane is busy.
        self.debug_provider = None
        #: ``{"mode": ..., "workers": ...}`` identity for ``/debug/*``;
        #: ``None`` means a standalone single-process service.
        self.cluster_info = None
        self.requests_handled = 0

    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        target: str,
        headers: Mapping[str, str],
        client: str,
    ) -> Response:
        """Serve one request; never raises."""
        started = time.perf_counter()
        route = "other"
        try:
            route, response = self._dispatch(method, target, headers, client)
        except Exception as error:  # noqa: BLE001 - the wire gets a 500
            response = Response.error(500, "internal", f"{type(error).__name__}: {error}")
        self._requests.inc_key((route, str(response.status)))
        self._latency.observe_key((route,), time.perf_counter() - started)
        self.requests_handled += 1
        return response

    def _dispatch(
        self,
        method: str,
        target: str,
        headers: Mapping[str, str],
        client: str,
    ) -> Tuple[str, Response]:
        if method not in ("GET", "HEAD"):
            return "other", Response.error(
                405, "method-not-allowed", f"{method} is not supported"
            )
        split = urlsplit(target)
        path = unquote(split.path)
        params = parse_qs(split.query, keep_blank_values=True)
        if path in ("/", ""):
            return "index", self._index()
        if path == "/healthz":
            return "healthz", Response.json({"ok": True})
        if path == "/metrics":
            return "metrics", self._metrics()
        if path == "/debug/health":
            return "debug", self._debug_health()
        if path == "/debug/status":
            return "debug", self._debug_status()
        if path == "/debug/spans":
            return "debug", self._debug_spans(params)
        if path == "/sources":
            return "sources", self._source_list()
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "sources":
            name = parts[1]
            source = self.sources.get(name)
            if source is None:
                return "meta", Response.error(
                    404, "not-found", f"no source named {name!r}"
                )
            tail = parts[2:]
            if tail == ["meta"]:
                return "meta", Response.json(
                    SourceDescriptor.for_source(name, source).to_json()
                )
            if tail == ["query"]:
                return "query", self._query(
                    name, source, params, headers, client
                )
            if tail and tail[0] == "truth":
                if not self.expose_truth:
                    return "truth", Response.error(
                        404, "not-found", "truth routes are sealed"
                    )
                return "truth", self._truth(name, source, tail[1:], params)
        return "other", Response.error(404, "not-found", f"no route for {path}")

    # ------------------------------------------------------------------
    def _index(self) -> Response:
        return Response.json(
            {
                "service": "repro-net/1",
                "sources": sorted(self.sources),
                "routes": [
                    "/healthz",
                    "/metrics",
                    "/sources",
                    "/sources/<name>/meta",
                    "/sources/<name>/query",
                ],
            }
        )

    def _source_list(self) -> Response:
        # Descriptors read only immutable configuration — no lock.
        payload = {
            "sources": [
                SourceDescriptor.for_source(name, source).to_json()
                for name, source in sorted(self.sources.items())
            ]
        }
        return Response.json(payload)

    def _metrics(self) -> Response:
        # On a cluster, a scrape lands on whichever worker the kernel
        # hashed the connection to; serving that worker's registry
        # alone under-reports every counter.  The debug provider asks
        # the parent for the merged registry; a standalone service (or
        # a provider timeout) renders the local one.
        merged_state = None
        if self.debug_provider is not None:
            merged_state = self.debug_provider("metrics", None)
        if merged_state is not None:
            registry = MetricsRegistry()
            registry.merge(merged_state)
            text = prometheus_text(registry)
        else:
            # Snapshot under each source's lock (a couple of int
            # reads), serialize after — a scrape must never stall
            # query traffic behind Prometheus text rendering.
            for name, source in sorted(self.sources.items()):
                with self._locks[name]:
                    rounds = source.rounds
                self._rounds.set_key((name,), rounds)
            text = prometheus_text(self.registry)
        return Response(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # ------------------------------------------------------------------
    # The ops/debug surface (see DESIGN.md §10)
    # ------------------------------------------------------------------
    def _debug_health(self) -> Response:
        # Answered entirely from local state — health must stay cheap
        # and can never deadlock behind the control plane.
        info = self.cluster_info or {}
        return Response.json(
            {
                "ok": True,
                "mode": info.get("mode", "single"),
                "workers": info.get("workers", 1),
            }
        )

    def local_status(self) -> dict:
        """This worker's status payload (also the cluster merge input)."""
        per_source: Dict[str, int] = {}
        for name, source in sorted(self.sources.items()):
            with self._locks[name]:
                per_source[name] = source.rounds
        info = self.cluster_info or {}
        payload = {
            "ok": True,
            "mode": info.get("mode", "single"),
            "workers": info.get("workers", 1),
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests_handled": self.requests_handled,
            "rounds": {
                "total": sum(per_source.values()),
                "per_source": per_source,
            },
        }
        if self.page_cache is not None:
            hits, misses, evictions, entries = self.page_cache.stats()
            payload["cache"] = {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "entries": entries,
            }
        if self.rate_limiter is not None:
            state = self.rate_limiter.runtime_state()
            payload["limiter"] = {
                "denials": state["denials"],
                "bans_issued": state["bans_issued"],
            }
        spans = {"tracing": self.tracer is not None}
        if self.tracer is not None:
            spans.update(self.tracer.stats())
        payload["spans"] = spans
        return payload

    def _debug_status(self) -> Response:
        merged = None
        if self.debug_provider is not None:
            merged = self.debug_provider("status", None)
        if merged is not None:
            payload = dict(merged)
            payload["merged"] = True
        else:
            payload = self.local_status()
            payload["merged"] = False
        return Response.json(payload)

    def _debug_spans(self, params: Mapping[str, List[str]]) -> Response:
        from repro.obs.server_trace import group_public

        try:
            limit = int(params.get("n", ["50"])[0])
        except ValueError:
            limit = 50
        limit = max(1, min(limit, 500))
        merged = None
        if self.debug_provider is not None:
            merged = self.debug_provider("spans", limit)
        if merged is not None:
            payload = dict(merged)
        elif self.tracer is not None:
            meta = self.tracer.stats()
            payload = {
                "tracing": True,
                "count": meta["groups"],
                "dropped": meta["dropped"],
                "recent": [
                    group_public(group)
                    for group in self.tracer.tail(limit)
                ],
            }
        else:
            payload = {
                "tracing": False,
                "count": 0,
                "dropped": 0,
                "recent": [],
            }
        return Response.json(payload)

    def _query(
        self,
        name: str,
        source,
        params: Mapping[str, List[str]],
        headers: Mapping[str, str],
        client: str,
    ) -> Response:
        rec = (
            self.tracer.begin(headers.get("x-repro-trace"))
            if self.tracer is not None
            else None
        )
        response = self._query_inner(name, source, params, headers, client, rec)
        if rec is not None:
            rec.source = name
            self.tracer.commit(rec, response.status)
        return response

    def _query_inner(
        self,
        name: str,
        source,
        params: Mapping[str, List[str]],
        headers: Mapping[str, str],
        client: str,
        rec=None,
    ) -> Response:
        """The query pipeline, with per-phase span recording.

        Phase spans (limiter → parse → cache → render → serialize) are
        emitted in execution order; error paths simply stop recording
        where the pipeline stopped.  Phase *attrs* carry only
        workload-determined values — notably, the cache phase does NOT
        say hit/miss, and a hit's ``render`` span reports the cached
        entry it reused — because hit/miss placement is a worker-local
        accident and the merged trace must be byte-identical at any
        worker count.  Hit ratios live in metrics, where they belong.
        """
        if self.rate_limiter is not None:
            if rec is not None:
                rec.start("limiter")
            key = headers.get("x-client-id") or client
            decision = self.rate_limiter.check(f"{name}:{key}")
            if rec is not None:
                rec.end()
            if not decision.allowed:
                self._rate_limited.inc_key((str(decision.banned).lower(),))
                response = Response.error(
                    429,
                    "rate-limited",
                    (
                        "temporarily banned"
                        if decision.banned
                        else "request quota exceeded"
                    ),
                    retryAfter=round(decision.retry_after, 6),
                    banned=decision.banned,
                )
                response.headers.append(
                    # The header is integer-valued (RFC 9110); round up
                    # so honoring it always lands after the reset.
                    ("Retry-After", str(max(1, math.ceil(decision.retry_after))))
                )
                return response
        if rec is not None:
            rec.start("parse")
        try:
            try:
                query = decode_query_params(params)
            except ProtocolError as error:
                return Response.error(400, "bad-request", str(error))
            except (ValueError, KeyError) as error:
                return Response.error(400, "bad-request", str(error))
            try:
                page_number = int(params.get("page", ["1"])[0])
            except ValueError:
                return Response.error(
                    400, "bad-request", "page must be an integer"
                )
            format = params.get("format", ["json"])[0]
            if format not in FORMATS:
                return Response.error(
                    400, "bad-request", f"format must be one of {FORMATS}"
                )
        finally:
            if rec is not None:
                rec.end()
        lock = self._locks[name]
        cache = self.page_cache
        cache_key = (name, format, page_number, query)
        if rec is not None and cache is not None:
            rec.start("cache")
        entry = cache.get(cache_key) if cache is not None else None
        if rec is not None and cache is not None:
            rec.end()
        if entry is not None:
            # Cache hit: the source's submit path is skipped entirely,
            # but the communication round is charged exactly as it
            # would have been — same query, same page, same record
            # count (zero for cached out-of-range answers, matching
            # the PaginationError path).  The lock hold shrinks to
            # this one log append.
            with lock:
                source.log.record(query, page_number, entry.records)
            if rec is not None:
                rec.mark(
                    "render", records=entry.records, bytes=len(entry.body)
                )
        else:
            if rec is not None:
                rec.start("render")
            try:
                with lock:
                    page = source.submit(query, page_number)
            except UnsupportedQueryError as error:
                # No round was charged (the form rejected the query
                # before submission) — never cached, so a hit can
                # never charge a round the in-process lane would not.
                return Response.error(400, "unsupported-query", str(error))
            except PaginationError as error:
                # The round was charged (the client had to ask to find
                # out), exactly like the in-process lane.  The answer
                # is as pure as a result page, so cache it too.
                response = Response.error(
                    404, "page-out-of-range", str(error)
                )
                entry = CachedPage.build(
                    404, response.content_type, response.body, records=0
                )
                if cache is not None:
                    cache.put(cache_key, entry)
                if rec is not None:
                    rec.end(records=0, bytes=len(entry.body))
            else:
                # Render outside the lock: serialization is pure.
                if format == "xml":
                    body = render_page(page).encode("utf-8")
                    content_type = "application/xml; charset=utf-8"
                else:
                    body = render_page_json(page).encode("utf-8")
                    content_type = "application/json"
                entry = CachedPage.build(
                    200, content_type, body, records=len(page.records)
                )
                if cache is not None:
                    cache.put(cache_key, entry)
                if rec is not None:
                    rec.end(
                        records=entry.records, bytes=len(entry.body)
                    )
        if rec is not None:
            rec.start("serialize")
        try:
            if entry.status == 200:
                if etag_matches(headers.get("if-none-match", ""), entry.etag):
                    # Round already charged above — a 304 costs the
                    # client a communication round like any other page
                    # request.
                    return Response(
                        304, b"", entry.content_type,
                        headers=[("ETag", entry.etag)],
                    )
                return Response(
                    entry.status,
                    entry.body,
                    entry.content_type,
                    headers=[("ETag", entry.etag)],
                )
            return Response(entry.status, entry.body, entry.content_type)
        finally:
            if rec is not None:
                rec.end()

    def _truth(
        self,
        name: str,
        source,
        tail: List[str],
        params: Mapping[str, List[str]],
    ) -> Response:
        if tail == ["size"]:
            with self._locks[name]:
                return Response.json({"size": source.truth_size()})
        if tail in (["seeds"], ["sample"]):
            try:
                count = int(params.get("n", ["1"])[0])
                seed = int(params.get("seed", ["0"])[0])
                min_frequency = int(params.get("min_frequency", ["1"])[0])
            except ValueError:
                return Response.error(
                    400, "bad-request", "n/seed/min_frequency must be integers"
                )
            count = max(1, min(count, 10_000))
            with self._locks[name]:
                if tail == ["seeds"]:
                    # Mirrors the in-process lane exactly: CLI crawls
                    # draw seeds with sample_seed_values, so a remote
                    # crawl at the same seed starts identically.
                    from repro.experiments.harness import sample_seed_values

                    values = sample_seed_values(
                        source.table,
                        count,
                        random.Random(seed),
                        min_frequency=min_frequency,
                    )
                else:
                    rng = random.Random(seed)
                    queriable = set(source.table.schema.queriable)
                    pool = [
                        pair
                        for pair in source.table.distinct_values()
                        if pair.attribute in queriable
                    ]
                    rng.shuffle(pool)
                    values = pool[:count]
            return Response.json(
                {"values": [[v.attribute, v.value] for v in values]}
            )
        return Response.error(
            404, "not-found", f"no truth route for {'/'.join(tail)}"
        )


# ----------------------------------------------------------------------
# asyncio transport
# ----------------------------------------------------------------------
class AsyncSourceServer:
    """HTTP/1.1 over ``asyncio.start_server`` — stdlib only.

    Supports GET/HEAD with keep-alive.  ``close()`` is graceful and
    complete: the listening socket stops, every open connection is
    closed, and every per-connection task is awaited — the "no leaked
    tasks/sockets" guarantee the CI smoke job asserts.
    """

    MAX_REQUEST_LINE = 16 * 1024
    MAX_HEADER_BYTES = 64 * 1024

    def __init__(
        self,
        service: SourceService,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._active = service.registry.gauge(
            "net_server_active_connections",
            "Open client connections right now.",
        )
        self.requests_served = 0

    async def start(self, sock=None) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port).

        Pass a pre-bound listening ``sock`` to serve on a socket the
        caller configured (the cluster lane binds its own
        ``SO_REUSEPORT`` sockets so sibling workers share one port).
        """
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.port
            )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def adopt(self, sock) -> None:
        """Serve one already-accepted connection socket.

        The cluster's threaded fallback accepts on a single parent
        socket and hands connections to worker loops round-robin; this
        wraps the raw socket in the same stream pair
        ``asyncio.start_server`` would have produced and runs the
        normal keep-alive handler on it.
        """
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(loop=loop)
        protocol = asyncio.StreamReaderProtocol(reader, loop=loop)
        transport, _ = await loop.connect_accepted_socket(
            lambda: protocol, sock
        )
        writer = asyncio.StreamWriter(transport, protocol, reader, loop)
        await self._on_connection(reader, writer)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        # Closing the writers unblocks their handler coroutines; give
        # the loop a tick to let them finish and deregister.
        for _ in range(10):
            if not self._connections:
                break
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self._active.set_key((), len(self._connections))
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers = request
                response = self.service.handle(method, target, headers, client)
                keep_alive = headers.get("connection", "").lower() != "close"
                self._write_response(
                    writer, response, head_only=(method == "HEAD"),
                    keep_alive=keep_alive,
                )
                await writer.drain()
                self.requests_served += 1
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.TimeoutError,
            TimeoutError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            self._active.set_key((), len(self._connections))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.idle_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            return None
        if not line:
            return None
        if len(line) > self.MAX_REQUEST_LINE:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > self.MAX_HEADER_BYTES:
                return None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        head_only: bool,
        keep_alive: bool,
    ) -> None:
        reason = _STATUS_REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers:
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head if head_only else head + response.body)


# ----------------------------------------------------------------------
# http.server fallback (threads, no event loop)
# ----------------------------------------------------------------------
class ThreadedSourceServer:
    """The same service over ``http.server.ThreadingHTTPServer``.

    One thread per connection; :class:`SourceService`'s lock keeps the
    mounted sources consistent.  Useful where the process cannot own an
    event loop; the asyncio front end is the primary lane.
    """

    def __init__(
        self, service: SourceService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        outer = service

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self, head_only: bool) -> None:
                headers = {
                    name.lower(): value for name, value in self.headers.items()
                }
                response = outer.handle(
                    self.command, self.path, headers, self.client_address[0]
                )
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self.send_header("Content-Length", str(len(response.body)))
                for name, value in response.headers:
                    self.send_header(name, value)
                self.end_headers()
                if not head_only:
                    self.wfile.write(response.body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                self._serve(head_only=False)

            def do_HEAD(self) -> None:  # noqa: N802 - http.server API
                self._serve(head_only=True)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


# ----------------------------------------------------------------------
# Background-thread wrapper around the asyncio server
# ----------------------------------------------------------------------
class ServerThread:
    """Run an :class:`AsyncSourceServer` on a dedicated thread.

    ``start()`` blocks until the socket is bound and returns the base
    URL; ``stop()`` shuts the server down cleanly and joins the
    thread.  Context-manager friendly::

        with ServerThread(service) as url:
            crawl(RemoteWebDatabase(url))
    """

    def __init__(
        self,
        service: SourceService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.server = AsyncSourceServer(service, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> str:
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to bind: {self._startup_error}"
            ) from self._startup_error
        return self.server.url

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.close())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
