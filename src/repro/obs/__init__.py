"""repro.obs — distributed observability for remote crawls.

Stitches the client and server halves of a remote crawl into one
causal trace (``X-Repro-Trace`` propagation + server-side request
spans + ``repro trace stitch``), exposes a live ops surface
(``/debug/*`` endpoints + ``repro top``), and offers an opt-in
sampling profiler whose samples attach to the active span.  See
DESIGN.md §10.
"""

from repro.obs.console import fetch_status, render_frame, run_top, tail_metrics
from repro.obs.context import HEADER_NAME, CrawlTraceContext
from repro.obs.profiler import SamplingProfiler
from repro.obs.server_trace import (
    SERVER_PHASES,
    SERVER_SPAN_NAMES,
    RequestRecorder,
    ServerSpanTracer,
    merge_groups,
    parse_trace_header,
    write_server_trace,
)
from repro.obs.stitch import stitch_traces

__all__ = [
    "CrawlTraceContext",
    "HEADER_NAME",
    "RequestRecorder",
    "SERVER_PHASES",
    "SERVER_SPAN_NAMES",
    "SamplingProfiler",
    "ServerSpanTracer",
    "fetch_status",
    "merge_groups",
    "parse_trace_header",
    "render_frame",
    "run_top",
    "stitch_traces",
    "tail_metrics",
    "write_server_trace",
]
