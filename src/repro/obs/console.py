"""``repro top`` — a refresh-loop terminal view of a running service.

The console is a thin client over the ``/debug/status`` endpoint (one
HTTP GET per refresh; on a cluster the endpoint already returns the
*merged* snapshot, so the console needs no cluster awareness).  Rates
are computed client-side from consecutive snapshots — rounds/sec is
``Δrounds / Δt`` between frames, not a server-side average — so the
view reacts at refresh granularity.

Crawl-side signals the server can't know (frontier depth, per-source
fleet allocation) come from tailing the crawler's metrics JSONL file
when ``--metrics-jsonl`` is given: the last snapshot line is parsed and
gauges/counters of interest are folded into the frame.

Everything network- and clock-shaped is injectable (``fetch``, ``out``,
``iterations``) so tests drive the console without sockets or sleeps.
"""

from __future__ import annotations

import http.client
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional, TextIO, Union

PathLike = Union[str, Path]

#: ANSI "clear screen, home cursor" prefix used between live frames.
CLEAR = "\x1b[2J\x1b[H"


def fetch_status(
    host: str, port: int, timeout: float = 5.0
) -> dict:
    """GET ``/debug/status`` and return the parsed JSON payload."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/debug/status")
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            raise RuntimeError(
                f"/debug/status returned {response.status}"
            )
        return json.loads(body)
    finally:
        conn.close()


def tail_metrics(path: PathLike) -> Dict[str, float]:
    """Flatten the last ``repro-metrics/1`` snapshot into name→value.

    Labelled samples render as ``name{k=v,...}``; histograms contribute
    their count.  Returns ``{}`` when the file is missing or empty —
    the console degrades, it never crashes on a racing writer.
    """
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError:
        return {}
    for line in reversed(lines):
        if not line.strip():
            continue
        try:
            snapshot = json.loads(line)
        except json.JSONDecodeError:
            continue  # partially-written trailing line
        if snapshot.get("schema") != "repro-metrics/1":
            continue
        flat: Dict[str, float] = {}
        for sample in snapshot.get("samples", ()):
            name = sample.get("name", "?")
            labels = sample.get("labels") or {}
            if labels:
                rendered = ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                )
                name = f"{name}{{{rendered}}}"
            value = sample.get("value")
            if isinstance(value, dict):  # histogram
                value = value.get("count", 0)
            try:
                flat[name] = float(value)
            except (TypeError, ValueError):
                continue
        return flat
    return {}


def _ratio(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def render_frame(
    status: dict,
    prev: Optional[dict] = None,
    elapsed: Optional[float] = None,
    metrics: Optional[Dict[str, float]] = None,
) -> str:
    """One frame of the console as a multi-line string."""
    lines = []
    mode = status.get("mode", "?")
    workers = status.get("workers", 1)
    uptime = status.get("uptime_s", 0.0)
    merged = " merged" if status.get("merged") else ""
    lines.append(
        f"repro top — {mode} x{workers}{merged} | "
        f"up {uptime:,.1f}s | requests {status.get('requests_handled', 0):,}"
    )

    rounds = status.get("rounds", {})
    total_rounds = rounds.get("total", 0)
    rate = ""
    if prev is not None and elapsed and elapsed > 0:
        delta = total_rounds - prev.get("rounds", {}).get("total", 0)
        rate = f" ({delta / elapsed:,.1f}/s)"
    lines.append(f"rounds   {total_rounds:,}{rate}")

    cache = status.get("cache")
    if cache:
        hit_ratio = _ratio(cache.get("hits", 0), cache.get("misses", 0))
        ratio_text = (
            "n/a" if hit_ratio is None else f"{hit_ratio * 100:.1f}%"
        )
        lines.append(
            f"cache    hit {ratio_text} | "
            f"hits {cache.get('hits', 0):,} misses {cache.get('misses', 0):,} "
            f"evict {cache.get('evictions', 0):,} "
            f"entries {cache.get('entries', 0):,}"
        )

    limiter = status.get("limiter")
    if limiter:
        lines.append(
            f"limiter  denials {limiter.get('denials', 0):,} "
            f"bans {limiter.get('bans_issued', 0):,}"
        )

    spans = status.get("spans")
    if spans and spans.get("tracing"):
        lines.append(
            f"spans    {spans.get('groups', 0):,} recorded "
            f"({spans.get('dropped', 0):,} dropped)"
        )

    per_source = rounds.get("per_source") or {}
    if per_source:
        top = sorted(
            per_source.items(), key=lambda item: (-item[1], item[0])
        )[:8]
        lines.append("source rounds:")
        for name, count in top:
            lines.append(f"  {name:<24} {count:,}")

    if metrics:
        frontier = metrics.get("frontier_pending")
        if frontier is not None:
            lines.append(f"frontier {int(frontier):,} pending")
        fleet = {
            name: value
            for name, value in sorted(metrics.items())
            if name.startswith("fleet_")
        }
        if fleet:
            lines.append("fleet:")
            for name, value in list(fleet.items())[:8]:
                lines.append(f"  {name:<32} {value:,.0f}")
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    metrics_jsonl: Optional[PathLike] = None,
    fetch: Optional[Callable[[], dict]] = None,
    out: Optional[TextIO] = None,
    clear: bool = True,
) -> int:
    """Refresh loop; returns the number of frames rendered.

    ``iterations=None`` runs until interrupted (the CLI's live mode);
    tests pass a small count plus injected ``fetch``/``out``.
    """
    fetch = fetch or (lambda: fetch_status(host, port))
    out = out or sys.stdout
    prev: Optional[dict] = None
    prev_at: Optional[float] = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                status = fetch()
            except Exception as exc:
                out.write(f"repro top: fetch failed: {exc}\n")
                out.flush()
                if iterations is not None:
                    frames += 1
                    if frames >= iterations:
                        break
                time.sleep(interval)
                continue
            now = time.monotonic()
            elapsed = None if prev_at is None else now - prev_at
            metrics = (
                tail_metrics(metrics_jsonl) if metrics_jsonl else None
            )
            frame = render_frame(status, prev, elapsed, metrics)
            if clear and frames:
                out.write(CLEAR)
            out.write(frame + "\n")
            out.flush()
            prev, prev_at = status, now
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames
