"""CrawlTraceContext — the client half of cross-lane trace propagation.

:class:`~repro.trace.sink.TraceSink` derives every span id from the
step number and in-step event order alone.  This sink subscribes to
the *same* event bus and mirrors exactly the id assignment the trace
sink performs (``StepStarted`` → step ``s{N}``, ``QueryIssued`` →
``s{N}/q{i}``), so at any moment it can name the span id a page fetch
*will* get — ``s{N}/q{i}/p{page}`` — before the request goes on the
wire.  :class:`~repro.net.client.RemoteWebDatabase` reads that id when
it schedules a fetch and sends it in the ``X-Repro-Trace`` header; the
server opens child spans under it, and ``repro trace stitch`` later
joins the two files on those ids.

Determinism is inherited: the ids are functions of the crawl alone
(never of wall clocks or scheduling), so the propagated context — and
therefore the server's span file — is identical run over run and at
any server worker count.

The context also doubles as the :mod:`repro.obs.profiler`'s label
source: :meth:`current_label` names the active span so profile samples
attach to the query being worked on.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.events import (
    CrawlEvent,
    EventSink,
    QueryIssued,
    StepStarted,
)

#: Separator between the trace id, parent span id, and attempt number
#: in the ``X-Repro-Trace`` header value.
HEADER_NAME = "X-Repro-Trace"


class CrawlTraceContext(EventSink):
    """Track the active span id off the event bus (see module docs).

    Parameters
    ----------
    trace_id:
        Deterministic identifier for this crawl's trace, carried in
        every propagated header.  Derive it from crawl inputs (the CLI
        uses ``{policy}-s{seed}``) — never from clocks or PIDs, or the
        server-side trace stops being byte-comparable across runs.
    """

    #: Phase events switch on engine instrumentation; the context only
    #: consumes StepStarted/QueryIssued, but declaring the interest
    #: keeps it self-sufficient when attached without a TraceSink.
    wants_phases = True

    def __init__(self, trace_id: str = "crawl") -> None:
        if ";" in trace_id or not trace_id:
            raise ValueError(
                f"trace_id must be non-empty and ';'-free, got {trace_id!r}"
            )
        self.trace_id = trace_id
        self._step: Optional[int] = None
        self._qid: Optional[str] = None
        self._q = 0

    # ------------------------------------------------------------------
    def handle(self, event: CrawlEvent) -> None:
        kind = type(event)
        if kind is QueryIssued:
            if self._step is None:
                return
            # Mirrors TraceSink exactly: the i-th query of step N is
            # span s{N}/q{i}.  QueryIssued is emitted by the prober
            # *before* the source's submit() runs, so the client's
            # fetch scheduling always sees the current query's id.
            self._qid = f"s{self._step}/q{self._q}"
            self._q += 1
        elif kind is StepStarted:
            self._step = event.step
            self._q = 0
            self._qid = None

    # ------------------------------------------------------------------
    def fetch_parent(self, page_number: int) -> Optional[str]:
        """The span id the fetch of ``page_number`` will be assigned.

        ``None`` outside an active query (descriptor/truth requests
        carry no trace context).
        """
        if self._qid is None:
            return None
        return f"{self._qid}/p{page_number}"

    def current_label(self) -> Optional[str]:
        """Active span label for profiler samples (query, else step)."""
        if self._qid is not None:
            return self._qid
        if self._step is not None:
            return f"s{self._step}"
        return None

    def wire_header(self, page_number: int, attempt: int = 0):
        """``(name, value)`` header pair for a page fetch, or ``None``."""
        parent = self.fetch_parent(page_number)
        if parent is None:
            return None
        return (HEADER_NAME, f"{self.trace_id};{parent};{attempt}")
