"""Opt-in sampling profiler whose samples attach to the active span.

A background daemon thread wakes every ``interval`` seconds, grabs the
target thread's current stack via :func:`sys._current_frames` (a
C-level snapshot — the target is never interrupted, no signals, no
tracing hooks), and counts the collapsed stack.  The cost to the
profiled thread is therefore near zero regardless of what it is doing;
the profiler thread itself does O(stack depth) work per sample, which
at the default 5 ms interval is well under the 5% overhead budget the
benchmarks pin.

Each sample is prefixed with the label of the *active span* — supplied
by :meth:`repro.obs.context.CrawlTraceContext.current_label` (the query
currently being probed, else the step) — so the folded output answers
"where did query s3/q7 spend its time", not just "where did Python
spend its time".

Output is the flamegraph *folded* format the trace analyzer already
emits (``frame;frame;frame count``), so the same downstream tooling
renders both.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter
from pathlib import Path
from typing import Callable, List, Optional, Union

PathLike = Union[str, Path]

#: Frames deeper than this are summarized as a ``...`` sentinel; keeps
#: pathological recursion from bloating sample keys.
MAX_DEPTH = 64


class SamplingProfiler:
    """Sample one thread's stacks into span-labelled folded counts.

    Parameters
    ----------
    interval:
        Seconds between samples.  5 ms default ≈ 200 Hz, plenty for
        crawl-scale attribution while staying far under budget.
    label_provider:
        Zero-arg callable naming the active span (``None``/raising →
        the sample files under ``idle``).  Pass a
        ``CrawlTraceContext.current_label`` bound method to attach
        samples to the crawl's spans.
    target_thread:
        Thread to sample; defaults to the *constructing* thread, which
        is the crawl thread in the CLI wiring.
    """

    def __init__(
        self,
        interval: float = 0.005,
        label_provider: Optional[Callable[[], Optional[str]]] = None,
        target_thread: Optional[threading.Thread] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._label_provider = label_provider
        self._target = target_thread or threading.current_thread()
        self._samples: Counter = Counter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.sample_count = 0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        ident = self._target.ident
        while not self._stop.wait(self.interval):
            if ident is None:
                ident = self._target.ident
                continue
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            self._record(frame)

    def _record(self, frame) -> None:
        stack: List[str] = []
        depth = 0
        while frame is not None:
            if depth >= MAX_DEPTH:
                stack.append("...")
                break
            code = frame.f_code
            stack.append(
                f"{os.path.basename(code.co_filename)}:{code.co_name}"
            )
            frame = frame.f_back
            depth += 1
        stack.reverse()
        label = None
        if self._label_provider is not None:
            try:
                label = self._label_provider()
            except Exception:
                label = None
        key = ";".join([label or "idle", *stack])
        self._samples[key] += 1
        self.sample_count += 1

    # ------------------------------------------------------------------
    def folded(self) -> List[str]:
        """Folded-format lines, sorted for determinism."""
        return [
            f"{key} {count}"
            for key, count in sorted(self._samples.items())
        ]

    def write_folded(self, path: PathLike) -> int:
        lines = self.folded()
        Path(path).write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8"
        )
        return len(lines)
