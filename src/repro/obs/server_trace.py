"""Server-side request spans: recording, merging, and span-JSONL output.

Every query request that arrives with an ``X-Repro-Trace`` header
(injected by :class:`~repro.net.client.RemoteWebDatabase` via
:class:`~repro.obs.context.CrawlTraceContext`) becomes one span
*group* on the serving worker::

    s3/q0/p2/srv            request      (root; parent null on the server,
    ├── s3/q0/p2/srv/limiter  limiter     rewritten to the client fetch
    ├── s3/q0/p2/srv/parse    parse       span s3/q0/p2 at stitch time)
    ├── s3/q0/p2/srv/cache    cache
    ├── s3/q0/p2/srv/render   render
    └── s3/q0/p2/srv/serialize serialize

Retried attempts stay distinct (attempt ``k > 0`` roots at
``…/srv{k}``), so a client retry that reached the server twice never
collides.

**Placement invariance.**  Which worker records a group depends on
kernel connection hashing; the merge does not: groups sort by
``(trace id, step, query index, page, attempt)`` — all parsed from the
propagated context, none from arrival order — and ``seq`` numbers are
assigned only at write time, over the sorted stream.  Canonical span
payloads carry only workload-determined attrs (source, page, status,
record/byte counts); cache hits and misses produce the *identical*
skeleton (a hit's ``render`` span reports the cached entry it avoided
re-rendering), because hit/miss placement is a worker-local accident.
The result: the merged server trace is byte-identical for the same
crawl at any worker count.  (Caveat: per-worker rate limiters make
429s placement-dependent; byte-comparison assumes an unthrottled run,
which is how the CI smoke job runs.)

Wall/CPU phase durations ride in the same optional, non-canonical
``"t"`` field client traces use.
"""

from __future__ import annotations

import json
import re
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.trace.spans import TRACE_SCHEMA

PathLike = Union[str, Path]

#: Context ids a client propagates: the span id of a page fetch.
_CTX_RE = re.compile(r"^s(\d+)/q(\d+)/p(\d+)$")

#: Server-side root span ids (for the stitcher).
SRV_ROOT_RE = re.compile(r"^(s\d+/q\d+/p\d+)/srv(\d*)$")

#: The per-request phases, in emission order.
SERVER_PHASES = ("limiter", "parse", "cache", "render", "serialize")

#: All span names this module emits.
SERVER_SPAN_NAMES = frozenset({"request", *SERVER_PHASES})


def parse_trace_header(value: Optional[str]):
    """Parse ``trace_id;parent;attempt`` → tuple, or ``None``.

    Tolerant by design: a malformed header means "no tracing", never an
    error — observability must not change what the wire says.
    """
    if not value:
        return None
    parts = value.split(";")
    if len(parts) < 2:
        return None
    trace_id = parts[0].strip()
    parent = parts[1].strip()
    match = _CTX_RE.match(parent)
    if not trace_id or match is None:
        return None
    attempt = 0
    if len(parts) >= 3:
        try:
            attempt = max(0, int(parts[2]))
        except ValueError:
            attempt = 0
    step, q_index, page = (int(g) for g in match.groups())
    return trace_id, parent, step, q_index, page, attempt


class RequestRecorder:
    """Collects one request's phases; committed as a span group."""

    __slots__ = (
        "trace_id",
        "ctx",
        "step",
        "q_index",
        "page",
        "attempt",
        "include_timings",
        "phases",
        "source",
        "_name",
        "_wall0",
        "_cpu0",
    )

    def __init__(
        self,
        trace_id: str,
        ctx: str,
        step: int,
        q_index: int,
        page: int,
        attempt: int,
        include_timings: bool,
    ) -> None:
        self.trace_id = trace_id
        self.ctx = ctx
        self.step = step
        self.q_index = q_index
        self.page = page
        self.attempt = attempt
        self.include_timings = include_timings
        #: ``[(phase_name, attrs_dict, wall_s, cpu_s), ...]``
        self.phases: List[Tuple[str, dict, float, float]] = []
        self.source: Optional[str] = None
        self._name: Optional[str] = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def start(self, name: str) -> None:
        self._name = name
        if self.include_timings:
            self._wall0 = time.perf_counter()
            self._cpu0 = time.process_time()

    def end(self, **attrs) -> None:
        if self._name is None:  # pragma: no cover - defensive
            return
        wall = cpu = 0.0
        if self.include_timings:
            wall = time.perf_counter() - self._wall0
            cpu = time.process_time() - self._cpu0
        self.phases.append((self._name, attrs, wall, cpu))
        self._name = None

    def mark(self, name: str, **attrs) -> None:
        """A zero-duration phase (e.g. a cache hit's ``render``)."""
        self.phases.append((name, attrs, 0.0, 0.0))


class ServerSpanTracer:
    """Owns the span groups one worker records (thread-safe).

    Parameters
    ----------
    include_timings:
        Attach wall/CPU durations (non-canonical ``"t"`` field).  Off
        for canonical, byte-comparable traces.
    max_groups:
        Memory bound; requests beyond it are counted in
        :attr:`dropped` instead of recorded.
    """

    def __init__(
        self, include_timings: bool = True, max_groups: int = 250_000
    ) -> None:
        self.include_timings = include_timings
        self.max_groups = max_groups
        self.groups: List[dict] = []
        self.dropped = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def begin(self, header_value: Optional[str]) -> Optional[RequestRecorder]:
        parsed = parse_trace_header(header_value)
        if parsed is None:
            return None
        trace_id, ctx, step, q_index, page, attempt = parsed
        return RequestRecorder(
            trace_id, ctx, step, q_index, page, attempt, self.include_timings
        )

    def commit(self, rec: RequestRecorder, status: int) -> None:
        group = {
            "trace": rec.trace_id,
            "ctx": rec.ctx,
            "step": rec.step,
            "q": rec.q_index,
            "page": rec.page,
            "attempt": rec.attempt,
            "source": rec.source,
            "status": status,
            "phases": [
                [name, attrs, wall, cpu]
                for name, attrs, wall, cpu in rec.phases
            ],
        }
        with self._lock:
            if len(self.groups) >= self.max_groups:
                self.dropped += 1
            else:
                self.groups.append(group)

    # ------------------------------------------------------------------
    def payload(self) -> List[dict]:
        """All recorded groups (pickle/JSON-safe, for the control plane)."""
        with self._lock:
            return list(self.groups)

    def tail(self, limit: int = 50) -> List[dict]:
        with self._lock:
            return list(self.groups[-max(0, limit):])

    def stats(self) -> dict:
        with self._lock:
            return {"groups": len(self.groups), "dropped": self.dropped}


# ----------------------------------------------------------------------
# Merging and span-JSONL output
# ----------------------------------------------------------------------
def group_sort_key(group: dict) -> tuple:
    """Placement-invariant order: by propagated context, never arrival."""
    return (
        group["trace"],
        group["step"],
        group["q"],
        group["page"],
        group["attempt"],
    )


def merge_groups(payloads: Sequence[Sequence[dict]]) -> List[dict]:
    """Fold per-worker group lists into one sorted stream."""
    merged = [group for payload in payloads for group in payload]
    merged.sort(key=group_sort_key)
    return merged


def group_root_id(group: dict) -> str:
    suffix = "" if group["attempt"] == 0 else str(group["attempt"])
    return f"{group['ctx']}/srv{suffix}"


def _attrs_json(attrs: dict) -> str:
    return json.dumps(attrs, separators=(",", ":"))


def _span_line(
    span_id: str,
    parent: Optional[str],
    name: str,
    step: int,
    seq: int,
    attrs_json: str,
    wall: Optional[float] = None,
    cpu: Optional[float] = None,
) -> str:
    parent_lit = "null" if parent is None else f'"{parent}"'
    base = (
        f'{{"id":"{span_id}","parent":{parent_lit},"name":"{name}",'
        f'"step":{step},"seq":{seq},"attrs":{attrs_json}'
    )
    if wall is None:
        return base + "}"
    # Same rendering TraceSink uses: integer nanoseconds with an e-9
    # exponent, so timed server spans read identically to client ones.
    return (
        f'{base},"t":{{"ws":{int(round(wall * 1e9))}e-9,'
        f'"cs":{int(round(cpu * 1e9))}e-9}}}}'
    )


def group_span_lines(
    group: dict,
    seq_start: int,
    parent: Optional[str] = None,
    timed: bool = True,
) -> List[str]:
    """Render one group as span lines, root first.

    ``parent`` rewrites the root's parent (the stitcher points it at
    the client fetch span; standalone server files leave it null).
    Returns the lines; the caller advances its seq counter by
    ``len(lines)``.
    """
    root_id = group_root_id(group)
    step = group["step"]
    root_attrs = {
        "source": group["source"],
        "page": group["page"],
        "status": group["status"],
    }
    if group["attempt"]:
        root_attrs["attempt"] = group["attempt"]
    seq = seq_start
    wall_total = cpu_total = 0.0
    for _name, _attrs, wall, cpu in group["phases"]:
        wall_total += wall
        cpu_total += cpu
    lines = [
        _span_line(
            root_id,
            parent,
            "request",
            step,
            seq,
            _attrs_json(root_attrs),
            wall_total if timed else None,
            cpu_total if timed else None,
        )
    ]
    for name, attrs, wall, cpu in group["phases"]:
        seq += 1
        lines.append(
            _span_line(
                f"{root_id}/{name}",
                root_id,
                name,
                step,
                seq,
                _attrs_json(attrs),
                wall if timed else None,
                cpu if timed else None,
            )
        )
    return lines


def write_server_trace(
    path: PathLike,
    groups: Sequence[dict],
    include_timings: bool = True,
) -> int:
    """Write merged groups as a ``repro-trace/1`` file; returns spans.

    Groups are sorted placement-invariantly and ``seq`` runs over the
    sorted stream, so the same workload yields the same bytes at any
    worker count.  Multiple trace ids (several clients against one
    service) become task segments, one per trace id.
    """
    ordered = merge_groups([groups])
    trace_ids = sorted({group["trace"] for group in ordered})
    path = Path(path)
    total = 0
    with open(path, "w", encoding="utf-8") as handle:
        header = {"schema": TRACE_SCHEMA, "side": "server"}
        if len(trace_ids) == 1:
            header["trace"] = trace_ids[0]
        handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        for trace_id in trace_ids:
            if len(trace_ids) > 1:
                handle.write(
                    json.dumps(
                        {"task": trace_id}, separators=(",", ":")
                    )
                    + "\n"
                )
            seq = 0
            for group in ordered:
                if group["trace"] != trace_id:
                    continue
                lines = group_span_lines(
                    group, seq, timed=include_timings
                )
                seq += len(lines)
                total += len(lines)
                handle.write("\n".join(lines) + "\n")
    return total


def group_public(group: dict) -> dict:
    """The ops-console view of one group (``/debug/spans``)."""
    return {
        "id": group_root_id(group),
        "trace": group["trace"],
        "source": group["source"],
        "page": group["page"],
        "status": group["status"],
        "attempt": group["attempt"],
        "phases": [phase[0] for phase in group["phases"]],
        "wall_s": round(sum(p[2] for p in group["phases"]), 6),
    }
