"""Stitch client and server span files into one causal trace.

``repro trace stitch`` joins the two halves of a remote crawl on span
ids: every server group's context (``s3/q0/p2``) *is* the id of the
client fetch span that caused it, so stitching is purely structural —
insert each server group's spans immediately after the matching client
fetch span, rewrite the server root's ``parent`` from ``null`` to the
fetch id, and renumber ``seq`` over the combined stream.

Two properties fall out of doing the join textually (lines are edited
with targeted substitutions, never round-tripped through ``json``):

* **Byte determinism** — both inputs are deterministic (client spans by
  construction, server spans by the placement-invariant merge), and the
  stitch adds nothing non-deterministic, so the stitched file is
  byte-identical for the same crawl at any worker count.  Timed
  (``"t"``) fields pass through bit-exactly rather than surviving a
  float parse/re-print.
* **Safety** — a malformed pairing can't silently corrupt: server
  groups with no client parent (e.g. prefetches the crawler never
  consumed, which still completed server-side) are dropped and counted,
  and the output still validates as ``repro-trace/1``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.server_trace import SRV_ROOT_RE
from repro.trace.spans import TRACE_SCHEMA

PathLike = Union[str, Path]

_SEQ_RE = re.compile(r'"seq":\d+')
_PARENT_NULL_RE = re.compile(r'"parent":null')


def _read_trace_lines(path: PathLike) -> Tuple[dict, List[str]]:
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {TRACE_SCHEMA!r}, "
            f"got {header.get('schema')!r}"
        )
    return header, [line for line in lines[1:] if line]


def _renumber(line: str, seq: int) -> str:
    return _SEQ_RE.sub(f'"seq":{seq}', line, count=1)


def _collect_server_groups(
    span_lines: List[str],
) -> Tuple[Dict[str, List[List[str]]], int]:
    """Group server lines by context id, preserving file order.

    Returns ``{ctx: [group_lines, ...]}`` (several groups per ctx when
    retries hit the server more than once) and the total group count.
    """
    groups: Dict[str, List[List[str]]] = {}
    current: Optional[List[str]] = None
    total = 0
    for line in span_lines:
        record = json.loads(line)
        if "id" not in record:
            # Task marker: multi-trace server files aren't stitchable
            # against a single client trace.
            raise ValueError(
                "server trace contains multiple task segments; stitch "
                "expects the server file for exactly one crawl"
            )
        match = SRV_ROOT_RE.match(record["id"])
        if match is not None and record.get("name") == "request":
            ctx = match.group(1)
            current = [line]
            groups.setdefault(ctx, []).append(current)
            total += 1
        elif current is not None:
            current.append(line)
        else:
            raise ValueError(
                f"server trace span {record['id']!r} precedes any "
                "request root"
            )
    return groups, total


def stitch_traces(
    client_path: PathLike,
    server_path: PathLike,
    out_path: PathLike,
) -> dict:
    """Join ``client_path`` + ``server_path`` → ``out_path``; stats.

    Returns ``{"client_spans", "server_groups", "stitched_groups",
    "orphan_groups", "total_spans"}``.
    """
    client_header, client_lines = _read_trace_lines(client_path)
    server_header, server_lines = _read_trace_lines(server_path)
    if server_header.get("side") != "server":
        raise ValueError(
            f"{server_path}: not a server-side trace "
            "(missing \"side\":\"server\" header)"
        )
    if any("task" in json.loads(line) and "id" not in json.loads(line)
           for line in client_lines):
        raise ValueError(
            "client trace contains task segments; stitch one task's "
            "trace at a time"
        )

    groups, group_total = _collect_server_groups(server_lines)

    header = dict(client_header)
    header["stitched"] = True
    if "trace" in server_header:
        header.setdefault("trace", server_header["trace"])

    out = [json.dumps(header, separators=(",", ":"))]
    seq = 0
    stitched = 0
    for line in client_lines:
        record = json.loads(line)
        out.append(_renumber(line, seq))
        seq += 1
        for group_lines in groups.pop(record["id"], []):
            stitched += 1
            root, *children = group_lines
            root = _PARENT_NULL_RE.sub(
                f'"parent":"{record["id"]}"', root, count=1
            )
            out.append(_renumber(root, seq))
            seq += 1
            for child in children:
                out.append(_renumber(child, seq))
                seq += 1

    orphans = sum(len(rest) for rest in groups.values())
    Path(out_path).write_text("\n".join(out) + "\n", encoding="utf-8")
    return {
        "client_spans": len(client_lines),
        "server_groups": group_total,
        "stitched_groups": stitched,
        "orphan_groups": orphans,
        "total_spans": seq,
    }
