"""Deterministic parallel fan-out for experiment grids.

The paper's evaluation protocol repeats every figure as a grid of
independent crawls — each policy run once per seed set, each crawl on a
fresh server with a fresh selector.  Those crawls share nothing but the
read-only :class:`~repro.core.table.RelationalTable`, so they
parallelize perfectly; this module fans a (policy × seed-set) grid out
over a process pool while keeping the *results* indistinguishable from
the sequential loop:

- **Seed derivation is preserved exactly.**  Task ``i`` of a policy's
  seed sets gets engine seed ``rng_seed + i`` — the same arithmetic the
  sequential harness uses — so every crawl's RNG stream is identical
  whether it runs in-process or in a worker.
- **The table ships once, not per task.**  Under the ``fork`` start
  method (the default on POSIX) the grid — table, server factory,
  policy factories — is published to a module global before the pool
  forks, so workers inherit it through copy-on-write and nothing heavy
  is pickled per task; each submitted work item is a bare task index.
  Under ``spawn`` the grid is pickled once per worker via the pool
  initializer; if it cannot be pickled (closures are legal grid
  factories) the map silently degrades to the sequential path rather
  than failing.
- **Results merge in fixed task order.**  Futures are collected in
  submission order, so a parallel :class:`PolicyRun` is bit-identical
  to the sequential one — same result order, same histories, same
  coverage curves.

``workers=1`` *is* the legacy sequential path: the same per-task
function runs inline in the calling process, in task order.

Per-task wall-clock timings are announced on the PR-1 event bus
(:class:`~repro.runtime.events.ExperimentTaskCompleted` /
:class:`~repro.runtime.events.ExperimentSuiteCompleted`) so
:func:`repro.analysis.reports.render_speedup_table` can show where the
time went and what the fan-out bought.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.values import AttributeValue
from repro.crawler.engine import CrawlerEngine, CrawlResult
from repro.metrics.registry import MetricsRegistry
from repro.metrics.telemetry import TelemetrySink
from repro.runtime.events import (
    EventBus,
    ExperimentSuiteCompleted,
    ExperimentTaskCompleted,
)

#: What CLI flags and keyword arguments accept for a worker count.
WorkerSpec = Union[int, str, None]


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------
def available_workers() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def parse_workers(text: WorkerSpec) -> Optional[int]:
    """Turn a CLI ``--workers`` value into ``None`` (auto) or an int."""
    if text is None or text == "" or str(text).lower() == "auto":
        return None
    count = int(text)
    if count < 1:
        raise ValueError(f"--workers must be >= 1 or 'auto', got {text!r}")
    return count


def resolve_workers(workers: WorkerSpec = None, n_tasks: Optional[int] = None) -> int:
    """Resolve a worker spec against the machine and the task count.

    ``None``/``"auto"`` use every available CPU; an explicit count is
    honoured as given (tests force multi-process runs on small
    machines this way).  Never more workers than tasks.
    """
    parsed = parse_workers(workers)
    count = available_workers() if parsed is None else parsed
    if n_tasks is not None:
        count = min(count, max(n_tasks, 1))
    return max(count, 1)


# ----------------------------------------------------------------------
# The generic deterministic map
# ----------------------------------------------------------------------
#: Parent-set state inherited by forked workers: ``(payload, fn)``.
_WORKER_STATE: Optional[tuple] = None


def _init_worker(blob: bytes) -> None:
    """Spawn-mode pool initializer: unpickle the shared state once."""
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(blob)


def _invoke(item: Any) -> Any:
    """Worker entry point: apply the shared ``fn`` to one item."""
    assert _WORKER_STATE is not None, "worker state was not initialized"
    payload, fn = _WORKER_STATE
    return fn(payload, item)


def parallel_map(
    fn: Callable[[Any, Any], Any],
    items: Iterable[Any],
    payload: Any = None,
    workers: WorkerSpec = None,
) -> List[Any]:
    """``[fn(payload, item) for item in items]`` over a process pool.

    Deterministic: results come back in item order regardless of which
    worker finished first.  ``payload`` is shipped to workers once (via
    fork inheritance, or one pickle per worker under spawn), never per
    item; items themselves should be small (indexes, labels).

    With one worker — or one item, or an unpicklable payload on a
    spawn-only platform — the map runs inline in the calling process,
    which is the exact legacy sequential path.
    """
    global _WORKER_STATE
    work = list(items)
    count = resolve_workers(workers, len(work))
    if count <= 1 or len(work) <= 1:
        return [fn(payload, item) for item in work]
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        context = multiprocessing.get_context("fork")
        _WORKER_STATE = (payload, fn)
        try:
            with ProcessPoolExecutor(max_workers=count, mp_context=context) as pool:
                futures = [pool.submit(_invoke, item) for item in work]
                return [future.result() for future in futures]
        finally:
            _WORKER_STATE = None
    try:
        blob = pickle.dumps((payload, fn))
    except Exception:
        # Closures over tables/selectors are legal grid factories; on a
        # spawn-only platform they cannot cross the process boundary,
        # so degrade to the (identical-result) sequential path.
        return [fn(payload, item) for item in work]
    with ProcessPoolExecutor(
        max_workers=count,
        mp_context=multiprocessing.get_context(),
        initializer=_init_worker,
        initargs=(blob,),
    ) as pool:
        futures = [pool.submit(_invoke, item) for item in work]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# Crawl grids
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrawlTask:
    """One independent crawl of an experiment grid.

    ``seed_index`` indexes the seed-set list and derives the engine
    seed (``grid.rng_seed + seed_index``) exactly as the sequential
    harness always has.  ``key`` carries an extra grid dimension — e.g.
    Figure 6's result limit — for the server factory to pick up.
    """

    label: str
    seed_index: int
    seeds: Tuple[AttributeValue, ...]
    key: Any = None


@dataclass
class CrawlGrid:
    """A full experiment grid: factories plus the task list.

    The factories run *inside workers* (after fork), so they may be
    closures over the shared read-only table/setup; every task builds a
    fresh server (fresh communication log) and a fresh selector, the
    same contract the sequential harness enforces.
    """

    make_server: Callable[[CrawlTask], Any]
    make_selector: Callable[[CrawlTask], Any]
    tasks: Tuple[CrawlTask, ...]
    rng_seed: int = 0
    crawl_kwargs: Mapping[str, Any] = field(default_factory=dict)
    engine_kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Attach a per-task :class:`~repro.metrics.telemetry.TelemetrySink`
    #: inside each worker and ship its registry state back with the
    #: result.  Wall-time tracking is disabled in workers so the merged
    #: registry is identical whether tasks ran sequentially or fanned
    #: out.  Usually set via ``run_crawl_grid(..., metrics=...)``.
    collect_metrics: bool = False
    #: Attach a per-task :class:`~repro.trace.sink.TraceSink` inside
    #: each worker and ship its span lines back for fixed-task-order
    #: merging.  Usually set via ``run_crawl_grid(..., trace=...)``.
    collect_trace: bool = False
    #: Whether worker trace spans carry wall/CPU timings.  Off for
    #: canonical (byte-comparable across worker counts *and* runs)
    #: traces; span ids/attrs are deterministic either way.
    trace_timings: bool = True
    #: Shared-memory payloads (e.g.
    #: :class:`~repro.core.shmtable.SharedTableHandle`) the grid's
    #: factories attach to inside workers.  The grid runner only
    #: accounts for them (the ``grid_shm_bytes`` gauge); creating and
    #: unlinking the blocks is the grid builder's job — see
    #: :func:`repro.experiments.harness.run_policy_suite`.
    shared_payloads: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class TaskTiming:
    """Wall-clock accounting for one completed grid task."""

    label: str
    seed_index: int
    seconds: float
    rounds: int
    records: int


@dataclass
class GridOutcome:
    """Everything a grid run produced, in fixed task order."""

    tasks: Tuple[CrawlTask, ...]
    results: List[CrawlResult]
    timings: List[TaskTiming]
    wall_seconds: float
    workers: int
    #: Merged per-task telemetry (only when metrics collection was on).
    metrics: Optional[MetricsRegistry] = None
    #: Path of the merged span-JSONL trace and its span count (only
    #: when trace collection was on).
    trace_path: Optional[str] = None
    trace_spans: int = 0

    @property
    def task_seconds(self) -> float:
        """Sum of per-task crawl time (the sequential-equivalent cost)."""
        return sum(timing.seconds for timing in self.timings)

    def by_label(self) -> Dict[str, List[CrawlResult]]:
        """Results grouped by task label, preserving first-seen order."""
        grouped: Dict[str, List[CrawlResult]] = {}
        for timing, result in zip(self.timings, self.results):
            grouped.setdefault(timing.label, []).append(result)
        return grouped


def _crawl_one(
    grid: CrawlGrid, index: int
) -> Tuple[CrawlResult, float, Optional[dict], Optional[List[str]]]:
    """Execute one grid task end to end (runs inside a worker).

    Returns ``(result, seconds, metrics_state, trace_lines)`` where
    ``metrics_state`` is the task's telemetry registry snapshot when
    ``grid.collect_metrics`` is set, and ``trace_lines`` the task's
    span-JSONL lines when ``grid.collect_trace`` is set.
    """
    task = grid.tasks[index]
    started = time.perf_counter()
    server = grid.make_server(task)
    selector = grid.make_selector(task)
    engine_kwargs = dict(grid.engine_kwargs)
    sink: Optional[TelemetrySink] = None
    tracer = None
    if grid.collect_metrics:
        truth = getattr(server, "truth_size", None)
        sink = TelemetrySink(
            truth_size=truth() if callable(truth) else None,
            track_wall_time=False,
        )
        bus = engine_kwargs.get("bus") or EventBus()
        bus.attach(sink)
        engine_kwargs["bus"] = bus
    if grid.collect_trace:
        from repro.trace.sink import TraceSink

        tracer = TraceSink(path=None, include_timings=grid.trace_timings)
        bus = engine_kwargs.get("bus") or EventBus()
        bus.attach(tracer)
        engine_kwargs["bus"] = bus
    engine = CrawlerEngine(
        server, selector, seed=grid.rng_seed + task.seed_index, **engine_kwargs
    )
    result = engine.crawl(list(task.seeds), **grid.crawl_kwargs)
    metrics_state = None
    if sink is not None:
        sink.sample_server(server)
        sink.sample_selector(selector, policy=result.policy)
        metrics_state = sink.registry.state_dict()
    trace_lines = tracer.collected if tracer is not None else None
    return result, time.perf_counter() - started, metrics_state, trace_lines


def run_crawl_grid(
    grid: CrawlGrid,
    workers: WorkerSpec = None,
    bus: Optional[EventBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[Union[str, "os.PathLike"]] = None,
    trace_timings: bool = True,
    trace_append: bool = False,
) -> GridOutcome:
    """Run every task of ``grid`` and merge results in task order.

    The parallel outcome is bit-identical to ``workers=1``: same seeds,
    same construction per task, same result order.  Per-task timings
    (and a suite summary) are emitted on ``bus`` when one is supplied.

    Passing ``metrics`` turns on per-task telemetry collection: each
    worker feeds a private registry and the returned state dicts are
    merged into ``metrics`` *in fixed task order*, so the merged totals
    are identical for any worker count.

    Passing ``trace`` (a path) turns on per-task span tracing: each
    worker's :class:`~repro.trace.sink.TraceSink` collects span lines
    and the merged ``repro-trace/1`` file is written in fixed task
    order — identical structure at any worker count, and byte-identical
    when ``trace_timings`` is off.
    """
    if metrics is not None and not grid.collect_metrics:
        grid = replace(grid, collect_metrics=True)
    if trace is not None and (
        not grid.collect_trace or grid.trace_timings != trace_timings
    ):
        grid = replace(grid, collect_trace=True, trace_timings=trace_timings)
    count = resolve_workers(workers, len(grid.tasks))
    started = time.perf_counter()
    rows = parallel_map(
        _crawl_one, range(len(grid.tasks)), payload=grid, workers=count
    )
    wall = time.perf_counter() - started
    results: List[CrawlResult] = []
    timings: List[TaskTiming] = []
    trace_tasks: List[Tuple[str, int, List[str]]] = []
    for task, (result, seconds, metrics_state, trace_lines) in zip(
        grid.tasks, rows
    ):
        label = task.label or result.policy
        results.append(result)
        timings.append(
            TaskTiming(
                label=label,
                seed_index=task.seed_index,
                seconds=seconds,
                rounds=result.communication_rounds,
                records=result.records_harvested,
            )
        )
        if metrics is not None and metrics_state is not None:
            metrics.merge(metrics_state)
        if trace is not None and trace_lines is not None:
            trace_tasks.append((label, task.seed_index, trace_lines))
    if metrics is not None and grid.shared_payloads:
        metrics.gauge(
            "grid_shm_bytes",
            "Bytes of shared-memory table payloads backing experiment grids",
        ).set(
            float(
                sum(
                    getattr(payload, "nbytes", 0)
                    for payload in grid.shared_payloads
                )
            )
        )
    trace_spans = 0
    if trace is not None:
        from repro.trace.sink import write_trace

        trace_spans = write_trace(trace, trace_tasks, append=trace_append)
    outcome = GridOutcome(
        tasks=grid.tasks,
        results=results,
        timings=timings,
        wall_seconds=wall,
        workers=count,
        metrics=metrics,
        trace_path=str(trace) if trace is not None else None,
        trace_spans=trace_spans,
    )
    if bus is not None and bus.has_sinks:
        for timing in timings:
            bus.emit(
                ExperimentTaskCompleted(
                    label=timing.label,
                    seed_index=timing.seed_index,
                    seconds=timing.seconds,
                    rounds=timing.rounds,
                    records=timing.records,
                ),
                policy=timing.label,
            )
        bus.emit(
            ExperimentSuiteCompleted(
                tasks=len(timings),
                workers=count,
                wall_seconds=wall,
                task_seconds=outcome.task_seconds,
            )
        )
    return outcome
