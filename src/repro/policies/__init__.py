"""Query-selection policies: naive, greedy link, MMMI, domain, oracle,
clique selection for multi-attribute sources, and the practical bundle."""

from repro.policies.adaptive import AdaptiveAttributeSelector
from repro.policies.base import QuerySelector
from repro.policies.domain import DomainKnowledgeSelector
from repro.policies.greedy import GreedyFrequencySelector, GreedyLinkSelector
from repro.policies.hybrid import GreedyMmmiSelector, SaturationDetector
from repro.policies.mmmi import MinMaxMutualInformationSelector
from repro.policies.multi import (
    GreedyCliqueSelector,
    RandomCliqueSelector,
    record_combinations,
)
from repro.policies.naive import (
    BreadthFirstSelector,
    DepthFirstSelector,
    RandomSelector,
)
from repro.policies.oracle import OracleSelector
from repro.policies.practical import (
    build_practical_crawler,
    build_practical_selector,
)

__all__ = [
    "AdaptiveAttributeSelector",
    "BreadthFirstSelector",
    "DepthFirstSelector",
    "DomainKnowledgeSelector",
    "GreedyCliqueSelector",
    "GreedyFrequencySelector",
    "GreedyLinkSelector",
    "GreedyMmmiSelector",
    "MinMaxMutualInformationSelector",
    "OracleSelector",
    "QuerySelector",
    "RandomCliqueSelector",
    "RandomSelector",
    "SaturationDetector",
    "build_practical_crawler",
    "build_practical_selector",
    "record_combinations",
]
