"""Adaptive per-attribute query selection (beyond the paper).

The paper's GL treats every queriable attribute alike, yet attributes
differ systematically in productivity: venue values in DBLP retrieve
pages of records, title values retrieve one.  Related work on keyword
selection (Ntoulas et al. [21]) adapts to such statistics online; this
selector brings that idea to the structured setting as a small bandit:

- one degree-ranked frontier per queriable attribute (the *value*
  choice stays GL),
- a running per-attribute harvest-rate estimate (new records per page),
- epsilon-greedy *attribute* choice: explore a random attribute with
  probability ``epsilon``, otherwise exploit the best observed rate.

Attributes start optimistic (rate = page size) so each gets tried
before the bandit settles.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.errors import CrawlError
from repro.core.values import AttributeValue
from repro.crawler.frontier import PriorityFrontier
from repro.crawler.prober import QueryOutcome
from repro.policies.base import QuerySelector


class _AttributeStats:
    """Running harvest statistics for one attribute."""

    __slots__ = ("pages", "new_records")

    def __init__(self) -> None:
        self.pages = 0
        self.new_records = 0

    def rate(self, optimistic: float) -> float:
        if self.pages == 0:
            return optimistic
        return self.new_records / self.pages


class AdaptiveAttributeSelector(QuerySelector):
    """Epsilon-greedy attribute bandit over degree-ranked value frontiers.

    Parameters
    ----------
    epsilon:
        Exploration probability for the attribute choice.
    """

    def __init__(self, epsilon: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= epsilon <= 1.0:
            raise CrawlError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._frontiers: Dict[str, PriorityFrontier] = {}
        self._stats: Dict[str, _AttributeStats] = {}

    @property
    def name(self) -> str:
        return "adaptive-attribute"

    def attribute_rates(self) -> Dict[str, float]:
        """Observed harvest rate per attribute (diagnostics/reporting)."""
        context = self._require_context()
        optimistic = float(context.page_size)
        return {
            attribute: stats.rate(optimistic)
            for attribute, stats in self._stats.items()
        }

    # ------------------------------------------------------------------
    def _frontier_for(self, attribute: str) -> PriorityFrontier:
        frontier = self._frontiers.get(attribute)
        if frontier is None:
            context = self._require_context()
            frontier = PriorityFrontier(
                lambda value: float(context.local_db.degree(value))
            )
            self._frontiers[attribute] = frontier
            self._stats[attribute] = _AttributeStats()
        return frontier

    def add_candidate(self, value: AttributeValue) -> None:
        self._require_context()
        self._frontier_for(value.attribute).push(value)

    def next_query(self) -> Optional[AttributeValue]:
        context = self._require_context()
        nonempty = [a for a, frontier in self._frontiers.items() if frontier]
        if not nonempty:
            return None
        if len(nonempty) > 1 and context.rng.random() < self.epsilon:
            attribute = nonempty[context.rng.randrange(len(nonempty))]
        else:
            optimistic = float(context.page_size)
            attribute = max(
                nonempty, key=lambda a: (self._stats[a].rate(optimistic), a)
            )
        return self._frontiers[attribute].pop()

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        attribute = getattr(outcome.query, "attribute", None)
        if attribute is not None and attribute in self._stats:
            stats = self._stats[attribute]
            stats.pages += outcome.pages_fetched
            stats.new_records += len(outcome.new_records)
        for value in outcome.candidate_values:
            frontier = self._frontiers.get(value.attribute)
            if frontier is not None:
                frontier.refresh(value)

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        # Attribute order is load-bearing: exploration draws an index
        # into the nonempty-attribute list, which iterates the frontier
        # dict in insertion order — so serialize it in that order.
        return {
            "attributes": [
                [
                    attribute,
                    self._frontiers[attribute].state_dict(),
                    {
                        "pages": self._stats[attribute].pages,
                        "new_records": self._stats[attribute].new_records,
                    },
                ]
                for attribute in self._frontiers
            ]
        }

    def load_state(self, state: dict) -> None:
        self._frontiers = {}
        self._stats = {}
        for attribute, frontier_state, stats_state in state["attributes"]:
            frontier = self._frontier_for(attribute)
            frontier.load_state(frontier_state)
            stats = self._stats[attribute]
            stats.pages = stats_state["pages"]
            stats.new_records = stats_state["new_records"]

    def pending_count(self) -> int:
        return sum(len(frontier) for frontier in self._frontiers.values())
