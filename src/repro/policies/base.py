"""Query-selector protocol — the pluggable heart of the crawler.

The engine drives every policy through the same four-call protocol:

1. ``bind(context)`` — once, before the crawl starts;
2. ``add_candidate(value)`` — for each attribute value entering
   ``L_to-query`` (seeds and decomposed result values alike);
3. ``next_query()`` — pick the next attribute value to visit, or None
   when the policy has nothing left to ask;
4. ``observe_outcome(outcome)`` — after the query ran, with everything
   it returned (policies use this to update statistics tables).

Selectors return *attribute values*; the engine formulates the actual
query (structured or keyword) via the interface, enforces no-repeat
semantics, and skips values the interface cannot express.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.core.values import AttributeValue
from repro.crawler.context import CrawlerContext
from repro.crawler.prober import QueryOutcome


class QuerySelector(ABC):
    """Base class for all query-selection policies.

    Class attribute ``requires_cooccurrence`` tells the engine whether
    ``DB_local`` must maintain pairwise co-occurrence counts (only MMMI
    needs them; they cost O(clique²) memory).
    """

    #: Whether the policy reads LocalDatabase.cooccurrence / pmi.
    requires_cooccurrence = False

    #: Trace hook installed by the engine when a tracing sink is
    #: attached (see :meth:`set_trace_emitter`).  ``None`` in untraced
    #: crawls and during journal replay, so selector-internal phases
    #: (scoring, frontier refresh) cost nothing unless observed.
    _trace_emit = None

    def __init__(self) -> None:
        self.context: Optional[CrawlerContext] = None

    @property
    def name(self) -> str:
        """Short policy label used in experiment reports."""
        return type(self).__name__.replace("Selector", "").lower()

    def bind(self, context: CrawlerContext) -> None:
        """Attach the crawl's shared state. Called once, before any candidate."""
        self.context = context

    @abstractmethod
    def add_candidate(self, value: AttributeValue) -> None:
        """Offer a newly discovered attribute value for future querying."""

    def add_candidate_id(self, vid: int, value: AttributeValue) -> None:
        """Id-accompanied :meth:`add_candidate` (``vid`` interned in the
        bound local database).  Selectors with id-native frontiers
        override this to skip re-hashing the value; the default ignores
        the id."""
        self.add_candidate(value)

    @abstractmethod
    def next_query(self) -> Optional[AttributeValue]:
        """Select the next attribute value to visit, or None when exhausted."""

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        """Hook invoked after each executed query (default: no-op)."""

    def set_trace_emitter(self, emit) -> None:
        """Install (or clear, with ``None``) the phase-trace callback.

        ``emit(phase, seconds, cpu_seconds, detail)`` reports one timed
        selector-internal phase — e.g. ``"score"`` when a statistics
        table is recomputed, ``"frontier-refresh"`` when priorities are
        rebuilt — to the tracing layer.  The engine installs it lazily
        on the first traced live step; replayed steps never see it, so
        traces only contain phases that actually executed.
        """
        self._trace_emit = emit

    # ------------------------------------------------------------------
    # Durable-runtime protocol (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the policy's mutable selection state.

        Together with :meth:`load_state` this is what makes a crawl
        checkpointable: the engine serializes the selector's state into
        every :class:`~repro.runtime.checkpoint.CrawlCheckpoint`.  The
        contract: ``load_state(state_dict())`` on a freshly constructed
        (same constructor arguments) and freshly bound selector must
        reproduce identical future selections given identical inputs.

        Constructor-supplied configuration (batch sizes, domain tables,
        thresholds) is *not* part of the state — resume reconstructs
        the selector with the same arguments first, then loads state.
        The base implementation covers stateless selectors; every
        stateful selector must override both methods.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        Must be called on a bound selector (``bind`` happens in the
        engine constructor) whose crawl has not started.
        """

    def pending_count(self) -> int:
        """Number of candidates currently awaiting issuance.

        Diagnostic used by the runtime's journal-replay verification
        ("frontier size"); stateless or exotic selectors may return 0.
        """
        return 0

    def frontier_stats(self) -> Optional[dict]:
        """Incremental-frontier counters for telemetry, or None.

        Selectors running an
        :class:`~repro.crawler.frontier.InternedPriorityFrontier` report
        its ``stats`` dict (``dirty_total``, ``rescored_total``,
        ``flushes``) plus ``pending``;
        :meth:`repro.metrics.telemetry.TelemetrySink.sample_selector`
        folds them into the registry.
        """
        return None

    def _require_context(self) -> CrawlerContext:
        if self.context is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self.context
