"""Query-selector protocol — the pluggable heart of the crawler.

The engine drives every policy through the same four-call protocol:

1. ``bind(context)`` — once, before the crawl starts;
2. ``add_candidate(value)`` — for each attribute value entering
   ``L_to-query`` (seeds and decomposed result values alike);
3. ``next_query()`` — pick the next attribute value to visit, or None
   when the policy has nothing left to ask;
4. ``observe_outcome(outcome)`` — after the query ran, with everything
   it returned (policies use this to update statistics tables).

Selectors return *attribute values*; the engine formulates the actual
query (structured or keyword) via the interface, enforces no-repeat
semantics, and skips values the interface cannot express.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.core.values import AttributeValue
from repro.crawler.context import CrawlerContext
from repro.crawler.prober import QueryOutcome


class QuerySelector(ABC):
    """Base class for all query-selection policies.

    Class attribute ``requires_cooccurrence`` tells the engine whether
    ``DB_local`` must maintain pairwise co-occurrence counts (only MMMI
    needs them; they cost O(clique²) memory).
    """

    #: Whether the policy reads LocalDatabase.cooccurrence / pmi.
    requires_cooccurrence = False

    def __init__(self) -> None:
        self.context: Optional[CrawlerContext] = None

    @property
    def name(self) -> str:
        """Short policy label used in experiment reports."""
        return type(self).__name__.replace("Selector", "").lower()

    def bind(self, context: CrawlerContext) -> None:
        """Attach the crawl's shared state. Called once, before any candidate."""
        self.context = context

    @abstractmethod
    def add_candidate(self, value: AttributeValue) -> None:
        """Offer a newly discovered attribute value for future querying."""

    @abstractmethod
    def next_query(self) -> Optional[AttributeValue]:
        """Select the next attribute value to visit, or None when exhausted."""

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        """Hook invoked after each executed query (default: no-op)."""

    def _require_context(self) -> CrawlerContext:
        if self.context is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self.context
