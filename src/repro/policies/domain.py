"""Domain-knowledge-based query selection — DM (Section 4).

The DM selector fixes GL's two fundamental limitations: near-sighted
harvest-rate estimation (only ``DB_local`` statistics) and the limited
candidate pool (only previously returned values).  Armed with a
:class:`~repro.domain.table.DomainStatisticsTable` built from a sample
database of the same domain, it maintains two candidate groups:

``Q_DB`` — values already seen in the target's results.  Their harvest
rate follows Eq. 4.1, ``HR(q) = 1 - num(q, DB_local) / num̂(q, DB)``
(the paper's factor ``k`` is a constant across candidates and dropped
so the estimate is comparable with ``Q_DT``'s, which the paper states
on a 0–1 scale), with the unknown ``num̂(q, DB)`` estimated by Eq. 4.2,

    num̂(q, DB) = |DB_local| · P(q, DM) / P(L_queried, DM),

``P(q, DM)`` smoothed per Eq. 4.3 with the ΔDM correction, and
``P(L_queried, DM)`` maintained incrementally with the Section 4.4
sorted-list union.

``Q_DT`` — domain-table values not yet seen in any result.  If such a
value exists in ``DB`` everything it returns is new (HR = 1); if not,
HR = 0; hence E[HR] = P(q ∈ DB | q ∈ DM), estimated by the domain
table's *hit rate* against the values discovered so far.

Selection compares the best of each group and issues the winner.  The
Section 4.4 lazy evaluation is implemented: ``Q_DB`` candidates are kept
in a heap keyed by the intermediate value ``num(q, DB_local) / P(q, DM)``
(monotone in the exact HR given the shared scale factor), so only the
heap top's exact harvest rate is ever computed per selection.
"""

from __future__ import annotations

import heapq
import math
import time
from collections import defaultdict
from typing import Dict, Optional

from repro.core.errors import CrawlError
from repro.core.query import ConjunctiveQuery
from repro.core.values import AttributeValue
from repro.crawler.prober import QueryOutcome
from repro.domain.table import DomainStatisticsTable, SortedIdUnion
from repro.policies.base import QuerySelector


class DomainKnowledgeSelector(QuerySelector):
    """The DM crawler of Section 4.

    Parameters
    ----------
    domain_table:
        Statistics from the same-domain sample (``DM``).
    smoothing:
        Apply the Eq. 4.3 ΔDM smoothing (ablation knob).
    initial_hit_rate:
        Optimistic prior for ``P(q ∈ DB | q ∈ DM)`` before any value
        has been discovered; 1.0 makes the crawler willing to open with
        domain-table queries, which is how the paper's Amazon crawl can
        proceed from a nearly empty local database.
    """

    def __init__(
        self,
        domain_table: DomainStatisticsTable,
        smoothing: bool = True,
        initial_hit_rate: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 <= initial_hit_rate <= 1.0:
            raise CrawlError("initial_hit_rate must be within [0, 1]")
        self.domain_table = domain_table
        self.smoothing = smoothing
        self.initial_hit_rate = initial_hit_rate

        # Q_DT: unseen domain values, most probable first.
        self._qdt_heap = [
            (-domain_table.count(value), index, value)
            for index, value in enumerate(domain_table.values())
        ]
        heapq.heapify(self._qdt_heap)
        self._seen_values: set[AttributeValue] = set()

        # Q_DB: discovered values, lazy heap on the intermediate score.
        self._qdb_heap: list[tuple[float, int, AttributeValue]] = []
        self._qdb_members: set[AttributeValue] = set()
        self._served: set[AttributeValue] = set()
        # A plain int tick (not itertools.count) so the heap tie-break
        # stream survives checkpoint/restore exactly.
        self._tiebreak = 0

        # ΔDM smoothing state (Eq. 4.3).
        self._delta_size = 0
        self._delta_counts: Dict[AttributeValue, int] = defaultdict(int)

        # Hit-rate estimate for Q_DT (Section 4.3).
        self._discovered_in_scope = 0
        self._discovered_in_dt = 0

        # P(L_queried, DM) via incremental sorted union (Section 4.4).
        self._matched_dm = SortedIdUnion(domain_table.size)

    @property
    def name(self) -> str:
        return "domain-knowledge"

    # ------------------------------------------------------------------
    # Candidate management
    # ------------------------------------------------------------------
    def add_candidate(self, value: AttributeValue) -> None:
        context = self._require_context()
        if value in self._seen_values:
            return
        self._seen_values.add(value)
        if value.attribute in self.domain_table.attributes:
            self._discovered_in_scope += 1
            if value in self.domain_table:
                self._discovered_in_dt += 1
        if value in context.queried_values or value in self._served:
            return
        self._push_qdb(value)

    def _push_qdb(self, value: AttributeValue, refresh: bool = False) -> None:
        if refresh:
            if value not in self._qdb_members:
                return
        elif value in self._qdb_members:
            return
        else:
            self._qdb_members.add(value)
        self._tiebreak += 1
        heapq.heappush(
            self._qdb_heap,
            (-self.harvest_rate_qdb(value), self._tiebreak, value),
        )

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    def smoothed_probability(self, value: AttributeValue) -> float:
        """Eq. 4.3: ``P(q, DM)`` with the ΔDM correction (when enabled)."""
        base_count = self.domain_table.count(value)
        if not self.smoothing:
            return base_count / self.domain_table.size
        return (self._delta_counts.get(value, 0) + base_count) / (
            self._delta_size + self.domain_table.size
        )

    def estimated_matches(self, value: AttributeValue) -> float:
        """Eq. 4.2: ``num̂(q, DB)``, or ``inf`` before DM coverage exists."""
        context = self._require_context()
        p_queried = self._matched_dm.fraction
        if p_queried == 0.0:
            return math.inf
        return len(context.local_db) * self.smoothed_probability(value) / p_queried

    def harvest_rate_qdb(self, value: AttributeValue) -> float:
        """Definition 2.5 harvest rate with ``num(q, DB)`` from Eq. 4.2.

        ``HR(q) = (num̂(q, DB) - num(q, DB_local)) / ceil(num̂(q, DB) / k)``
        — expected *new records per page*.  Eq. 4.1 states the
        large-result approximation ``k · (1 - local/num̂)``; keeping the
        page-rounding denominator matters at selection time because it
        is what separates a fresh 300-match hub (≈ 9.7 new/page) from a
        fresh 13-match value (≈ 6.5 new/page), both of which the
        approximation would score close to ``k``.
        """
        context = self._require_context()
        estimate = self.estimated_matches(value)
        if estimate == math.inf:
            return float(context.page_size)
        local = context.local_db.frequency(value)
        expected_new = estimate - local
        if expected_new <= 0.0:
            return 0.0
        pages = max(math.ceil(estimate / context.page_size), 1)
        return min(expected_new / pages, float(context.page_size))

    @property
    def hit_rate(self) -> float:
        """``P(q ∈ DB | q ∈ DM)`` estimated from discovery history."""
        if self._discovered_in_scope == 0:
            return self.initial_hit_rate
        return self._discovered_in_dt / self._discovered_in_scope

    def estimated_database_size(self) -> float:
        """``|DB_local| / P(L_queried, DM)`` — a size estimate for free."""
        context = self._require_context()
        fraction = self._matched_dm.fraction
        if fraction == 0.0:
            return math.inf
        return len(context.local_db) / fraction

    def intermediate_score(self, value: AttributeValue) -> float:
        """The Section 4.4 lazy-evaluation key: ``num(q, DB_local) / P(q, DM)``.

        Under the Eq. 4.1 approximation, exact HR is monotone decreasing
        in this value with the scale ``Ŝ`` shared by all of ``Q_DB``,
        letting the paper defer exact HR computation to the heap top
        alone.  Kept as the ablation alternative (and for tests of the
        monotonicity claim); the default selection heap keys on the full
        Definition 2.5 rate instead, which additionally accounts for
        page rounding.
        """
        context = self._require_context()
        probability = self.smoothed_probability(value)
        if probability <= 0.0:
            return math.inf
        return context.local_db.frequency(value) / probability

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def next_query(self) -> Optional[AttributeValue]:
        context = self._require_context()
        emit = self._trace_emit
        if emit is not None:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
        qdb_value = self._peek_qdb()
        qdt_value = self._peek_qdt()
        if emit is not None:
            # The lazy-heap freshen is DM's scoring work (Section 4.4):
            # re-keying stale harvest rates until the top is current.
            emit(
                "score",
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
                {"qdb": len(self._qdb_heap), "qdt": len(self._qdt_heap)},
            )
        if qdb_value is None and qdt_value is None:
            return None
        if qdt_value is None:
            choice = qdb_value
        elif qdb_value is None:
            choice = qdt_value
        else:
            hr_db = self.harvest_rate_qdb(qdb_value)
            hr_dt = self.hit_rate
            choice = qdb_value if hr_db >= hr_dt else qdt_value
        assert choice is not None
        self._served.add(choice)
        if choice is qdb_value:
            heapq.heappop(self._qdb_heap)
            self._qdb_members.discard(choice)
        else:
            heapq.heappop(self._qdt_heap)
        return choice

    def _peek_qdb(self) -> Optional[AttributeValue]:
        """Freshen the heap top until its stored key is current, then peek.

        Harvest rates only fall while a value waits (its local count
        grows, the size estimate stabilizes), so stale entries
        *overestimate* and surface at the top, where they are re-keyed —
        the safe direction for a max-priority lazy heap.
        """
        context = self._require_context()
        while self._qdb_heap:
            key, tie, value = self._qdb_heap[0]
            if value in context.queried_values or value in self._served:
                heapq.heappop(self._qdb_heap)
                self._qdb_members.discard(value)
                continue
            fresh = -self.harvest_rate_qdb(value)
            if fresh > key + 1e-12:
                heapq.heapreplace(self._qdb_heap, (fresh, tie, value))
                continue
            return value
        return None

    def _peek_qdt(self) -> Optional[AttributeValue]:
        context = self._require_context()
        while self._qdt_heap:
            _key, _tie, value = self._qdt_heap[0]
            if (
                value in self._seen_values
                or value in context.queried_values
                or value in self._served
            ):
                heapq.heappop(self._qdt_heap)
                continue
            return value
        return None

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def observe_outcome(self, outcome: QueryOutcome) -> None:
        # Values touched by this query's results changed their local
        # counts; re-key their pending heap entries so the ordering
        # tracks the fresh harvest rates.
        for pair in outcome.candidate_values:
            self._push_qdb(pair, refresh=True)
        # Maintain P(L_queried, DM): union the issued query's DM postings.
        query = outcome.query
        if isinstance(query, ConjunctiveQuery):
            # Conjunctions match the intersection of their predicates'
            # DM postings (sorted merge of a sorted intersection).
            posting_sets = [
                set(self.domain_table.postings(pair)) for pair in query.predicates
            ]
            if posting_sets and all(posting_sets):
                matched = sorted(set.intersection(*posting_sets))
                self._matched_dm.union(matched)
        elif query.is_keyword:
            # A keyword query matches any attribute; union postings of
            # every DM value sharing the string.
            for attribute in self.domain_table.attributes:
                pair = AttributeValue(attribute, query.value)
                self._matched_dm.union(self.domain_table.postings(pair))
        else:
            pair = query.as_attribute_value()
            self._matched_dm.union(self.domain_table.postings(pair))
        # Maintain ΔDM (Eq. 4.3): new records carrying any in-scope value
        # absent from DM join the correction sample.
        if not self.smoothing:
            return
        for record in outcome.new_records:
            in_scope = [
                pair
                for pair in record.attribute_values()
                if pair.attribute in self.domain_table.attributes
            ]
            if not in_scope:
                continue
            if any(pair not in self.domain_table for pair in in_scope):
                self._delta_size += 1
                for pair in in_scope:
                    self._delta_counts[pair] += 1

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        from repro.runtime.serialize import encode_value

        # Both heap lists are stored verbatim: a snapshot of a valid heap
        # is itself a valid heap, so load needs no re-heapify and the
        # tie-break order is preserved bit for bit.
        return {
            "qdt_heap": [
                [key, tie, encode_value(value)]
                for key, tie, value in self._qdt_heap
            ],
            "qdb_heap": [
                [key, tie, encode_value(value)]
                for key, tie, value in self._qdb_heap
            ],
            "seen_values": [encode_value(v) for v in sorted(self._seen_values)],
            "qdb_members": [encode_value(v) for v in sorted(self._qdb_members)],
            "served": [encode_value(v) for v in sorted(self._served)],
            "tiebreak": self._tiebreak,
            "delta_size": self._delta_size,
            "delta_counts": [
                [encode_value(value), count]
                for value, count in sorted(self._delta_counts.items())
            ],
            "discovered_in_scope": self._discovered_in_scope,
            "discovered_in_dt": self._discovered_in_dt,
            "matched_dm": self._matched_dm.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        from repro.runtime.serialize import decode_value

        self._qdt_heap = [
            (key, tie, decode_value(value))
            for key, tie, value in state["qdt_heap"]
        ]
        self._qdb_heap = [
            (key, tie, decode_value(value))
            for key, tie, value in state["qdb_heap"]
        ]
        self._seen_values = {decode_value(v) for v in state["seen_values"]}
        self._qdb_members = {decode_value(v) for v in state["qdb_members"]}
        self._served = {decode_value(v) for v in state["served"]}
        self._tiebreak = state["tiebreak"]
        self._delta_size = state["delta_size"]
        self._delta_counts = defaultdict(int)
        for value, count in state["delta_counts"]:
            self._delta_counts[decode_value(value)] = count
        self._discovered_in_scope = state["discovered_in_scope"]
        self._discovered_in_dt = state["discovered_in_dt"]
        self._matched_dm.load_state(state["matched_dm"])

    def pending_count(self) -> int:
        return len(self._qdb_members) + len(self._qdt_heap)
