"""Greedy relational-link-based selection — GL (Section 3.2).

Motivated by the power-law degree distribution of real attribute-value
graphs, GL estimates a candidate's harvest rate as proportional to its
degree in the local graph ``G_local`` and always visits the
highest-degree frontier value: hub values link to a large share of the
database and uncover its "dense portion" quickly.

The implementation leans on :class:`PriorityFrontier`'s lazy
re-scoring, which is exact here because a value's local degree only
grows as records arrive.

A frequency-scored variant (:class:`GreedyFrequencySelector`) is
included for the ablation benches: it ranks by ``num(q, DB_local)``
(popularity in records) instead of graph degree.  On single-valued
schemas the two signals correlate strongly; multi-valued attributes
pull them apart.
"""

from __future__ import annotations

from typing import Optional

from repro.core.values import AttributeValue
from repro.crawler.context import CrawlerContext
from repro.crawler.frontier import PriorityFrontier
from repro.crawler.prober import QueryOutcome
from repro.policies.base import QuerySelector


class _PrioritySelector(QuerySelector):
    """Shared plumbing for score-maximizing selectors.

    Every query's results change the scores of the values they contain,
    so ``observe_outcome`` refreshes exactly those frontier entries —
    keeping the priority frontier's view of ``G_local`` current without
    rescoring the whole frontier.
    """

    def _score(self, value: AttributeValue) -> float:
        raise NotImplementedError

    def bind(self, context: CrawlerContext) -> None:
        super().bind(context)
        self._frontier = PriorityFrontier(self._score)

    def add_candidate(self, value: AttributeValue) -> None:
        self._require_context()
        self._frontier.push(value)

    def next_query(self) -> Optional[AttributeValue]:
        self._require_context()
        return self._frontier.pop()

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        self._frontier.refresh_all(outcome.candidate_values)

    def state_dict(self) -> dict:
        return {"frontier": self._frontier.state_dict()}

    def load_state(self, state: dict) -> None:
        self._frontier.load_state(state["frontier"])

    def pending_count(self) -> int:
        return len(self._frontier)


class GreedyLinkSelector(_PrioritySelector):
    """Pick the frontier value with the greatest degree in ``G_local``."""

    @property
    def name(self) -> str:
        return "greedy-link"

    def _score(self, value: AttributeValue) -> float:
        return float(self._require_context().local_db.degree(value))


class GreedyFrequencySelector(_PrioritySelector):
    """Ablation variant: rank candidates by local match count instead."""

    @property
    def name(self) -> str:
        return "greedy-frequency"

    def _score(self, value: AttributeValue) -> float:
        return float(self._require_context().local_db.frequency(value))
