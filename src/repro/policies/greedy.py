"""Greedy relational-link-based selection — GL (Section 3.2).

Motivated by the power-law degree distribution of real attribute-value
graphs, GL estimates a candidate's harvest rate as proportional to its
degree in the local graph ``G_local`` and always visits the
highest-degree frontier value: hub values link to a large share of the
database and uncover its "dense portion" quickly.

The implementation leans on :class:`PriorityFrontier`'s lazy
re-scoring, which is exact here because a value's local degree only
grows as records arrive.

A frequency-scored variant (:class:`GreedyFrequencySelector`) is
included for the ablation benches: it ranks by ``num(q, DB_local)``
(popularity in records) instead of graph degree.  On single-valued
schemas the two signals correlate strongly; multi-valued attributes
pull them apart.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.errors import CrawlError
from repro.core.values import AttributeValue
from repro.crawler.context import CrawlerContext
from repro.crawler.frontier import InternedPriorityFrontier, PriorityFrontier
from repro.crawler.prober import QueryOutcome
from repro.policies import vectorized
from repro.policies.base import QuerySelector


class _PrioritySelector(QuerySelector):
    """Shared plumbing for score-maximizing selectors.

    Every query's results change the scores of the values they contain,
    so ``observe_outcome`` refreshes exactly those frontier entries —
    marking them dirty for the frontier's next-pop batch rescore —
    keeping the priority frontier's view of ``G_local`` current without
    rescoring the whole frontier.

    When the bound local database exposes an interner (the default
    :class:`~repro.crawler.localdb.LocalDatabase`), the frontier runs on
    dense int ids and the id-indexed score arrays — with the dirty-set
    rescore vectorized over the statistic columns when numpy is present
    (:mod:`repro.policies.vectorized`).  A database without an interner
    (e.g. the differential
    :class:`~repro.crawler.reference.ReferenceLocalDatabase`) gets the
    original value-keyed frontier.  Pop order is identical either way —
    the benchmark's bit-identity assertion depends on it.

    Parameters
    ----------
    full_rescore_every:
        Forwarded to :class:`InternedPriorityFrontier` — rescore the
        whole pending set every Nth flush (0 = never; the differential
        tests pin ``1`` against the default).
    rescore_head:
        Forwarded stale-head correction bound per flush.
    use_vectorized:
        ``None`` (default) auto-selects the numpy batch scorer when
        available; ``False`` forces the scalar path; ``True`` requires
        the batch scorer and raises if the platform cannot provide it.
    """

    def __init__(
        self,
        full_rescore_every: int = 0,
        rescore_head: int = 8,
        use_vectorized: bool | None = None,
    ) -> None:
        super().__init__()
        self.full_rescore_every = full_rescore_every
        self.rescore_head = rescore_head
        self.use_vectorized = use_vectorized

    def _score(self, value: AttributeValue) -> float:
        raise NotImplementedError

    def _score_id_fn(self, local):
        """Id-indexed score function over an interned local database."""
        raise NotImplementedError

    def _batch_score_fn(self, local):
        """Numpy batch scorer over the database's columns, or None."""
        return None

    def bind(self, context: CrawlerContext) -> None:
        super().bind(context)
        local = context.local_db
        if hasattr(local, "interner"):
            batch = None
            if self.use_vectorized is not False:
                batch = self._batch_score_fn(local)
                if batch is None and self.use_vectorized is True:
                    raise CrawlError(
                        f"{type(self).__name__}(use_vectorized=True) but no "
                        "numpy batch scorer is available on this platform"
                    )
            self._frontier = InternedPriorityFrontier(
                self._score_id_fn(local),
                local.intern_value,
                local.value_id,
                local.interner.value,
                batch_score_fn=batch,
                full_rescore_every=self.full_rescore_every,
                rescore_head=self.rescore_head,
            )
        else:
            self._frontier = PriorityFrontier(self._score)

    def add_candidate(self, value: AttributeValue) -> None:
        self._require_context()
        self._frontier.push(value)

    def add_candidate_id(self, vid: int, value: AttributeValue) -> None:
        self._require_context()
        frontier = self._frontier
        if isinstance(frontier, InternedPriorityFrontier):
            frontier.push_id(vid)
        else:
            frontier.push(value)

    def next_query(self) -> Optional[AttributeValue]:
        self._require_context()
        return self._frontier.pop()

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        emit = self._trace_emit
        if emit is not None:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
        frontier = self._frontier
        candidate_ids = outcome.candidate_ids
        if candidate_ids is not None and isinstance(
            frontier, InternedPriorityFrontier
        ):
            refreshed = len(candidate_ids)
            refresh_id = frontier.refresh_id
            for vid in candidate_ids:
                refresh_id(vid)
        else:
            refreshed = len(outcome.candidate_values)
            frontier.refresh_all(outcome.candidate_values)
        if emit is not None:
            emit(
                "frontier-refresh",
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
                {"refreshed": refreshed},
            )

    def state_dict(self) -> dict:
        return {"frontier": self._frontier.state_dict()}

    def load_state(self, state: dict) -> None:
        self._frontier.load_state(state["frontier"])

    def pending_count(self) -> int:
        return len(self._frontier)

    def frontier_stats(self) -> Optional[dict]:
        frontier = self._frontier
        if isinstance(frontier, InternedPriorityFrontier):
            return {"pending": len(frontier), **frontier.stats}
        return None


class GreedyLinkSelector(_PrioritySelector):
    """Pick the frontier value with the greatest degree in ``G_local``."""

    @property
    def name(self) -> str:
        return "greedy-link"

    def _score(self, value: AttributeValue) -> float:
        return float(self._require_context().local_db.degree(value))

    def _score_id_fn(self, local):
        degree_id = local.degree_id
        return lambda vid: float(degree_id(vid))

    def _batch_score_fn(self, local):
        return vectorized.degree_batch_scorer(local)


class GreedyFrequencySelector(_PrioritySelector):
    """Ablation variant: rank candidates by local match count instead."""

    @property
    def name(self) -> str:
        return "greedy-frequency"

    def _score(self, value: AttributeValue) -> float:
        return float(self._require_context().local_db.frequency(value))

    def _score_id_fn(self, local):
        frequency_id = local.frequency_id
        return lambda vid: float(frequency_id(vid))

    def _batch_score_fn(self, local):
        return vectorized.frequency_batch_scorer(local)
