"""Hybrid GL → MMMI policy with saturation switching (Sections 3.3, 5.2).

The paper uses MMMI *together with* the greedy link-based crawler: GL's
hub-following works remarkably well up to roughly 85% coverage, after
which attribute-value dependency dominates ("low marginal benefit") and
the crawler switches to MMMI ordering to squeeze out the marginal
content.  Two saturation triggers are provided:

- **oracle** — switch when true coverage crosses ``switch_coverage``
  (what the controlled experiment in Figure 4 does); requires the
  engine's coverage oracle.
- **harvest-rate heuristic** — switch when the mean realized harvest
  rate over the last ``window`` queries falls below
  ``min_harvest_rate`` new records per page, a stand-in for the paper's
  unspecified "set of heuristics"; works without ground truth.

Whichever trigger fires first flips the policy permanently.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.errors import CrawlError
from repro.core.values import AttributeValue
from repro.crawler.context import CrawlerContext
from repro.crawler.prober import QueryOutcome
from repro.policies.base import QuerySelector
from repro.policies.greedy import GreedyLinkSelector
from repro.policies.mmmi import MinMaxMutualInformationSelector


class SaturationDetector:
    """Sliding-window harvest-rate test for crawl saturation."""

    def __init__(self, window: int = 20, min_harvest_rate: float = 1.0) -> None:
        if window < 1:
            raise CrawlError(f"window must be >= 1, got {window}")
        self.window = window
        self.min_harvest_rate = min_harvest_rate
        self._rates: Deque[float] = deque(maxlen=window)

    def observe(self, outcome: QueryOutcome) -> None:
        self._rates.append(outcome.harvest_rate)

    @property
    def saturated(self) -> bool:
        """True once a full window averages under the threshold."""
        if len(self._rates) < self.window:
            return False
        return sum(self._rates) / len(self._rates) < self.min_harvest_rate

    def state_dict(self) -> dict:
        return {"rates": list(self._rates)}

    def load_state(self, state: dict) -> None:
        self._rates = deque(state["rates"], maxlen=self.window)


class GreedyMmmiSelector(QuerySelector):
    """GL until saturation, MMMI afterwards (the Figure 4 configuration).

    Parameters
    ----------
    switch_coverage:
        Oracle trigger level (paper: 0.85).  Set to ``None`` to rely on
        the harvest-rate heuristic alone.
    detector:
        Harvest-rate fallback trigger; pass ``None`` to disable and use
        the oracle alone.
    batch_size, aggregate:
        Forwarded to the inner MMMI selector.
    """

    requires_cooccurrence = True

    #: Sentinel distinguishing "default detector" from "no detector".
    _DEFAULT_DETECTOR = object()

    def __init__(
        self,
        switch_coverage: Optional[float] = 0.85,
        detector=_DEFAULT_DETECTOR,
        batch_size: int = 25,
        aggregate: str = "max",
        popularity_weight: float = 1.0,
    ) -> None:
        super().__init__()
        if detector is self._DEFAULT_DETECTOR:
            detector = SaturationDetector()
        if switch_coverage is None and detector is None:
            raise CrawlError("need at least one saturation trigger")
        self.switch_coverage = switch_coverage
        self.detector = detector
        self._greedy = GreedyLinkSelector()
        self._mmmi = MinMaxMutualInformationSelector(
            batch_size=batch_size,
            aggregate=aggregate,
            popularity_weight=popularity_weight,
        )
        self._switched = False

    @property
    def name(self) -> str:
        return "greedy-link+mmmi"

    @property
    def switched(self) -> bool:
        """Whether the MMMI phase has begun."""
        return self._switched

    def bind(self, context: CrawlerContext) -> None:
        super().bind(context)
        self._greedy.bind(context)
        self._mmmi.bind(context)

    def add_candidate(self, value: AttributeValue) -> None:
        # Both phases track all candidates; the engine filters values
        # the active phase re-proposes after the other already asked.
        self._greedy.add_candidate(value)
        self._mmmi.add_candidate(value)

    def next_query(self) -> Optional[AttributeValue]:
        self._maybe_switch()
        if self._switched:
            value = self._mmmi.next_query()
            if value is not None:
                return value
            # MMMI exhausted (it only sees decomposed values); fall back
            # so stragglers in the greedy frontier still get issued.
            return self._greedy.next_query()
        return self._greedy.next_query()

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        # The greedy frontier must stay refreshed in both phases (it is
        # the pre-switch engine and the post-switch fallback).
        self._greedy.observe_outcome(outcome)
        if self.detector is not None and not self._switched:
            self.detector.observe(outcome)
        if self._switched:
            self._mmmi.observe_outcome(outcome)

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = {
            "switched": self._switched,
            "greedy": self._greedy.state_dict(),
            "mmmi": self._mmmi.state_dict(),
        }
        if self.detector is not None:
            state["detector"] = self.detector.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        self._switched = state["switched"]
        self._greedy.load_state(state["greedy"])
        self._mmmi.load_state(state["mmmi"])
        if self.detector is not None and "detector" in state:
            self.detector.load_state(state["detector"])

    def pending_count(self) -> int:
        return (
            self._mmmi.pending_count()
            if self._switched
            else self._greedy.pending_count()
        )

    # ------------------------------------------------------------------
    def _maybe_switch(self) -> None:
        if self._switched:
            return
        context = self._require_context()
        if self.switch_coverage is not None:
            coverage = context.estimated_coverage()
            if coverage is not None and coverage >= self.switch_coverage:
                self._switched = True
                return
        if self.detector is not None and self.detector.saturated:
            self._switched = True
