"""Min-Max Mutual-Information query selection — MMMI (Section 3.3).

GL's weakness is that popularity ignores *dependency*: once one
frequent co-author is queried, the other's results are mostly
duplicates.  MMMI scores each candidate ``q_i`` by its maximum pointwise
mutual information against the already-issued queries (Definition 3.1)

    s(q_i) = max_{q_j in L_queried} ln P(q_i, q_j | DB_local)
                                     / (P(q_i|DB_local) P(q_j|DB_local))

and serves candidates in *ascending* ``s`` — penalizing values strongly
correlated with anything already asked.  ``max`` (rather than a weighted
sum) is chosen to avoid single bad decisions, echoing query-optimizer
common wisdom; a linear-weighted alternative is provided for the
ablation bench (``aggregate="mean"``).

Because recomputing dependencies after every harvested record would be
prohibitive, the paper prescribes *batch mode*: scores are recomputed
once per ``batch_size`` issued queries.  The implementation exploits the
graph structure to keep each recompute cheap: PMI is ``-inf`` unless the
pair co-occurs, so only a candidate's ``G_local`` neighbours that were
already queried can contribute to its max.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Dict, List, Optional

from repro.core.errors import CrawlError
from repro.core.values import AttributeValue
from repro.crawler.prober import QueryOutcome
from repro.policies import vectorized
from repro.policies.base import QuerySelector

AGGREGATES = ("max", "mean")


class MinMaxMutualInformationSelector(QuerySelector):
    """Dependency-aware selection for the low-marginal-benefit regime.

    Parameters
    ----------
    batch_size:
        Queries issued between dependency recomputations (paper §3.3's
        batch-mode operation).
    aggregate:
        ``"max"`` (Definition 3.1) or ``"mean"`` (the linear-weighted
        alternative the paper mentions), over the issued queries that
        co-occur with the candidate.
    tie_break_degree:
        Among equally (in)dependent candidates — in particular the many
        with no co-occurrence at all (score ``-inf``) — prefer higher
        local degree, keeping GL's productivity signal as a secondary
        key.
    use_vectorized:
        ``None`` (default) auto-selects the numpy queried-major kernel
        (:func:`repro.policies.vectorized.mmmi_best_ratios`) when the
        platform and configuration support it (``aggregate="max"`` on a
        co-occurrence-tracking interned database); ``False`` forces the
        scalar recompute; ``True`` requires the kernel and raises at
        bind time if it cannot run.  Both paths are bit-identical (see
        the differential suite).
    """

    requires_cooccurrence = True

    def __init__(
        self,
        batch_size: int = 25,
        aggregate: str = "max",
        tie_break_degree: bool = True,
        popularity_weight: float = 1.0,
        use_vectorized: Optional[bool] = None,
    ) -> None:
        super().__init__()
        if batch_size < 1:
            raise CrawlError(f"batch_size must be >= 1, got {batch_size}")
        if aggregate not in AGGREGATES:
            raise CrawlError(f"aggregate must be one of {AGGREGATES}")
        if popularity_weight < 0:
            raise CrawlError("popularity_weight must be >= 0")
        self.batch_size = batch_size
        self.aggregate = aggregate
        self.tie_break_degree = tie_break_degree
        self.popularity_weight = popularity_weight
        self.use_vectorized = use_vectorized
        # Candidate values mapped to their cached interned id (None
        # until the value is first seen in a harvested record); dict
        # order is insertion order but never influences selection — the
        # recompute's final key ends on the AttributeValue itself.
        self._candidates: Dict[AttributeValue, Optional[int]] = {}
        self._ordered: List[AttributeValue] = []
        self._since_recompute = 0

    @property
    def name(self) -> str:
        return "mmmi"

    def bind(self, context) -> None:
        super().bind(context)
        if self.use_vectorized is True and not (
            self.aggregate == "max"
            and vectorized.supports_mmmi(context.local_db)
        ):
            raise CrawlError(
                "MinMaxMutualInformationSelector(use_vectorized=True) "
                "requires aggregate='max', a co-occurrence-tracking "
                "interned database, and numpy"
            )

    # ------------------------------------------------------------------
    def add_candidate(self, value: AttributeValue) -> None:
        context = self._require_context()
        if value in context.queried_values:
            return
        if value not in self._candidates:
            self._candidates[value] = None

    def add_candidate_id(self, vid: int, value: AttributeValue) -> None:
        """Id-accompanied add: cache the interned id for the recompute.

        The engine has already filtered already-queried ids, but the
        value guard is kept so direct callers get :meth:`add_candidate`
        semantics exactly.
        """
        context = self._require_context()
        if value in context.queried_values:
            return
        self._candidates[value] = vid

    def next_query(self) -> Optional[AttributeValue]:
        self._require_context()
        if not self._ordered or self._since_recompute >= self.batch_size:
            self._recompute()
        while self._ordered:
            value = self._ordered.pop()
            if value in self._candidates:
                del self._candidates[value]
                self._since_recompute += 1
                return value
        # The ordered list went stale and empty; one recompute may still
        # surface candidates added after the last batch boundary.
        self._recompute()
        if not self._ordered:
            return None
        value = self._ordered.pop()
        self._candidates.pop(value, None)
        self._since_recompute += 1
        return value

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        # Dependency scores shift as DB_local grows; the batch counter in
        # next_query already schedules the recompute, nothing to do here.
        return

    def state_dict(self) -> dict:
        from repro.runtime.serialize import encode_value

        return {
            "candidates": [encode_value(v) for v in sorted(self._candidates)],
            "ordered": [encode_value(v) for v in self._ordered],
            "since_recompute": self._since_recompute,
        }

    def load_state(self, state: dict) -> None:
        from repro.runtime.serialize import decode_value

        # Ids are not serialized (the payload predates the cache and
        # stays schema-stable); they re-resolve at the next recompute.
        self._candidates = dict.fromkeys(
            decode_value(v) for v in state["candidates"]
        )
        self._ordered = [decode_value(v) for v in state["ordered"]]
        self._since_recompute = state["since_recompute"]

    def pending_count(self) -> int:
        return len(self._candidates)

    # ------------------------------------------------------------------
    def dependency_score(self, value: AttributeValue) -> float:
        """``s(q_i, L_queried)`` of Definition 3.1 (or its mean variant).

        Only ``G_local`` neighbours of ``value`` that were already
        queried can co-occur with it, so the max/mean runs over that
        intersection; no co-occurring issued query yields ``-inf``
        (an entirely independent candidate — the best possible score).
        """
        context = self._require_context()
        local = context.local_db
        # Set intersection iterates the smaller operand: cheap even when
        # the candidate is a hub with thousands of local neighbours.
        queried_neighbors = local.neighbors(value) & context.queried_values
        if not queried_neighbors:
            return -math.inf
        pmis = [local.pmi(value, n) for n in queried_neighbors]
        pmis = [p for p in pmis if p != -math.inf]
        if not pmis:
            return -math.inf
        if self.aggregate == "max":
            return max(pmis)
        return sum(pmis) / len(pmis)

    def selection_score(self, value: AttributeValue) -> float:
        """The full MMMI ranking key, lower = issued earlier.

        ``s(q_i) - w · ln(1 + degree(q_i))``: the Definition 3.1
        dependency penalty, discounted by log-popularity (both terms are
        log-scale).  ``popularity_weight = 0`` is the pure
        Definition 3.1 ordering; the default of 1 realizes the paper's
        "MMMI is used together with the greedy link-based approach" —
        among comparably popular candidates, strong dependency pushes a
        value back, instead of independence alone promoting the frontier's
        singleton tail.
        """
        context = self._require_context()
        score = self.dependency_score(value)
        if score == -math.inf:
            score = 0.0  # independent; judged on popularity alone
        if self.popularity_weight == 0.0:
            return score
        degree = context.local_db.degree(value)
        return score - self.popularity_weight * math.log1p(degree)

    def _recompute(self) -> None:
        """Sort pending candidates by the selection score.

        ``self._ordered`` is consumed from the tail, so it is stored
        descending: the *last* element is the best (lowest-score)
        candidate.

        An interned local database gets the id-indexed pass below; any
        other database falls back to the public value-keyed API.  Both
        produce the same ordering: scores are identical arithmetic and
        the final tie-break key is the :class:`AttributeValue` itself
        (ids are first-seen order, not lexicographic, so they must never
        leak into the sort key).
        """
        emit = self._trace_emit
        if emit is not None:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
        context = self._require_context()
        local = context.local_db
        if hasattr(local, "interner"):
            self._ordered = self._order_interned(local, context)
        else:
            def sort_key(value: AttributeValue):
                degree = local.degree(value) if self.tie_break_degree else 0
                # Descending score first (tail = smallest); among equals,
                # ascending degree (tail = largest degree).
                return (-self.selection_score(value), degree, value)

            self._ordered = sorted(self._candidates, key=sort_key)
        self._since_recompute = 0
        if emit is not None:
            emit(
                "score",
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
                {"candidates": len(self._ordered)},
            )

    def _order_interned(self, local, context) -> List[AttributeValue]:
        """The batch recompute on dense ids — the MMMI hot loop.

        One interner lookup per queried value; candidate ids are cached
        at discovery (:meth:`add_candidate_id`), so candidates hash only
        until first resolved.  With numpy present and ``aggregate="max"``
        the per-candidate dependency maxes run queried-major through
        :func:`repro.policies.vectorized.mmmi_best_ratios`; the scalar
        fallback iterates candidate-major over the same pairs.  Both
        produce identical keys (see :mod:`repro.policies.vectorized` for
        the exactness argument), and only the top ``batch_size`` keys
        can be consumed before the next recompute, so a bounded
        ``heapq.nlargest`` replaces the full sort — keys are unique
        (final tie-break is the value itself), making the selection
        independent of candidate iteration order.
        """
        lookup = local.value_id
        queried_ids = {
            vid
            for vid in map(lookup, context.queried_values)
            if vid is not None
        }
        candidates = self._candidates
        for value, vid in candidates.items():
            if vid is None:
                vid = lookup(value)
                if vid is not None:
                    candidates[value] = vid
        use_max = self.aggregate == "max"
        weight = self.popularity_weight
        tie_break = self.tie_break_degree
        degree_id = local.degree_id
        log = math.log
        log1p = math.log1p
        neg_inf = -math.inf
        keyed = []
        use_vec = (
            self.use_vectorized is not False
            and use_max
            and vectorized.supports_mmmi(local)
        )
        if use_vec:
            pairs = [
                (value, vid)
                for value, vid in candidates.items()
                if vid is not None
            ]
            ratios = vectorized.mmmi_best_ratios(
                local, queried_ids, [vid for _value, vid in pairs]
            )
            for (value, vid), ratio in zip(pairs, ratios):
                # log(max ratio) == max(log ratio): one scalar math.log
                # per candidate keeps libm bit-identity with the scalar
                # path.  Ratio 0 is the no-co-occurrence sentinel.
                score = log(ratio) if ratio > 0.0 else 0.0
                degree = degree_id(vid)
                if weight:
                    score -= weight * log1p(degree)
                keyed.append((-score, degree if tie_break else 0, value))
            for value, vid in candidates.items():
                if vid is None:
                    # Never seen in a harvested record: no neighbours, no
                    # degree — fully independent, judged at score 0.
                    keyed.append((0.0, 0, value))
        else:
            dependency_score = local.dependency_score_ids
            for value, vid in candidates.items():
                if vid is None:
                    keyed.append((0.0, 0, value))
                    continue
                score = dependency_score(vid, queried_ids, use_max)
                if score == neg_inf:
                    score = 0.0  # independent; judged on popularity alone
                degree = degree_id(vid)
                if weight:
                    score -= weight * log1p(degree)
                keyed.append((-score, degree if tie_break else 0, value))
        take = self.batch_size
        if len(keyed) <= take:
            keyed.sort()
            return [value for _neg_score, _degree, value in keyed]
        top = heapq.nlargest(take, keyed)
        top.reverse()  # ascending; consumed best-first from the tail
        return [value for _neg_score, _degree, value in top]
