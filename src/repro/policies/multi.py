"""Query selection for multi-attribute-only sources (beyond the paper).

The paper's Table 1 found domains — cars, airfares, hotels — whose
forms are "highly structured and restrictive in the sense that only
multi-attribute queries are accepted", and left crawling them as future
work.  This module supplies that extension.

Under the AVG model the generalization is natural: a conjunctive query
``a = x AND b = y`` visits an *edge* (more generally, a clique) of the
attribute-value graph and retrieves every record whose clique contains
it.  Crawling a source whose interface demands ``p`` predicates is
therefore traversal over the graph's ``p``-cliques: every harvested
record reveals all of its own sub-cliques as future query candidates,
exactly as records reveal vertices in the single-attribute case.

:class:`GreedyCliqueSelector` is GL lifted one level: it scores each
candidate predicate combination by the product heuristic
``min(degree) · cooccurrence`` — popular-but-co-occurring value
combinations are likelier to match many yet-unseen records — and issues
the best one.  :class:`RandomCliqueSelector` is the naive baseline.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Set, Tuple

from repro.core.errors import CrawlError
from repro.core.query import ConjunctiveQuery
from repro.core.records import Record
from repro.core.values import AttributeValue
from repro.crawler.context import CrawlerContext
from repro.crawler.frontier import PriorityFrontier
from repro.crawler.prober import QueryOutcome
from repro.policies.base import QuerySelector

Combo = Tuple[AttributeValue, ...]


def record_combinations(
    record: Record, queriable: Iterable[str], arity: int
) -> List[Combo]:
    """All size-``arity`` distinct-attribute value combinations of a record.

    These are the record's sub-cliques expressible as conjunctive
    queries on the given interface.
    """
    queriable = set(queriable)
    eligible = [
        pair for pair in record.attribute_values() if pair.attribute in queriable
    ]
    combos: List[Combo] = []
    for combo in itertools.combinations(eligible, arity):
        attributes = [pair.attribute for pair in combo]
        if len(set(attributes)) == arity:
            combos.append(tuple(sorted(combo)))
    return combos


class _CliqueSelector(QuerySelector):
    """Shared plumbing: a frontier of predicate combinations.

    Candidates enter through ``observe_outcome`` (each returned record's
    sub-cliques) and through ``add_candidate`` for seeds — a single seed
    value cannot be issued alone on a multi-attribute interface, so
    seed values are held back until records containing them arrive; the
    engine's seeds must therefore be *combinations* (pass tuples of
    ``AttributeValue`` through ``seed_combinations``) or the crawl must
    start from at least one full record's worth of values.
    """

    def __init__(self, arity: Optional[int] = None) -> None:
        super().__init__()
        if arity is not None and arity < 1:
            raise CrawlError(f"arity must be >= 1, got {arity}")
        self._requested_arity = arity
        self._seen_combos: Set[Combo] = set()
        self._pending_values: List[AttributeValue] = []

    @property
    def arity(self) -> int:
        context = self._require_context()
        if self._requested_arity is not None:
            return self._requested_arity
        return max(context.interface.min_predicates, 1)

    # ------------------------------------------------------------------
    def bind(self, context: CrawlerContext) -> None:
        super().bind(context)
        self._make_frontier()

    def _make_frontier(self) -> None:
        raise NotImplementedError

    def _push(self, combo: Combo) -> None:
        raise NotImplementedError

    def _pop(self) -> Optional[Combo]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def seed_combinations(self, combos: Iterable[Combo]) -> None:
        """Register explicit starting combinations (pre-bind not allowed)."""
        self._require_context()
        for combo in combos:
            self.offer(tuple(sorted(combo)))

    def offer(self, combo: Combo) -> None:
        if combo in self._seen_combos:
            return
        self._seen_combos.add(combo)
        self._push(combo)

    def add_candidate(self, value: AttributeValue) -> None:
        # Individual values cannot be issued on this interface; they are
        # remembered only so diagnostics can report the discovery count.
        self._pending_values.append(value)

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        context = self._require_context()
        for record in outcome.new_records:
            for combo in record_combinations(
                record, context.interface.queriable_attributes, self.arity
            ):
                self.offer(combo)

    def next_query(self) -> Optional[ConjunctiveQuery]:
        combo = self._pop()
        if combo is None:
            return None
        return ConjunctiveQuery.of(*combo)

    # ------------------------------------------------------------------
    # Checkpoint state (see repro.runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        from repro.runtime.serialize import encode_combo, encode_value

        return {
            "seen_combos": [
                encode_combo(combo) for combo in sorted(self._seen_combos)
            ],
            "pending_values": [encode_value(v) for v in self._pending_values],
            "container": self._container_state(),
        }

    def load_state(self, state: dict) -> None:
        from repro.runtime.serialize import decode_combo, decode_value

        self._seen_combos = {
            decode_combo(combo) for combo in state["seen_combos"]
        }
        self._pending_values = [
            decode_value(v) for v in state["pending_values"]
        ]
        self._load_container(state["container"])

    def _container_state(self):
        raise NotImplementedError

    def _load_container(self, payload) -> None:
        raise NotImplementedError


class GreedyCliqueSelector(_CliqueSelector):
    """GL generalized to conjunctive queries.

    Scores a combination by ``(min vertex degree) · (1 + local
    co-occurrence)``: the bottleneck vertex bounds how many records the
    conjunction can match, and combinations already seen together in
    several records are likelier to be a genuinely frequent pairing
    (a popular make-model, not a one-off).  Scores grow as the local
    graph grows, so the frontier is refreshed from outcomes like GL's.
    """

    @property
    def name(self) -> str:
        return "greedy-clique"

    def _score(self, combo: Combo) -> float:
        local = self._require_context().local_db
        if hasattr(local, "interner"):
            # Id-indexed path: one interner lookup per predicate, then
            # array reads and a sorted-postings intersection.
            lookup = local.value_id
            degree_id = local.degree_id
            vids = []
            min_degree: Optional[int] = None
            for pair in combo:
                vid = lookup(pair)
                if vid is None:
                    # Unseen vertex: degree 0 bottlenecks the product.
                    return 0.0
                vids.append(vid)
                degree = degree_id(vid)
                if min_degree is None or degree < min_degree:
                    min_degree = degree
            if not min_degree:
                return 0.0
            joint = local.conjunctive_frequency_ids(vids)
            return min_degree * (1.0 + joint)
        degrees = [local.degree(pair) for pair in combo]
        joint = local.conjunctive_frequency(combo)
        return min(degrees) * (1.0 + joint)

    def _make_frontier(self) -> None:
        self._frontier = PriorityFrontier(
            lambda combo: self._score(combo)  # type: ignore[arg-type]
        )

    def _push(self, combo: Combo) -> None:
        self._frontier.push(combo)  # type: ignore[arg-type]

    def _pop(self) -> Optional[Combo]:
        return self._frontier.pop()  # type: ignore[return-value]

    def observe_outcome(self, outcome: QueryOutcome) -> None:
        super().observe_outcome(outcome)
        # Refresh combinations touched by the new records.
        context = self._require_context()
        for record in outcome.new_records:
            for combo in record_combinations(
                record, context.interface.queriable_attributes, self.arity
            ):
                self._frontier.refresh(combo)  # type: ignore[arg-type]

    def _container_state(self):
        from repro.runtime.serialize import encode_combo

        return {"frontier": self._frontier.state_dict(encode=encode_combo)}

    def _load_container(self, payload) -> None:
        from repro.runtime.serialize import decode_combo

        self._frontier.load_state(payload["frontier"], decode=decode_combo)

    def pending_count(self) -> int:
        return len(self._frontier)


class RandomCliqueSelector(_CliqueSelector):
    """Naive baseline: issue discovered combinations in random order."""

    @property
    def name(self) -> str:
        return "random-clique"

    def _make_frontier(self) -> None:
        self._items: List[Combo] = []
        self._rng: random.Random = self._require_context().rng

    def _push(self, combo: Combo) -> None:
        self._items.append(combo)

    def _pop(self) -> Optional[Combo]:
        if not self._items:
            return None
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()

    def _container_state(self):
        from repro.runtime.serialize import encode_combo

        # Item order matters: removal draws an index (the RNG stream is
        # checkpointed by the engine), so the list is stored verbatim.
        return {"items": [encode_combo(combo) for combo in self._items]}

    def _load_container(self, payload) -> None:
        from repro.runtime.serialize import decode_combo

        self._items = [decode_combo(combo) for combo in payload["items"]]

    def pending_count(self) -> int:
        return len(self._items)
