"""Naive query-selection methods (Section 3.1).

Breadth-first, depth-first, and random selection differ only in how
``L_to-query`` is organized: a queue, a stack, or a uniformly sampled
bag.  None uses any information from ``DB_local`` — the paper notes the
random selector effectively assigns every candidate the same harvest
rate, breadth-first favours earlier-found values and depth-first
newer-found ones.
"""

from __future__ import annotations

from typing import Optional

from repro.core.values import AttributeValue
from repro.crawler.context import CrawlerContext
from repro.crawler.frontier import FifoFrontier, Frontier, LifoFrontier, RandomFrontier
from repro.policies.base import QuerySelector


class _FrontierSelector(QuerySelector):
    """Shared plumbing: selection is exactly the frontier's pop order."""

    def __init__(self) -> None:
        super().__init__()
        self._frontier: Optional[Frontier] = None

    def _make_frontier(self) -> Frontier:
        raise NotImplementedError

    def bind(self, context: CrawlerContext) -> None:
        super().bind(context)
        self._frontier = self._make_frontier()

    def add_candidate(self, value: AttributeValue) -> None:
        if self._frontier is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        self._frontier.push(value)

    def next_query(self) -> Optional[AttributeValue]:
        if self._frontier is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self._frontier.pop()

    def state_dict(self) -> dict:
        if self._frontier is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return {"frontier": self._frontier.state_dict()}

    def load_state(self, state: dict) -> None:
        if self._frontier is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        self._frontier.load_state(state["frontier"])

    def pending_count(self) -> int:
        return len(self._frontier) if self._frontier is not None else 0


class BreadthFirstSelector(_FrontierSelector):
    """FIFO ``L_to-query``: query values in discovery order."""

    @property
    def name(self) -> str:
        return "bfs"

    def _make_frontier(self) -> Frontier:
        return FifoFrontier()


class DepthFirstSelector(_FrontierSelector):
    """LIFO ``L_to-query``: always chase the newest discovery."""

    @property
    def name(self) -> str:
        return "dfs"

    def _make_frontier(self) -> Frontier:
        return LifoFrontier()


class RandomSelector(_FrontierSelector):
    """Uniform random choice from ``L_to-query``."""

    @property
    def name(self) -> str:
        return "random"

    def _make_frontier(self) -> Frontier:
        return RandomFrontier(self._require_context().rng)
