"""Omniscient oracle selector — the offline dominating-set baseline.

Definition 2.4 frames optimal query selection as a Weighted Minimum
Dominating Set problem that an online crawler cannot solve for lack of
the "big picture".  For calibration, this selector *is given* the big
picture: the target's full table.  It precomputes a greedy weighted
record-cover plan (the classical ln(n)-approximation of the optimal
plan, over the true record sets and true page costs) and simply replays
it.  No online policy should beat it by more than greedy's
approximation slack, which makes it the upper-bound series in the
ablation benches.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.table import RelationalTable
from repro.core.values import AttributeValue
from repro.graph.dominating import greedy_record_cover
from repro.policies.base import QuerySelector


class OracleSelector(QuerySelector):
    """Replays an offline greedy set-cover plan computed on ground truth.

    Parameters
    ----------
    table:
        The target's true universal table (the knowledge a real crawler
        never has).
    page_size:
        ``k``, to weight each candidate query by its true page cost.
    queriable_only:
        Restrict the plan to values of queriable attributes (must be
        True unless the interface supports keywords).
    """

    def __init__(
        self, table: RelationalTable, page_size: int = 10, queriable_only: bool = True
    ) -> None:
        super().__init__()
        attributes = (
            set(table.schema.queriable) if queriable_only else set(table.schema.names)
        )
        value_to_records = {}
        costs = {}
        for value in table.distinct_values():
            if value.attribute not in attributes:
                continue
            records = frozenset(table.match_equality(value.attribute, value.value))
            value_to_records[value] = records
            costs[value] = float(max(math.ceil(len(records) / page_size), 1))
        self._plan: List[AttributeValue] = greedy_record_cover(
            value_to_records, costs
        )
        self._cursor = 0

    @property
    def name(self) -> str:
        return "oracle"

    @property
    def plan(self) -> List[AttributeValue]:
        """The full offline plan, in replay order."""
        return list(self._plan)

    def add_candidate(self, value: AttributeValue) -> None:
        # The oracle already knows everything; discoveries are ignored.
        return

    def next_query(self) -> Optional[AttributeValue]:
        if self._cursor >= len(self._plan):
            return None
        value = self._plan[self._cursor]
        self._cursor += 1
        return value

    def state_dict(self) -> dict:
        # The plan is rebuilt from the table at construction; only the
        # replay position is dynamic state.
        return {"cursor": self._cursor}

    def load_state(self, state: dict) -> None:
        self._cursor = state["cursor"]

    def pending_count(self) -> int:
        return len(self._plan) - self._cursor
