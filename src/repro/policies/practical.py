"""The paper's recommended production configuration.

The conclusion states: "a practical solution for real world
applications is to combine the domain-knowledge-based query selection
with a set of fine-tuned heuristics, which is a part of our future
work."  This module assembles exactly that combination from the pieces
the paper develops:

- the DM selector when a domain table is available (GL → MMMI hybrid
  otherwise),
- the Section 3.4 query-abortion heuristics (exact new-record bound
  when totals are reported, duplicate-fraction probing when not),
- saturation detection for the switch into the dependency-aware tail.

:func:`build_practical_crawler` returns a ready
:class:`~repro.crawler.engine.CrawlerEngine`; it is the one-call answer
to "just crawl this source sensibly".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.crawler.abortion import (
    CombinedAbort,
    DuplicateFractionAbort,
    TotalCountAbort,
)
from repro.domain.table import DomainStatisticsTable
from repro.policies.domain import DomainKnowledgeSelector
from repro.policies.hybrid import GreedyMmmiSelector, SaturationDetector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crawler.engine import CrawlerEngine
    from repro.server.webdb import SimulatedWebDatabase


def build_practical_selector(
    domain_table: Optional[DomainStatisticsTable] = None,
    switch_coverage: Optional[float] = None,
):
    """The selector half of the practical configuration.

    With a domain table: the DM selector (smoothing on).  Without one:
    GL with an MMMI tail, switching on the harvest-rate saturation
    detector — no ground-truth coverage oracle is assumed, so this
    works on real sources.
    """
    if domain_table is not None:
        return DomainKnowledgeSelector(domain_table, smoothing=True)
    return GreedyMmmiSelector(
        switch_coverage=switch_coverage,
        detector=SaturationDetector(window=20, min_harvest_rate=1.0),
    )


def build_practical_crawler(
    server: "SimulatedWebDatabase",
    domain_table: Optional[DomainStatisticsTable] = None,
    seed: Optional[int] = None,
    min_harvest_rate: float = 1.0,
    use_xml: bool = False,
    bus=None,
) -> "CrawlerEngine":
    """A fully configured crawler for one source.

    Parameters
    ----------
    server:
        The target source (or any object honouring its interface).
    domain_table:
        Same-domain statistics if available; enables the DM selector.
    seed:
        Reproducibility seed for the selector's random choices.
    min_harvest_rate:
        Abortion threshold — stop paying for a query's remaining pages
        once they cannot yield this many new records per page.
    use_xml:
        Exercise the XML wire format end to end.
    bus:
        Optional :class:`~repro.runtime.events.EventBus` for telemetry.
    """
    # Imported here to keep `repro.policies` importable from the engine
    # (which imports the selector protocol) without a cycle.
    from repro.crawler.engine import CrawlerEngine

    abortion = CombinedAbort(
        total_count=TotalCountAbort(min_harvest_rate=min_harvest_rate),
        duplicate_fraction=DuplicateFractionAbort(
            max_duplicate_fraction=0.9, probe_pages=2
        ),
    )
    selector = build_practical_selector(domain_table)
    return CrawlerEngine(
        server, selector, seed=seed, abortion=abortion, use_xml=use_xml, bus=bus
    )
