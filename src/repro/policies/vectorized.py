"""Batch scoring kernels over the interned statistic columns.

The scalar hot loops — GL's per-id degree lookups and MMMI's per-pair
PMI reads — spend most of their time in Python-level dict/array access.
This module lifts both onto numpy views built **directly on the live
``array('I')`` columns** of :class:`~repro.crawler.localdb.LocalDatabase`
(no copies of the statistics, only of the gathered results):

- :func:`degree_batch_scorer` / :func:`frequency_batch_scorer` gather
  many frontier scores in one fancy-index read — the incremental
  frontier's flush hands its whole dirty set to one call.
- :func:`mmmi_best_ratios` computes, for every candidate, the **maximum
  co-occurrence ratio** ``joint·n / (f_cand·f_q)`` over the issued
  queries, iterating *queried-major*: each issued query's co-occurrence
  row (:meth:`~repro.crawler.localdb.LocalDatabase.cooc_row`) bulk-loads
  into two arrays and scatters into a per-candidate running max.

Bit-identity with the scalar path is a design constraint, not an
accident:

- The ratio arithmetic is exact.  All inputs are integers below 2⁵³, so
  ``joint * n`` and ``f_cand * f_q`` are exact in float64 and the single
  division is correctly rounded — the same bits CPython's ``int/int``
  true division produces in the scalar loop.
- ``log`` is *not* vectorized.  ``max_i log(r_i) == log(max_i r_i)``
  because ``log`` is monotonic, so the kernel maximizes the exact ratios
  and the caller applies one ``math.log`` per candidate — numpy's SIMD
  ``np.log`` may differ from libm by an ulp, ``math.log`` cannot.
- Queried-major and candidate-major visit exactly the same ``(cand, q)``
  pairs: a co-occurrence row holds precisely the positive-joint
  neighbours, and ``max`` is order-independent.

The MMMI kernel is only equivalent to ``aggregate="max"``; the ``mean``
variant sums logs in set-iteration order and stays on the scalar path.
Everything here degrades to ``None`` when numpy is unavailable (callers
fall back to the scalar loops) — numpy is an accelerator, never a
dependency.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, List, Optional, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except Exception:  # pragma: no cover - numpy-less platforms
    np = None  # type: ignore[assignment]

#: ``array('I')`` must be 4 bytes for the zero-copy uint32 views; on the
#: (rare) platform where it is not, every kernel silently declines.
_U32_OK = np is not None and array("I").itemsize == 4

BatchScoreFn = Callable[[Sequence[int]], List[float]]


def available() -> bool:
    """Whether the numpy kernels can run on this platform."""
    return _U32_OK


def _column_scorer(column_fn: Callable[[], array]) -> BatchScoreFn:
    """Batch scorer gathering float scores from a live uint32 column."""

    def score_ids(ids: Sequence[int]) -> List[float]:
        column = column_fn()
        view = np.frombuffer(column, dtype=np.uint32)
        idx = np.fromiter(ids, dtype=np.int64, count=len(ids))
        if view.shape[0] == 0 or (idx >= view.shape[0]).any():
            # Ids past the column's end score 0, like the scalar guard.
            size = view.shape[0]
            return [float(view[i]) if i < size else 0.0 for i in ids]
        return view[idx].astype(np.float64).tolist()

    return score_ids


def degree_batch_scorer(local) -> Optional[BatchScoreFn]:
    """GL's batch scorer over the live degree column, or None."""
    if not _U32_OK:
        return None
    column_fn = getattr(local, "degree_column", None)
    if column_fn is None:
        return None
    return _column_scorer(column_fn)


def frequency_batch_scorer(local) -> Optional[BatchScoreFn]:
    """GF's batch scorer over the live frequency column, or None."""
    if not _U32_OK:
        return None
    column_fn = getattr(local, "frequency_column", None)
    if column_fn is None:
        return None
    return _column_scorer(column_fn)


def supports_mmmi(local) -> bool:
    """Whether :func:`mmmi_best_ratios` can serve this database."""
    return (
        _U32_OK
        and getattr(local, "track_cooccurrence", False)
        and hasattr(local, "cooc_row")
        and hasattr(local, "frequency_column")
    )


def mmmi_best_ratios(
    local, queried_ids: Sequence[int], cand_ids: Sequence[int]
) -> List[float]:
    """Per-candidate max co-occurrence ratio against the issued queries.

    Returns ``best[i] = max_q joint(c_i, q)·n / (f(c_i)·f(q))`` over the
    issued queries ``q`` co-occurring with candidate ``c_i``, or ``0.0``
    when none co-occurs (ratios are strictly positive, so 0 is a safe
    sentinel; the scalar path's ``-inf`` dependency maps to the same
    "independent" outcome).  ``math.log`` of each positive entry equals
    the scalar ``dependency_score_ids(..., use_max=True)`` bit for bit.
    """
    total = len(cand_ids)
    best = np.zeros(total, dtype=np.float64)
    n = len(local)
    freq_col = local.frequency_column()
    num_ids = len(freq_col)
    if total == 0 or n == 0 or num_ids == 0:
        return best.tolist()
    cand = np.fromiter(cand_ids, dtype=np.int64, count=total)
    is_candidate = np.zeros(num_ids, dtype=np.bool_)
    is_candidate[cand] = True
    index_of = np.zeros(num_ids, dtype=np.int64)
    index_of[cand] = np.arange(total, dtype=np.int64)
    freq = np.frombuffer(freq_col, dtype=np.uint32).astype(np.float64)
    nf = float(n)
    cooc_row = local.cooc_row
    for q in queried_ids:
        if q >= num_ids:
            continue
        row: Dict[int, int] = cooc_row(q)
        k = len(row)
        if k == 0:
            continue
        fq = freq_col[q]
        if fq == 0:
            continue
        partners = np.fromiter(row.keys(), dtype=np.int64, count=k)
        mask = is_candidate[partners]
        if not mask.any():
            continue
        joints = np.fromiter(row.values(), dtype=np.float64, count=k)
        hit = partners[mask]
        # Exact: joints·n and f_cand·f_q are integer-valued float64
        # products (< 2^53), the division is correctly rounded — the
        # same bits as the scalar int/int true division.
        ratios = (joints[mask] * nf) / (freq[hit] * float(fq))
        slots = index_of[hit]
        # A row's keys are unique, so the fancy-indexed read-modify-write
        # has no duplicate-slot hazard within one query.
        np.maximum(best[slots], ratios, out=ratios)
        best[slots] = ratios
    return best.tolist()
