"""Durable crawl runtime: event bus, journaled checkpoints, resume.

The paper's setting is a budget-limited crawl measured in communication
rounds — exactly the regime where a long crawl that dies near the end
and restarts from zero is unaffordable.  This package makes any crawl
durable and observable:

- :mod:`repro.runtime.events` — a typed event stream (``QueryIssued``,
  ``PageFetched``, ``QueryAborted``/``Rejected``/``Failed``,
  ``RecordsHarvested``, ``RetryAttempted``, ``CheckpointWritten``,
  ``CrawlStopped``) with pluggable sinks: an in-memory ring buffer, a
  JSONL journal writer, and a metrics aggregator.
- :mod:`repro.runtime.serialize` — JSON codecs for the crawl's value
  types (attribute values, queries, records, RNG streams).
- :mod:`repro.runtime.journal` — the write-ahead outcome journal: one
  JSONL line per completed query, enough to rebuild crawl state without
  re-contacting the source.
- :mod:`repro.runtime.checkpoint` — full-state ``CrawlCheckpoint``
  construction and restoration on top of every policy's
  ``state_dict()/load_state()``.
- :mod:`repro.runtime.crawler` — :class:`RuntimeCrawler`, the durable
  loop: checkpoint every N steps, journal every step, and
  :meth:`RuntimeCrawler.resume` a killed crawl to a bit-identical
  :class:`~repro.crawler.engine.CrawlResult`.

Submodules are imported lazily (PEP 562) so low-level modules — the
engine, the prober, the flaky server — can import
``repro.runtime.events`` without creating an import cycle through
:mod:`repro.runtime.crawler`.
"""

from __future__ import annotations

_EXPORTS = {
    # events
    "CrawlEvent": "repro.runtime.events",
    "QueryIssued": "repro.runtime.events",
    "PageFetched": "repro.runtime.events",
    "QueryAborted": "repro.runtime.events",
    "QueryRejected": "repro.runtime.events",
    "QueryFailed": "repro.runtime.events",
    "RecordsHarvested": "repro.runtime.events",
    "RetryAttempted": "repro.runtime.events",
    "ExperimentTaskCompleted": "repro.runtime.events",
    "ExperimentSuiteCompleted": "repro.runtime.events",
    "CheckpointWritten": "repro.runtime.events",
    "CrawlStopped": "repro.runtime.events",
    "EventBus": "repro.runtime.events",
    "EventSink": "repro.runtime.events",
    "RingBufferSink": "repro.runtime.events",
    "JsonlEventSink": "repro.runtime.events",
    "MetricsAggregator": "repro.runtime.events",
    "RoundsHistogram": "repro.runtime.events",
    "CrashAfterSteps": "repro.runtime.events",
    "SimulatedCrash": "repro.runtime.events",
    # journal
    "JournalEntry": "repro.runtime.journal",
    "OutcomeJournal": "repro.runtime.journal",
    "read_journal": "repro.runtime.journal",
    "encode_outcome": "repro.runtime.journal",
    "decode_outcome": "repro.runtime.journal",
    # checkpoint
    "CheckpointError": "repro.runtime.checkpoint",
    "CrawlCheckpoint": "repro.runtime.checkpoint",
    "FleetCheckpoint": "repro.runtime.checkpoint",
    # crawler
    "RuntimeCrawler": "repro.runtime.crawler",
    "rebuild_engine_state": "repro.runtime.crawler",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__
