"""Full-state crawl checkpoints.

A :class:`CrawlCheckpoint` captures everything a crawl needs to
continue as if never interrupted: the engine's state (issued queries,
``DB_local`` records, history, counters, both RNG streams, and the
selector's :meth:`~repro.policies.base.QuerySelector.state_dict`), the
server's runtime state (round counter, and the failure stream for a
:class:`~repro.server.flaky.FlakyServer`), the active stopping limits,
and an optional ``setup`` recipe the CLI uses to rebuild the server and
selector from scratch on ``repro resume``.

What a checkpoint deliberately does **not** contain: the source's data
(tables are config, rebuilt or reloaded on resume) and the selector's
constructor arguments (same rule — resume constructs the selector with
identical config, then loads its dynamic state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.errors import ReproError
from repro.io import CHECKPOINT_FORMAT, load_checkpoint, save_checkpoint

PathLike = Union[str, Path]


class CheckpointError(ReproError):
    """A checkpoint cannot be captured, stored, or restored."""


@dataclass
class CrawlCheckpoint:
    """One durable snapshot of a crawl in flight.

    ``step`` is the number of completed query–harvest–decompose steps
    at capture time; journal entries with larger step numbers postdate
    this checkpoint and are replayed on recovery.
    """

    step: int
    engine: dict
    server: dict
    limits: dict = field(default_factory=dict)
    checkpoint_every: int = 100
    snapshot_every: int = 0
    setup: Optional[dict] = None
    #: Optional :meth:`~repro.metrics.registry.MetricsRegistry.state_dict`
    #: snapshot, so a resumed crawl's telemetry continues its totals.
    metrics: Optional[dict] = None
    #: Optional :meth:`~repro.trace.sink.TraceSink.state_dict` snapshot
    #: (next span seq, last rounds horizon), so ``repro resume``
    #: continues a trace seamlessly even without the trace file.
    trace: Optional[dict] = None

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        engine,
        limits: Optional[dict] = None,
        checkpoint_every: int = 100,
        snapshot_every: int = 0,
        setup: Optional[dict] = None,
        metrics: Optional[dict] = None,
        trace: Optional[dict] = None,
    ) -> "CrawlCheckpoint":
        """Snapshot a live engine (and its server) into a checkpoint."""
        server = engine.server
        if not hasattr(server, "runtime_state"):
            raise CheckpointError(
                f"server {type(server).__name__} does not expose runtime_state()"
            )
        return cls(
            step=engine.steps,
            engine=engine.state_dict(),
            server=server.runtime_state(),
            limits=dict(limits or {}),
            checkpoint_every=checkpoint_every,
            snapshot_every=snapshot_every,
            setup=setup,
            metrics=metrics,
            trace=trace,
        )

    def restore_into(self, engine) -> None:
        """Load this checkpoint's state onto a freshly built engine.

        The caller constructs the engine with the same configuration
        (server config, selector type and arguments, abortion policy,
        flags) as the checkpointed crawl; this method restores the
        dynamic state on top.
        """
        engine.load_state(self.engine)
        engine.server.load_runtime_state(self.server)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        payload = {
            "format": CHECKPOINT_FORMAT,
            "step": self.step,
            "engine": self.engine,
            "server": self.server,
            "limits": self.limits,
            "checkpoint_every": self.checkpoint_every,
            "snapshot_every": self.snapshot_every,
            "setup": self.setup,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "CrawlCheckpoint":
        try:
            return cls(
                step=payload["step"],
                engine=payload["engine"],
                server=payload["server"],
                limits=payload.get("limits", {}),
                checkpoint_every=payload.get("checkpoint_every", 100),
                snapshot_every=payload.get("snapshot_every", 0),
                setup=payload.get("setup"),
                metrics=payload.get("metrics"),
                trace=payload.get("trace"),
            )
        except KeyError as error:
            raise CheckpointError(
                f"checkpoint payload missing key {error}"
            ) from error

    def save(self, path: PathLike) -> None:
        save_checkpoint(self.to_payload(), path)

    @classmethod
    def load(cls, path: PathLike) -> "CrawlCheckpoint":
        return cls.from_payload(load_checkpoint(path))


@dataclass
class FleetCheckpoint:
    """A mid-allocation snapshot of a whole fleet run.

    One scheduler ``state_dict`` per shard (shard order is part of the
    fleet's deterministic plan), plus the fleet configuration used to
    plan the run.  Resume rebuilds every shard's engines from the specs
    — fresh, unprepared — loads each shard's state on top, and lets the
    schedulers continue toward their full shard budgets; the warehouse
    schedulers' growing-budget continuity guarantees the resumed fleet
    ends exactly where the uninterrupted one would.

    The config echo is a consistency check, not a recipe override: the
    resuming caller must pass the same :class:`~repro.fleet.FleetConfig`
    (the driver raises on mismatch) because the spec plan, shard map,
    and budget split are all derived from it.
    """

    config: dict
    shard_states: list
    shard_budgets: list
    rounds_done: int

    def to_payload(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "kind": "fleet",
            "config": self.config,
            "shard_states": self.shard_states,
            "shard_budgets": self.shard_budgets,
            "rounds_done": self.rounds_done,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FleetCheckpoint":
        if payload.get("kind") != "fleet":
            raise CheckpointError(
                f"not a fleet checkpoint (kind={payload.get('kind')!r})"
            )
        try:
            return cls(
                config=payload["config"],
                shard_states=payload["shard_states"],
                shard_budgets=payload["shard_budgets"],
                rounds_done=payload["rounds_done"],
            )
        except KeyError as error:
            raise CheckpointError(
                f"fleet checkpoint payload missing key {error}"
            ) from error

    def save(self, path: PathLike) -> None:
        save_checkpoint(self.to_payload(), path)

    @classmethod
    def load(cls, path: PathLike) -> "FleetCheckpoint":
        return cls.from_payload(load_checkpoint(path))
