"""The durable crawl loop: journal every step, commit every N steps.

:class:`RuntimeCrawler` wraps a :class:`~repro.crawler.engine.CrawlerEngine`
and replicates its stopping semantics exactly, adding durability:

- a **write-ahead journal** entry after *every* completed step;
- a **checkpoint marker** every ``checkpoint_every`` completed steps:
  the journal is group-commit flushed and a small ``progress.json``
  manifest records the durable horizon — O(1) work, so checkpointing
  every 100 steps costs a few percent, not a second snapshot of the
  crawl;
- a **full-state snapshot** (``checkpoint.json``: engine + selector +
  server state) at baseline, on graceful suspension, and optionally
  every ``snapshot_every`` steps when bounded replay time matters more
  than hot-loop cost;
- :meth:`RuntimeCrawler.resume` — rebuild the crawl from
  ``checkpoint.json`` + ``journal.jsonl`` and continue to a
  bit-identical :class:`~repro.crawler.engine.CrawlResult` on fixed
  seeds.

Recovery replays journaled steps through the *selector itself*
(:meth:`~repro.crawler.engine.CrawlerEngine.replay_outcome`): the
policy re-proposes exactly the queries the live crawl issued, consuming
identical RNG draws, and each journaled outcome is folded in without
contacting the server.  After replay the server's runtime state and the
retry-jitter RNG are fast-forwarded from the last journal entry.  Steps
lost past the journal's durable horizon are not lost at all: resume
re-executes them live, which on fixed seeds reproduces them bit for
bit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.core.errors import CrawlError
from repro.crawler.abortion import AbortionPolicy
from repro.crawler.engine import CrawlerEngine, CrawlResult, Seed
from repro.policies.base import QuerySelector
from repro.runtime.checkpoint import CheckpointError, CrawlCheckpoint
from repro.runtime.events import CheckpointWritten, CrawlStopped, EventBus
from repro.runtime.journal import OutcomeJournal, read_journal
from repro.runtime.serialize import restore_rng
from repro.server.flaky import ExponentialBackoff

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.metrics.telemetry import TelemetrySink
    from repro.trace.sink import TraceSink

PathLike = Union[str, Path]

CHECKPOINT_FILE = "checkpoint.json"
JOURNAL_FILE = "journal.jsonl"
PROGRESS_FILE = "progress.json"

#: Keys :meth:`RuntimeCrawler.crawl` accepts as stopping limits.
_LIMIT_KEYS = ("max_rounds", "max_queries", "target_coverage")


def rebuild_engine_state(checkpoint_dir: PathLike) -> dict:
    """What the journal alone proves about the crawl at crash time.

    Reads ``checkpoint.json`` + ``journal.jsonl`` and — without
    constructing a server or selector — reports the crawl position the
    files encode: completed steps, rounds, and the distinct-record count
    (checkpointed records plus journaled new records).  Used by
    diagnostics and the journal-replay verification tests.
    """
    directory = Path(checkpoint_dir)
    checkpoint = CrawlCheckpoint.load(directory / CHECKPOINT_FILE)
    entries = read_journal(directory / JOURNAL_FILE, after_step=checkpoint.step)
    record_ids = {payload["id"] for payload in checkpoint.engine["records"]}
    for entry in entries:
        record_ids.update(r.record_id for r in entry.outcome.new_records)
    last = entries[-1] if entries else None
    state = {
        "checkpoint_step": checkpoint.step,
        "step": last.step if last else checkpoint.step,
        "rounds": last.rounds if last else checkpoint.server.get("rounds", 0),
        "records": len(record_ids),
        "journal_entries": len(entries),
    }
    progress_path = directory / PROGRESS_FILE
    if progress_path.exists():
        progress = json.loads(progress_path.read_text(encoding="utf-8"))
        state["committed_step"] = progress["step"]
    return state


class RuntimeCrawler:
    """Durable wrapper around one single-use engine.

    Parameters
    ----------
    engine:
        A fresh (or checkpoint-restored) engine; the runtime drives its
        ``step()`` loop directly.
    checkpoint_dir:
        Directory for ``checkpoint.json`` and ``journal.jsonl``; with
        ``None`` the runtime degrades to a plain (but event-emitting)
        crawl loop.
    checkpoint_every:
        Completed steps between checkpoint markers (journal
        group-commit + ``progress.json`` manifest — O(1) work, no state
        snapshot); ``0`` disables periodic markers (baseline and
        suspension checkpoints are still written).
    snapshot_every:
        Completed steps between periodic *full-state* snapshots
        (``checkpoint.json``); ``0`` (the default) writes them only at
        baseline and suspension.  A snapshot costs O(crawl state), so
        this is a recovery-replay-time bound to opt into, not a
        default.
    setup:
        Opaque recipe stored inside every checkpoint; the CLI records
        how to rebuild the server/selector so ``repro resume`` works
        from the directory alone.
    telemetry:
        Optional :class:`~repro.metrics.telemetry.TelemetrySink`.  The
        runtime attaches it to the engine's bus (if not already
        attached), samples server-side gauges at every full snapshot
        and at crawl stop, and embeds a registry snapshot inside
        ``checkpoint.json`` so a resumed crawl reports continuous
        totals.
    trace:
        Optional :class:`~repro.trace.sink.TraceSink`.  Attached to the
        engine's bus (if not already attached) — which switches the
        engine/prober/selector phase instrumentation on — and its
        continuation state (next span seq, rounds horizon) is embedded
        in every full snapshot so a resumed crawl's trace file picks up
        exactly where the original left off.
    """

    def __init__(
        self,
        engine: CrawlerEngine,
        checkpoint_dir: Optional[PathLike] = None,
        checkpoint_every: int = 100,
        snapshot_every: int = 0,
        setup: Optional[dict] = None,
        telemetry: Optional["TelemetrySink"] = None,
        trace: Optional["TraceSink"] = None,
    ) -> None:
        if checkpoint_every < 0:
            raise CrawlError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if snapshot_every < 0:
            raise CrawlError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.engine = engine
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.snapshot_every = snapshot_every
        self.setup = setup
        self.telemetry = telemetry
        if telemetry is not None and telemetry not in engine.bus:
            engine.bus.attach(telemetry)
        self.trace = trace
        if trace is not None:
            # Durable crawls flush the trace at every step so its
            # durable horizon never falls behind the journal's.
            trace.step_flush = True
            if trace not in engine.bus:
                engine.bus.attach(trace)
        self.checkpoints_written = 0
        self._limits: dict = {}
        self._journal: Optional[OutcomeJournal] = None

    # ------------------------------------------------------------------
    # Fresh crawl
    # ------------------------------------------------------------------
    def crawl(
        self,
        seeds: Iterable[Seed],
        max_rounds: Optional[int] = None,
        max_queries: Optional[int] = None,
        target_coverage: Optional[float] = None,
        allow_empty_seeds: bool = False,
        stop_after_steps: Optional[int] = None,
    ) -> CrawlResult:
        """Run a new durable crawl (the engine must be unused).

        ``stop_after_steps`` suspends the crawl gracefully after that
        many completed steps this run (writing a final checkpoint);
        the result is then marked ``stopped_by="suspended"``.
        """
        self.engine.prepare(seeds, allow_empty_seeds=allow_empty_seeds)
        self._limits = {
            "max_rounds": max_rounds,
            "max_queries": max_queries,
            "target_coverage": target_coverage,
        }
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            self._journal = OutcomeJournal(
                self.checkpoint_dir / JOURNAL_FILE, append=False
            )
            self._write_checkpoint()  # baseline: resume works from step 0
        return self._run(stop_after_steps)

    # ------------------------------------------------------------------
    # Continue (after resume or suspension)
    # ------------------------------------------------------------------
    def run(
        self, stop_after_steps: Optional[int] = None, **limit_overrides
    ) -> CrawlResult:
        """Continue a prepared crawl to its limits (or suspend again)."""
        unknown = set(limit_overrides) - set(_LIMIT_KEYS)
        if unknown:
            raise CrawlError(f"unknown limit overrides: {sorted(unknown)}")
        self._limits.update(limit_overrides)
        if self.checkpoint_dir is not None and self._journal is None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            self._journal = OutcomeJournal(
                self.checkpoint_dir / JOURNAL_FILE, append=True
            )
        return self._run(stop_after_steps)

    # ------------------------------------------------------------------
    def _run(self, stop_after_steps: Optional[int] = None) -> CrawlResult:
        engine = self.engine
        max_rounds = self._limits.get("max_rounds")
        max_queries = self._limits.get("max_queries")
        target_coverage = self._limits.get("target_coverage")
        steps_this_run = 0
        stopped_by = "frontier-exhausted"
        # Same criteria in the same order as CrawlerEngine.crawl, so a
        # durable crawl stops exactly where a plain one would.
        while True:
            if max_rounds is not None and engine.server.rounds >= max_rounds:
                stopped_by = "max-rounds"
                break
            if (
                max_queries is not None
                and len(engine.context.lqueried) >= max_queries
            ):
                stopped_by = "max-queries"
                break
            if (
                target_coverage is not None
                and engine._true_coverage() >= target_coverage
            ):
                stopped_by = "target-coverage"
                break
            if (
                stop_after_steps is not None
                and steps_this_run >= stop_after_steps
            ):
                stopped_by = "suspended"
                break
            outcome = engine.step()
            if outcome is None:
                break
            steps_this_run += 1
            if self._journal is not None:
                self._journal.record(
                    step=engine.steps,
                    rounds=engine.server.rounds,
                    outcome=outcome,
                    server_state=engine.server.runtime_state(),
                    backoff_rng=(
                        engine.backoff_rng
                        if engine.prober.max_retries > 0
                        else None
                    ),
                )
            if self.checkpoint_dir is not None:
                if (
                    self.snapshot_every > 0
                    and engine.steps % self.snapshot_every == 0
                ):
                    self._write_checkpoint()
                elif (
                    self.checkpoint_every > 0
                    and engine.steps % self.checkpoint_every == 0
                ):
                    self._commit_progress()
        if stopped_by == "suspended" and self.checkpoint_dir is not None:
            self._write_checkpoint()
        elif self._journal is not None:
            self._journal.flush()
        result = engine.result(stopped_by)
        if self.telemetry is not None:
            self.telemetry.sample_server(engine.server)
        if engine.bus.has_sinks:
            engine.bus.emit(
                CrawlStopped(
                    stopped_by=stopped_by,
                    rounds=result.communication_rounds,
                    queries=result.queries_issued,
                    records=result.records_harvested,
                ),
                policy=engine.selector.name,
            )
        return result

    def _write_checkpoint(self) -> None:
        """Full-state snapshot: baseline, suspension, ``snapshot_every``."""
        assert self.checkpoint_dir is not None
        if self._journal is not None:
            self._journal.flush()
        metrics = None
        if self.telemetry is not None:
            self.telemetry.sample_server(self.engine.server)
            metrics = self.telemetry.registry.state_dict()
        trace_state = (
            self.trace.state_dict() if self.trace is not None else None
        )
        checkpoint = CrawlCheckpoint.capture(
            self.engine,
            limits=self._limits,
            checkpoint_every=self.checkpoint_every,
            snapshot_every=self.snapshot_every,
            setup=self.setup,
            metrics=metrics,
            trace=trace_state,
        )
        path = self.checkpoint_dir / CHECKPOINT_FILE
        checkpoint.save(path)
        self._emit_checkpoint_written(checkpoint.step, path, snapshot=True)

    def _commit_progress(self) -> None:
        """Checkpoint marker: flush the journal, stamp the horizon.

        This is the hot-path checkpoint — O(1) regardless of crawl
        size.  Entries up to here are durable; recovery replays them
        from the last full snapshot, so no state snapshot is needed.
        """
        assert self.checkpoint_dir is not None and self._journal is not None
        self._journal.flush()
        path = self.checkpoint_dir / PROGRESS_FILE
        payload = {
            "step": self.engine.steps,
            "rounds": self.engine.server.rounds,
            "records": len(self.engine.local_db),
            "journal_entries": self._journal.entries_written,
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        self._emit_checkpoint_written(self.engine.steps, path, snapshot=False)

    def _emit_checkpoint_written(
        self, step: int, path: Path, snapshot: bool
    ) -> None:
        self.checkpoints_written += 1
        if self.engine.bus.has_sinks:
            self.engine.bus.emit(
                CheckpointWritten(
                    step=step,
                    rounds=self.engine.server.rounds,
                    path=str(path),
                    snapshot=snapshot,
                ),
                policy=self.engine.selector.name,
            )

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        checkpoint_dir: PathLike,
        server,
        selector: QuerySelector,
        abortion: Optional[AbortionPolicy] = None,
        backoff: Optional[ExponentialBackoff] = None,
        bus: Optional[EventBus] = None,
        telemetry: Optional["TelemetrySink"] = None,
        trace: Optional["TraceSink"] = None,
    ) -> "RuntimeCrawler":
        """Rebuild a crawl from its checkpoint directory.

        The caller supplies a *fresh* server and selector constructed
        with the same configuration as the crashed crawl (data tables
        and constructor arguments are config, not state); engine flags
        (``use_xml``, ``keep_outcomes``, ``max_retries``) are read back
        from the checkpoint.  Journaled steps past the checkpoint are
        replayed, then the server and retry RNG are fast-forwarded to
        the last journaled instant.  Call :meth:`run` on the returned
        runtime to continue the crawl.

        When ``telemetry`` is given and the checkpoint carries a
        metrics snapshot, the snapshot is loaded into the sink's
        registry first, so counters continue from the last full
        snapshot instead of restarting at zero (journal replay is
        offline and charges no events).

        When ``trace`` is given (a :class:`~repro.trace.sink.TraceSink`
        built with ``fresh=False``), the sink is aligned to the
        recovered crawl position: spans the crashed run wrote past the
        journal's durable horizon are truncated away and the span
        sequence continues where the survivors end, so the resumed
        trace file ends up byte-identical to an uninterrupted run's.
        Replayed steps emit no phases — their spans already survive in
        the file.
        """
        directory = Path(checkpoint_dir)
        checkpoint_path = directory / CHECKPOINT_FILE
        if not checkpoint_path.exists():
            raise CheckpointError(f"no checkpoint at {checkpoint_path}")
        checkpoint = CrawlCheckpoint.load(checkpoint_path)
        if telemetry is not None and checkpoint.metrics is not None:
            telemetry.registry.load_state(checkpoint.metrics)
        flags = checkpoint.engine.get("flags", {})
        engine = CrawlerEngine(
            server,
            selector,
            seed=None,  # both RNG streams are restored from state below
            abortion=abortion,
            use_xml=flags.get("use_xml", False),
            keep_outcomes=flags.get("keep_outcomes", False),
            max_retries=flags.get("max_retries", 0),
            bus=bus,
            backoff=backoff,
        )
        checkpoint.restore_into(engine)
        entries = read_journal(directory / JOURNAL_FILE, after_step=checkpoint.step)
        for entry in entries:
            engine.replay_outcome(entry.outcome, entry.rounds)
        if entries:
            last = entries[-1]
            engine.server.load_runtime_state(last.server)
            if last.backoff_rng is not None:
                restore_rng(engine.backoff_rng, last.backoff_rng)
        if trace is not None:
            # Align after replay: engine.steps is the recovered horizon,
            # and the server's round counter seeds the per-step
            # rounds-cost deltas of the steps still to run.
            trace.align(
                step=engine.steps,
                rounds=engine.server.rounds,
                state=checkpoint.trace,
            )
        runtime = cls(
            engine,
            checkpoint_dir=directory,
            checkpoint_every=checkpoint.checkpoint_every,
            snapshot_every=checkpoint.snapshot_every,
            setup=checkpoint.setup,
            telemetry=telemetry,
            trace=trace,
        )
        runtime._limits = dict(checkpoint.limits)
        return runtime
