"""The crawl event bus — a typed stream of everything a crawl does.

The engine, the prober, the retrying transport, the schedulers, and the
durable runtime all emit small typed events onto an :class:`EventBus`;
sinks subscribe to consume them.  Three sinks ship with the runtime:

- :class:`RingBufferSink` — the last N events in memory, for
  interactive inspection and tests;
- :class:`JsonlEventSink` — an append-only JSONL writer, the
  observability log a production deployment would tail;
- :class:`MetricsAggregator` — per-policy counters plus
  latency-in-rounds histograms, consumable by
  :func:`repro.analysis.reports.render_runtime_metrics`.

Events are observational: emitting them never touches crawl state or
RNG streams, so an instrumented crawl is bit-identical to a bare one.
Emission is guarded by :attr:`EventBus.has_sinks` at the hot call
sites, so a bus nobody listens to costs one attribute check per event.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.core.errors import ReproError
from repro.core.query import AnyQuery


@dataclass
class CrawlEvent:
    """Base event.  ``policy`` and ``source`` are stamped by the emitter."""

    #: Short event-kind tag, stable across versions (used in payloads).
    kind = "event"

    policy: Optional[str] = field(default=None, kw_only=True)
    source: Optional[str] = field(default=None, kw_only=True)

    def payload(self) -> dict:
        """JSON-safe dict for the JSONL sink."""
        body = {"event": self.kind}
        if self.policy is not None:
            body["policy"] = self.policy
        if self.source is not None:
            body["source"] = self.source
        body.update(self._body())
        return body

    def _body(self) -> dict:
        return {}


def _query_label(query: AnyQuery) -> str:
    return str(query)


@dataclass
class QueryIssued(CrawlEvent):
    """The prober put a query on the wire (first page about to be paid)."""

    kind = "query-issued"
    query: AnyQuery = None  # type: ignore[assignment]

    def _body(self) -> dict:
        return {"query": _query_label(self.query)}


@dataclass
class PageFetched(CrawlEvent):
    """One result page arrived and was extracted."""

    kind = "page-fetched"
    query: AnyQuery = None  # type: ignore[assignment]
    page_number: int = 0
    records: int = 0
    new_records: int = 0

    def _body(self) -> dict:
        return {
            "query": _query_label(self.query),
            "page": self.page_number,
            "records": self.records,
            "new": self.new_records,
        }


@dataclass
class QueryRejected(CrawlEvent):
    """The interface refused the query (no round charged)."""

    kind = "query-rejected"
    query: AnyQuery = None  # type: ignore[assignment]

    def _body(self) -> dict:
        return {"query": _query_label(self.query)}


@dataclass
class QueryAborted(CrawlEvent):
    """The abortion policy stopped paying for the query's remaining pages.

    ``pages_saved`` is the number of accessible pages the query still
    had — communication rounds the abort declined to pay.
    """

    kind = "query-aborted"
    query: AnyQuery = None  # type: ignore[assignment]
    pages_fetched: int = 0
    pages_saved: int = 0

    def _body(self) -> dict:
        return {
            "query": _query_label(self.query),
            "pages": self.pages_fetched,
            "saved": self.pages_saved,
        }


@dataclass
class QueryFailed(CrawlEvent):
    """Retries exhausted mid-query; pages fetched so far were harvested."""

    kind = "query-failed"
    query: AnyQuery = None  # type: ignore[assignment]
    pages_fetched: int = 0

    def _body(self) -> dict:
        return {"query": _query_label(self.query), "pages": self.pages_fetched}


@dataclass
class RetryAttempted(CrawlEvent):
    """One transient failure absorbed; the request will be retried."""

    kind = "retry-attempted"
    query: AnyQuery = None  # type: ignore[assignment]
    page_number: int = 0
    attempt: int = 0
    backoff_delay: float = 0.0
    backoff_rounds: int = 0

    def _body(self) -> dict:
        return {
            "query": _query_label(self.query),
            "page": self.page_number,
            "attempt": self.attempt,
            "delay": self.backoff_delay,
            "delay_rounds": self.backoff_rounds,
        }


@dataclass
class RecordsHarvested(CrawlEvent):
    """One query-harvest-decompose step completed."""

    kind = "records-harvested"
    query: AnyQuery = None  # type: ignore[assignment]
    step: int = 0
    new_records: int = 0
    pages_fetched: int = 0
    records_total: int = 0
    rounds: int = 0

    def _body(self) -> dict:
        return {
            "query": _query_label(self.query),
            "step": self.step,
            "new": self.new_records,
            "pages": self.pages_fetched,
            "records_total": self.records_total,
            "rounds": self.rounds,
        }


@dataclass
class CheckpointWritten(CrawlEvent):
    """A durable checkpoint reached disk.

    ``snapshot`` distinguishes a full-state snapshot
    (``checkpoint.json``) from a light checkpoint marker (journal
    group-commit + ``progress.json``).
    """

    kind = "checkpoint-written"
    step: int = 0
    rounds: int = 0
    path: str = ""
    snapshot: bool = True

    def _body(self) -> dict:
        return {
            "step": self.step,
            "rounds": self.rounds,
            "path": self.path,
            "snapshot": self.snapshot,
        }


@dataclass
class ExperimentTaskCompleted(CrawlEvent):
    """One (policy × seed-set) crawl of an experiment grid finished.

    Emitted by :func:`repro.parallel.run_crawl_grid` as results merge
    back in fixed task order; ``seconds`` is the task's own wall-clock
    crawl time inside its worker.
    """

    kind = "task-completed"
    label: str = ""
    seed_index: int = 0
    seconds: float = 0.0
    rounds: int = 0
    records: int = 0

    def _body(self) -> dict:
        return {
            "label": self.label,
            "seed_index": self.seed_index,
            "seconds": round(self.seconds, 6),
            "rounds": self.rounds,
            "records": self.records,
        }


@dataclass
class ExperimentSuiteCompleted(CrawlEvent):
    """A whole experiment grid finished.

    ``task_seconds`` is the sum of per-task crawl times (what a
    sequential run would have cost); ``wall_seconds`` is what the
    fan-out actually took, so ``task_seconds / wall_seconds`` is the
    realized speedup.
    """

    kind = "suite-completed"
    tasks: int = 0
    workers: int = 0
    wall_seconds: float = 0.0
    task_seconds: float = 0.0

    def _body(self) -> dict:
        return {
            "tasks": self.tasks,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "task_seconds": round(self.task_seconds, 6),
        }


@dataclass
class StepStarted(CrawlEvent):
    """A query–harvest–decompose step is beginning.

    Emitted by the engine only when a tracer is listening
    (:attr:`EventBus.has_tracers`); ``step`` is the 1-based number the
    step will carry in its :class:`RecordsHarvested` event.
    """

    kind = "step-started"
    step: int = 0

    def _body(self) -> dict:
        return {"step": self.step}


@dataclass
class PhaseCompleted(CrawlEvent):
    """One timed crawl phase finished (tracing instrumentation).

    Emitted by the engine (``select``, ``extract``, ``decompose``), and
    by selectors via their trace emitter (``score`` during MMMI/DM
    scoring, ``frontier-refresh`` during decomposition) — only when a
    tracer is attached.  ``detail`` carries deterministic counts;
    ``seconds``/``cpu_seconds`` are wall/CPU durations and are kept out
    of any canonical (byte-comparable) trace payload by the trace
    sink.
    """

    kind = "phase-completed"
    step: int = 0
    phase: str = ""
    seconds: float = 0.0
    cpu_seconds: float = 0.0
    detail: dict = field(default_factory=dict)

    def _body(self) -> dict:
        body = {"step": self.step, "phase": self.phase}
        if self.detail:
            body["detail"] = dict(self.detail)
        return body


@dataclass
class CrawlStopped(CrawlEvent):
    """The crawl loop exited."""

    kind = "crawl-stopped"
    stopped_by: str = ""
    rounds: int = 0
    queries: int = 0
    records: int = 0

    def _body(self) -> dict:
        return {
            "stopped_by": self.stopped_by,
            "rounds": self.rounds,
            "queries": self.queries,
            "records": self.records,
        }


# ----------------------------------------------------------------------
# Bus and sinks
# ----------------------------------------------------------------------
class EventSink:
    """Anything that consumes crawl events."""

    #: Set by tracing sinks (:class:`repro.trace.TraceSink`).  While at
    #: least one attached sink wants phases, the engine, prober, and
    #: selectors emit the extra :class:`StepStarted` /
    #: :class:`PhaseCompleted` instrumentation events (and pay for the
    #: clock reads they carry); with none attached that work is skipped
    #: entirely.
    wants_phases = False

    def handle(self, event: CrawlEvent) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (default: nothing to release)."""


class EventBus:
    """Synchronous fan-out of events to attached sinks.

    Sink exceptions propagate to the emitter on purpose: the fault
    injection used by the crash/resume tests *is* a sink that raises.
    """

    def __init__(self) -> None:
        self._sinks: List[EventSink] = []
        self._tracers = 0

    @property
    def has_sinks(self) -> bool:
        return bool(self._sinks)

    @property
    def has_tracers(self) -> bool:
        """At least one attached sink wants phase instrumentation."""
        return self._tracers > 0

    def attach(self, sink: EventSink) -> EventSink:
        self._sinks.append(sink)
        if sink.wants_phases:
            self._tracers += 1
        return sink

    def __contains__(self, sink: object) -> bool:
        return sink in self._sinks

    def detach(self, sink: EventSink) -> None:
        self._sinks.remove(sink)
        if sink.wants_phases:
            self._tracers -= 1

    def emit(
        self,
        event: CrawlEvent,
        policy: Optional[str] = None,
        source: Optional[str] = None,
    ) -> None:
        if not self._sinks:
            return
        if policy is not None and event.policy is None:
            event.policy = policy
        if source is not None and event.source is None:
            event.source = source
        for sink in self._sinks:
            sink.handle(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` events in memory.

    Once the buffer is full every new event silently evicts the oldest;
    :attr:`dropped` counts those evictions so consumers can tell a
    complete event history from a truncated one.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[CrawlEvent] = deque(maxlen=capacity)
        #: Events evicted because the buffer was at capacity.
        self.dropped = 0

    def handle(self, event: CrawlEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    @property
    def events(self) -> List[CrawlEvent]:
        return list(self._buffer)

    def of_kind(self, kind: str) -> List[CrawlEvent]:
        return [event for event in self._buffer if event.kind == kind]

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlEventSink(EventSink):
    """Append every event as one JSON line (the observability journal)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.events_written = 0

    def handle(self, event: CrawlEvent) -> None:
        self._handle.write(json.dumps(event.payload(), separators=(",", ":")))
        self._handle.write("\n")
        self.events_written += 1

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class RoundsHistogram:
    """A small fixed-bucket histogram of per-query cost in rounds."""

    #: Upper bounds (inclusive) of each bucket; the last bucket is open.
    DEFAULT_BOUNDS = (1, 2, 3, 5, 8, 13, 21, 34, 55)

    def __init__(self, bounds=DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum_rounds = 0

    def observe(self, rounds: int) -> None:
        # First bucket whose inclusive upper bound admits `rounds`;
        # everything past the last bound lands in the open tail bucket.
        index = bisect_right(self.bounds, rounds - 1)
        self.counts[index] += 1
        self.total += 1
        self.sum_rounds += rounds

    @property
    def mean(self) -> float:
        return self.sum_rounds / self.total if self.total else 0.0

    def labelled_buckets(self) -> List[tuple]:
        """``[(label, count), ...]`` for rendering."""
        labels = []
        lower = 1
        for bound in self.bounds:
            labels.append(f"{lower}" if lower == bound else f"{lower}-{bound}")
            lower = bound + 1
        labels.append(f">{self.bounds[-1]}")
        return list(zip(labels, self.counts))

    def as_dict(self) -> Dict[str, int]:
        return {label: count for label, count in self.labelled_buckets()}


class MetricsAggregator(EventSink):
    """Per-policy counters plus latency-in-rounds histograms.

    ``counters`` is keyed ``(policy, event_kind)``; the special policy
    key ``None`` appears when the emitter did not stamp one.  The
    histogram observes each completed query's page cost from
    :class:`RecordsHarvested` events.
    """

    def __init__(self) -> None:
        self.counters: Dict[tuple, int] = {}
        self.histograms: Dict[Optional[str], RoundsHistogram] = {}
        self.new_records: Dict[Optional[str], int] = {}
        self.pages: Dict[Optional[str], int] = {}

    def handle(self, event: CrawlEvent) -> None:
        key = (event.policy, event.kind)
        self.counters[key] = self.counters.get(key, 0) + 1
        if isinstance(event, RecordsHarvested):
            histogram = self.histograms.get(event.policy)
            if histogram is None:
                histogram = self.histograms[event.policy] = RoundsHistogram()
            histogram.observe(event.pages_fetched)
            self.new_records[event.policy] = (
                self.new_records.get(event.policy, 0) + event.new_records
            )
            self.pages[event.policy] = (
                self.pages.get(event.policy, 0) + event.pages_fetched
            )

    # ------------------------------------------------------------------
    def count(self, kind: str, policy: Optional[str] = None) -> int:
        """Total events of ``kind`` (for ``policy``, or summed over all)."""
        if policy is not None:
            return self.counters.get((policy, kind), 0)
        return sum(
            count for (_, k), count in self.counters.items() if k == kind
        )

    def policies(self) -> List[Optional[str]]:
        seen = {policy for (policy, _) in self.counters}
        return sorted(seen, key=lambda p: (p is None, p or ""))

    def harvest_rate(self, policy: Optional[str]) -> float:
        pages = self.pages.get(policy, 0)
        return self.new_records.get(policy, 0) / pages if pages else 0.0

    def summary(self) -> dict:
        """JSON-safe roll-up of everything observed."""
        return {
            "policies": {
                (policy or "?"): {
                    "queries": self.count(RecordsHarvested.kind, policy),
                    "pages": self.pages.get(policy, 0),
                    "new_records": self.new_records.get(policy, 0),
                    "harvest_rate": round(self.harvest_rate(policy), 4),
                    "aborted": self.count(QueryAborted.kind, policy),
                    "rejected": self.count(QueryRejected.kind, policy),
                    "failed": self.count(QueryFailed.kind, policy),
                    "retries": self.count(RetryAttempted.kind, policy),
                    "checkpoints": self.count(CheckpointWritten.kind, policy),
                    "rounds_histogram": (
                        self.histograms[policy].as_dict()
                        if policy in self.histograms
                        else {}
                    ),
                }
                for policy in self.policies()
            },
            "events_total": sum(self.counters.values()),
        }


# ----------------------------------------------------------------------
# Fault injection (crash/resume tests and the resumable-crawl example)
# ----------------------------------------------------------------------
class SimulatedCrash(ReproError):
    """Raised by :class:`CrashAfterSteps` to kill a crawl mid-run."""


class CrashAfterSteps(EventSink):
    """Kill the process-under-test after N completed steps.

    The crash fires from inside the engine's step — after the server
    mutated and records were harvested, but *before* the runtime
    journaled the step — which is the worst-case point for recovery.
    """

    def __init__(self, steps: int) -> None:
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.steps = steps
        self.seen = 0

    def handle(self, event: CrawlEvent) -> None:
        if isinstance(event, RecordsHarvested):
            self.seen += 1
            if self.seen >= self.steps:
                raise SimulatedCrash(f"simulated crash after step {self.seen}")
