"""The write-ahead outcome journal — crash recovery between snapshots.

Full-state snapshots are expensive (engine + selector state), so the
runtime writes them rarely; the journal carries recovery.  After every
completed query–harvest–decompose step, one JSON line records the
step's outcome, the server's post-step runtime state, and the backoff
RNG position.  Recovery loads the last snapshot and *replays* the
journaled steps after it through
:meth:`~repro.crawler.engine.CrawlerEngine.replay_outcome` — the
selector re-proposes exactly the queries the live crawl issued
(consuming the same RNG draws), and the journaled outcomes are folded
in without contacting the server.

Durability is group-committed: :meth:`OutcomeJournal.record` buffers,
and the runtime calls :meth:`OutcomeJournal.flush` at every checkpoint
marker (and on suspension/close).  A hard crash therefore loses at most
the steps since the last marker — and loses them *safely*: resume
replays the journal to the last durable step and simply re-executes the
lost steps live, which on fixed seeds reproduces them bit for bit.  A
torn trailing line (the crash hit mid-write) is detected and discarded
by :func:`read_journal`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core.query import ConjunctiveQuery
from repro.core.values import AttributeValue
from repro.crawler.prober import QueryOutcome
from repro.runtime.serialize import (
    SerializationError,
    decode_query,
    decode_record,
    encode_rng,
)

try:  # pragma: no cover - environment-dependent accelerator
    import orjson as _fastjson  # writes the same JSON, several× faster
except ImportError:  # pragma: no cover
    _fastjson = None

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Outcome codec
# ----------------------------------------------------------------------
def encode_outcome(outcome: QueryOutcome) -> dict:
    """Everything :class:`QueryOutcome` carries, JSON-safe.

    Full records are journaled (not just ids): replay must rebuild
    ``DB_local`` and the local graph without re-contacting the server.
    This codec runs once per crawl step, so it is deliberately lean:
    records share their (immutable) field mappings, candidate values
    are a flat ``[attr, value, attr, value, ...]`` list, and the
    usually-false outcome flags are elided.
    """
    query = outcome.query
    payload = {
        "query": (
            {"cq": [[p.attribute, p.value] for p in query.predicates]}
            if isinstance(query, ConjunctiveQuery)
            else {"a": query.attribute, "v": query.value}
        ),
        "pages": outcome.pages_fetched,
        "returned": outcome.records_returned,
        "new_records": [
            {"id": r.record_id, "f": r.fields} for r in outcome.new_records
        ],
        "candidates": [
            part
            for value in outcome.candidate_values
            for part in (value.attribute, value.value)
        ],
        "total_matches": outcome.total_matches,
        "accessible": outcome.accessible_matches,
    }
    if outcome.aborted:
        payload["aborted"] = True
    if outcome.rejected:
        payload["rejected"] = True
    if outcome.failed:
        payload["failed"] = True
    return payload


def decode_outcome(payload: dict) -> QueryOutcome:
    try:
        flat = payload["candidates"]
        return QueryOutcome(
            query=decode_query(payload["query"]),
            pages_fetched=payload["pages"],
            records_returned=payload["returned"],
            new_records=[decode_record(r) for r in payload["new_records"]],
            candidate_values=[
                AttributeValue(flat[i], flat[i + 1])
                for i in range(0, len(flat), 2)
            ],
            total_matches=payload["total_matches"],
            accessible_matches=payload["accessible"],
            aborted=payload.get("aborted", False),
            rejected=payload.get("rejected", False),
            failed=payload.get("failed", False),
        )
    except KeyError as error:
        raise SerializationError(
            f"not an outcome payload: {payload!r}"
        ) from error


# ----------------------------------------------------------------------
# Journal entries
# ----------------------------------------------------------------------
@dataclass
class JournalEntry:
    """One completed crawl step as recorded on disk.

    ``rounds`` is the server's round counter *after* the step (what the
    engine's history recorded); ``server`` is the server's
    ``runtime_state()`` at the same instant; ``backoff_rng`` the
    engine's retry-jitter RNG state (present only when retries are
    enabled — the stream is untouched otherwise).
    """

    step: int
    rounds: int
    outcome: QueryOutcome
    server: dict
    backoff_rng: Optional[list] = None

    def to_json(self) -> str:
        payload = {
            "step": self.step,
            "rounds": self.rounds,
            "outcome": encode_outcome(self.outcome),
        }
        # A plain server's runtime state is just its round counter,
        # which the entry already carries — elide the duplicate.
        if self.server != {"rounds": self.rounds}:
            payload["server"] = self.server
        if self.backoff_rng is not None:
            payload["backoff_rng"] = self.backoff_rng
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "JournalEntry":
        payload = json.loads(line)
        return cls(
            step=payload["step"],
            rounds=payload["rounds"],
            outcome=decode_outcome(payload["outcome"]),
            server=payload.get("server", {"rounds": payload["rounds"]}),
            backoff_rng=payload.get("backoff_rng"),
        )


class OutcomeJournal:
    """Append-only, group-committed writer of :class:`JournalEntry`.

    :meth:`record` buffers; entries reach the OS on :meth:`flush`
    (called by the runtime at checkpoint markers) and on :meth:`close`.
    """

    def __init__(self, path: PathLike, append: bool = False) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "ab" if append else "wb")
        self.entries_written = 0

    def record(
        self,
        step: int,
        rounds: int,
        outcome: QueryOutcome,
        server_state: dict,
        backoff_rng=None,
    ) -> None:
        # The crawl loop calls this once per step: build the line
        # directly rather than through a JournalEntry instance.
        payload = {
            "step": step,
            "rounds": rounds,
            "outcome": encode_outcome(outcome),
        }
        if server_state != {"rounds": rounds}:
            payload["server"] = server_state
        if backoff_rng is not None:
            payload["backoff_rng"] = encode_rng(backoff_rng)
        if _fastjson is not None:
            line = _fastjson.dumps(payload)
        else:
            line = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._handle.write(line)
        self._handle.write(b"\n")
        self.entries_written += 1

    def flush(self) -> None:
        """Push buffered entries to the OS — the durability boundary
        this simulation aims for."""
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "OutcomeJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: PathLike, after_step: int = -1) -> List[JournalEntry]:
    """Load journal entries with ``step > after_step``, crash-tolerantly.

    A torn final line (no trailing newline, or invalid JSON) is treated
    as the in-flight write the crash interrupted and discarded; a
    malformed line anywhere *else* is corruption and raises.
    """
    path = Path(path)
    if not path.exists():
        return []
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")
    # A well-formed journal ends with "\n", so the final split element
    # is empty; anything else is a torn trailing write.
    torn = lines.pop() if lines else ""
    entries: List[JournalEntry] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = JournalEntry.from_json(line)
        except (json.JSONDecodeError, KeyError, SerializationError) as error:
            if index == len(lines) - 1 and not torn:
                # Torn write that still got its newline out.
                break
            raise SerializationError(
                f"{path}: corrupt journal line {index + 1} ({error})"
            ) from error
        if entry.step > after_step:
            entries.append(entry)
    return entries
