"""JSON codecs for the crawl's value types.

Checkpoints and journals round-trip crawl state through plain JSON;
this module owns the encodings so every layer (frontiers, policies,
engine, journal) serializes attribute values, queries, records, and RNG
streams the same way.  Decoding reconstructs objects that compare equal
to the originals — the property resume determinism rests on.

Only :mod:`repro.core` types are imported here, so any module (including
the policies themselves) can use these codecs without import cycles.
"""

from __future__ import annotations

import random
from typing import Any, List, Sequence, Tuple, Union

from repro.core.errors import ReproError
from repro.core.query import AnyQuery, ConjunctiveQuery, Query
from repro.core.records import Record
from repro.core.values import AttributeValue


class SerializationError(ReproError):
    """A payload does not decode into the expected crawl state type."""


# ----------------------------------------------------------------------
# Attribute values and combinations
# ----------------------------------------------------------------------
def encode_value(value: AttributeValue) -> List[str]:
    """``AttributeValue`` → ``[attribute, value]``."""
    return [value.attribute, value.value]


def decode_value(payload: Sequence[str]) -> AttributeValue:
    if len(payload) != 2:
        raise SerializationError(f"not an attribute value payload: {payload!r}")
    return AttributeValue(payload[0], payload[1])


Combo = Tuple[AttributeValue, ...]


def encode_combo(combo: Combo) -> List[List[str]]:
    """A tuple of attribute values (a conjunctive candidate)."""
    return [encode_value(pair) for pair in combo]


def decode_combo(payload: Sequence[Sequence[str]]) -> Combo:
    return tuple(decode_value(item) for item in payload)


# ----------------------------------------------------------------------
# Interner state (see repro.core.intern)
# ----------------------------------------------------------------------
def encode_interner(interner) -> List[List[str]]:
    """``ValueInterner`` → its full id assignment, id order.

    Checkpointed so a resumed crawl rebuilds the exact dense-id layout
    of the original run, including ids assigned to frontier values that
    never appeared in a harvested record.
    """
    return interner.state_dict()


def decode_interner(payload, interner) -> None:
    """Restore an assignment captured by :func:`encode_interner`."""
    try:
        interner.load_state(payload)
    except (TypeError, ValueError, IndexError) as error:
        raise SerializationError(
            f"not an interner payload: {payload!r}"
        ) from error


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def encode_query(query: AnyQuery) -> dict:
    if isinstance(query, ConjunctiveQuery):
        return {"cq": [encode_value(pair) for pair in query.predicates]}
    return {"a": query.attribute, "v": query.value}


def decode_query(payload: dict) -> AnyQuery:
    if "cq" in payload:
        return ConjunctiveQuery(
            predicates=tuple(decode_value(item) for item in payload["cq"])
        )
    if "v" not in payload:
        raise SerializationError(f"not a query payload: {payload!r}")
    return Query(value=payload["v"], attribute=payload.get("a"))


def query_sort_key(query: AnyQuery) -> str:
    """A total order over mixed Query/ConjunctiveQuery sets.

    Used only to serialize *sets* of queries with deterministic file
    bytes; the runtime never depends on this order.
    """
    if isinstance(query, ConjunctiveQuery):
        return "1|" + "|".join(f"{p.attribute}={p.value}" for p in query.predicates)
    return f"0|{query.attribute or ''}={query.value}"


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
def encode_record(record: Record) -> dict:
    return {
        "id": record.record_id,
        "f": {attribute: list(values) for attribute, values in record.fields.items()},
    }


def decode_record(payload: dict) -> Record:
    try:
        return Record(
            int(payload["id"]),
            {attribute: tuple(values) for attribute, values in payload["f"].items()},
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"not a record payload: {payload!r}") from error


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
def encode_rng(rng: random.Random) -> list:
    """``random.Random`` internal state as a JSON-safe list."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def restore_rng(rng: random.Random, payload: Sequence[Any]) -> None:
    """Restore a state captured by :func:`encode_rng` into ``rng``."""
    if len(payload) != 3:
        raise SerializationError(f"not an RNG state payload: {payload!r}")
    version, internal, gauss = payload
    rng.setstate((version, tuple(internal), gauss))


# ----------------------------------------------------------------------
# Optional fields
# ----------------------------------------------------------------------
OptionalValue = Union[AttributeValue, None]


def encode_optional_value(value: OptionalValue) -> Union[List[str], None]:
    return None if value is None else encode_value(value)


def decode_optional_value(payload) -> OptionalValue:
    return None if payload is None else decode_value(payload)
