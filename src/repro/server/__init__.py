"""Simulated structured web sources: interfaces, pagination, limits."""

from repro.server.flaky import (
    FlakyServer,
    PermanentServerFailure,
    TransientServerError,
    submit_with_retries,
)
from repro.server.html import (
    HtmlExtractionError,
    attribute_label,
    label_attribute,
    parse_html_page,
    render_html_page,
)
from repro.server.interface import QueryInterface
from repro.server.limits import (
    ORDERINGS,
    RateLimitDecision,
    RateLimiter,
    ResultLimitPolicy,
)
from repro.server.network import CommunicationLog, RequestRecord
from repro.server.pagination import ResultPage, page_count, paginate
from repro.server.service import parse_page, render_page
from repro.server.webdb import SimulatedWebDatabase

__all__ = [
    "CommunicationLog",
    "FlakyServer",
    "HtmlExtractionError",
    "ORDERINGS",
    "PermanentServerFailure",
    "QueryInterface",
    "RateLimitDecision",
    "RateLimiter",
    "RequestRecord",
    "ResultLimitPolicy",
    "ResultPage",
    "SimulatedWebDatabase",
    "TransientServerError",
    "attribute_label",
    "label_attribute",
    "page_count",
    "paginate",
    "parse_html_page",
    "parse_page",
    "render_html_page",
    "render_page",
    "submit_with_retries",
]
